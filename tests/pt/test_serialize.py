"""Tests for binary trace serialisation (incl. hypothesis round-trips)."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JPortal
from repro.core.metadata import collect_metadata
from repro.core.multicore import split_by_thread
from repro.jvm.runtime import RuntimeConfig, run_program
from repro.pt.decoder import PTDecoder
from repro.pt.packets import (
    AuxLossRecord,
    FUPPacket,
    PGDPacket,
    PGEPacket,
    TIPPacket,
    TNTPacket,
    TSCPacket,
)
from repro.pt.perf import collect
from repro.pt.serialize import (
    VALID_TIP_SIZES,
    TraceFormatError,
    dump_bytes,
    iter_stream,
    load_bytes,
    read_stream,
)

from ..conftest import build_figure2_program, lossless_config, lossy_config

# ------------------------------------------------------------------ strategies
tscs = st.integers(0, 2**60)
ips = st.integers(0, 2**62)

packet_strategy = st.one_of(
    st.builds(PGEPacket, tsc=tscs, ip=ips),
    st.builds(PGDPacket, tsc=tscs, ip=ips),
    st.builds(FUPPacket, tsc=tscs, ip=ips),
    st.builds(TSCPacket, tsc=tscs),
    st.builds(
        TNTPacket,
        tsc=tscs,
        bits=st.lists(st.booleans(), min_size=1, max_size=6).map(tuple),
    ),
    st.builds(
        TIPPacket,
        tsc=tscs,
        target=ips,
        compressed_size=st.sampled_from([3, 5, 9]),
    ),
)

loss_strategy = st.builds(
    AuxLossRecord,
    start_tsc=tscs,
    end_tsc=tscs,
    bytes_lost=st.integers(0, 2**40),
    packets_lost=st.integers(0, 2**31 - 1),
)

item_strategy = st.one_of(
    packet_strategy.map(lambda p: ("packet", p)),
    loss_strategy.map(lambda l: ("loss", l)),
)


class TestRoundTrip:
    @given(st.lists(item_strategy, max_size=80))
    @settings(max_examples=120)
    def test_dump_load_identity(self, stream):
        assert load_bytes(dump_bytes(stream)) == stream

    def test_empty_stream(self):
        assert load_bytes(dump_bytes([])) == []

    def test_real_trace_roundtrip(self):
        run = run_program(build_figure2_program(100), RuntimeConfig(cores=1))
        trace = collect(run, lossy_config())
        from repro.pt.buffer import interleave_with_losses, BufferResult

        core = trace.cores[0]
        stream = []
        loss_iter = iter(core.losses)
        next_loss = next(loss_iter, None)
        for packet in core.packets:
            while next_loss is not None and next_loss.start_tsc <= packet.tsc:
                stream.append(("loss", next_loss))
                next_loss = next(loss_iter, None)
            stream.append(("packet", packet))
        while next_loss is not None:
            stream.append(("loss", next_loss))
            next_loss = next(loss_iter, None)
        assert load_bytes(dump_bytes(stream)) == stream

    def test_decode_from_serialized_trace(self):
        """The full offline path works from a deserialised file."""
        run = run_program(build_figure2_program(60), RuntimeConfig(cores=1))
        trace = collect(run, lossless_config())
        threads = split_by_thread(trace)
        data = dump_bytes(threads[0].stream)
        restored = load_bytes(data)
        database = collect_metadata(run)
        direct = PTDecoder(database).decode(threads[0].stream)
        reloaded = PTDecoder(database).decode(restored)
        assert len(direct) == len(reloaded)
        assert [type(i).__name__ for i in direct] == [
            type(i).__name__ for i in reloaded
        ]


class TestFormatErrors:
    def test_bad_magic(self):
        with pytest.raises(TraceFormatError, match="magic"):
            read_stream(io.BytesIO(b"XXXX"))

    def test_truncated_payload(self):
        data = dump_bytes([("packet", TSCPacket(tsc=1))])
        with pytest.raises(TraceFormatError, match="truncated"):
            load_bytes(data[:-2])

    def test_unknown_tag(self):
        data = b"RPT1" + b"\xff"
        with pytest.raises(TraceFormatError, match="unknown tag"):
            load_bytes(data)

    def test_invalid_tnt_count(self):
        import struct

        data = b"RPT1" + struct.pack("<BQBB", 0x03, 0, 9, 0)
        with pytest.raises(TraceFormatError, match="TNT count"):
            load_bytes(data)

    def test_invalid_tip_size_on_read(self):
        import struct

        data = b"RPT1" + struct.pack("<BQBQ", 0x04, 0, 7, 0x1000)
        with pytest.raises(TraceFormatError, match="TIP compressed_size"):
            load_bytes(data)

    def test_invalid_tip_size_on_write(self):
        bogus = TIPPacket(tsc=0, target=0x1000, compressed_size=11)
        with pytest.raises(TraceFormatError, match="TIP compressed_size"):
            dump_bytes([("packet", bogus)])

    @given(st.sampled_from(VALID_TIP_SIZES))
    def test_valid_tip_sizes_roundtrip(self, size):
        stream = [("packet", TIPPacket(tsc=5, target=0x2000, compressed_size=size))]
        assert load_bytes(dump_bytes(stream)) == stream


class TestErrorOffsets:
    """Every TraceFormatError carries the byte offset of the failure."""

    def test_truncation_offsets(self):
        stream = [("packet", TSCPacket(tsc=1)), ("packet", PGEPacket(tsc=2, ip=3))]
        data = dump_bytes(stream)
        with pytest.raises(TraceFormatError) as exc:
            load_bytes(data[:-2])
        # First entry is 4 (magic) + 9 bytes; the PGE entry starts at 13.
        assert exc.value.entry_offset == 13
        assert exc.value.offset == len(data) - 2
        assert "offset" in str(exc.value)

    def test_bad_magic_offset(self):
        with pytest.raises(TraceFormatError) as exc:
            read_stream(io.BytesIO(b"XXXX"))
        assert exc.value.offset == 0

    def test_unknown_tag_offset(self):
        data = dump_bytes([("packet", TSCPacket(tsc=1))]) + b"\xff"
        with pytest.raises(TraceFormatError) as exc:
            load_bytes(data)
        assert exc.value.offset == 13
        assert exc.value.entry_offset == 13

    @given(st.lists(item_strategy, min_size=1, max_size=30), st.data())
    @settings(max_examples=60)
    def test_salvage_point_is_valid(self, stream, data_source):
        """``entry_offset`` always points at a clean-prefix boundary:
        re-reading everything before it yields a prefix of the stream."""
        data = dump_bytes(stream)
        cut = data_source.draw(st.integers(5, len(data) - 1), label="cut")
        try:
            load_bytes(data[:cut])
        except TraceFormatError as error:
            prefix = data[:error.entry_offset]
            entries = list(
                iter_stream(io.BytesIO(prefix))
            ) if len(prefix) >= 4 else []
            assert entries == stream[: len(entries)]


class TestIterStream:
    def test_iter_matches_read(self):
        run = run_program(build_figure2_program(60), RuntimeConfig(cores=1))
        trace = collect(run, lossy_config())
        threads = split_by_thread(trace)
        data = dump_bytes(threads[0].stream)
        assert list(iter_stream(io.BytesIO(data))) == read_stream(io.BytesIO(data))

    def test_iter_is_lazy(self):
        """A format error surfaces only when iteration reaches it."""
        data = dump_bytes(
            [("packet", TSCPacket(tsc=1)), ("packet", TSCPacket(tsc=2))]
        )
        iterator = iter_stream(io.BytesIO(data + b"\xff"))
        assert next(iterator) == ("packet", TSCPacket(tsc=1))
        assert next(iterator) == ("packet", TSCPacket(tsc=2))
        with pytest.raises(TraceFormatError, match="unknown tag"):
            next(iterator)

    def test_decoder_accepts_generator(self):
        """The decode pipeline consumes the stream exactly once, so the
        streaming reader plugs in without materialising the list."""
        run = run_program(build_figure2_program(60), RuntimeConfig(cores=1))
        trace = collect(run, lossless_config())
        threads = split_by_thread(trace)
        database = collect_metadata(run)
        data = dump_bytes(threads[0].stream)
        direct = PTDecoder(database).decode(threads[0].stream)
        streamed = PTDecoder(database).decode(iter_stream(io.BytesIO(data)))
        assert [type(i).__name__ for i in direct] == [
            type(i).__name__ for i in streamed
        ]
