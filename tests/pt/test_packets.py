"""Unit tests for PT packet types and IP compression."""

import pytest

from repro.pt.packets import (
    AuxLossRecord,
    FUPPacket,
    PGDPacket,
    PGEPacket,
    TIPPacket,
    TNTPacket,
    TSCPacket,
    compressed_tip_size,
)


class TestSizes:
    def test_fixed_sizes(self):
        assert PGEPacket(0, 0x1000).size == 9
        assert PGDPacket(0, 0x1000).size == 9
        assert FUPPacket(0, 0x1000).size == 9
        assert TSCPacket(0).size == 8
        assert TNTPacket(0, (True,)).size == 1
        assert TNTPacket(0, (True,) * 6).size == 1

    def test_tip_size_is_compressed_size(self):
        assert TIPPacket(0, 0x1234, compressed_size=3).size == 3
        assert TIPPacket(0, 0x1234).size == 9


class TestTNTValidation:
    def test_empty_tnt_rejected(self):
        with pytest.raises(ValueError):
            TNTPacket(0, ())

    def test_overlong_tnt_rejected(self):
        with pytest.raises(ValueError):
            TNTPacket(0, (True,) * 7)


class TestIPCompression:
    def test_same_upper_48_bits_compresses_to_2_bytes(self):
        last = 0x7FA419000010
        target = 0x7FA419001234  # differs only in low 16 bits
        assert compressed_tip_size(target, last) == 3

    def test_same_upper_32_bits_compresses_to_4_bytes(self):
        last = 0x7FA419000010
        target = 0x7FA4FFFF0010
        assert compressed_tip_size(target, last) == 5

    def test_unrelated_address_needs_full_ip(self):
        assert compressed_tip_size(0x7FA419000010, 0x123) == 9

    def test_identical_address_is_smallest(self):
        address = 0x7FA419000010
        assert compressed_tip_size(address, address) == 3

    def test_monotone_in_shared_prefix(self):
        last = 0x7FA419000010
        near = compressed_tip_size(0x7FA419000020, last)
        mid = compressed_tip_size(0x7FA400000020, last)
        far = compressed_tip_size(0x123456789A, last)
        assert near <= mid <= far


class TestAuxLossRecord:
    def test_fields(self):
        record = AuxLossRecord(start_tsc=10, end_tsc=20, bytes_lost=100, packets_lost=7)
        assert record.end_tsc >= record.start_tsc
        assert record.packets_lost == 7
