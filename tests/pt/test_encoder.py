"""Unit tests for the PT packet encoder."""

from repro.jvm.machine import (
    DisableEvent,
    EnableEvent,
    FupEvent,
    TipEvent,
    TntEvent,
)
from repro.pt.encoder import EncoderConfig, PTEncoder, encode_core
from repro.pt.packets import (
    FUPPacket,
    PGDPacket,
    PGEPacket,
    TIPPacket,
    TNTPacket,
    TSCPacket,
)


def _packets_of(packets, kind):
    return [p for p in packets if isinstance(p, kind)]


class TestTNTPacking:
    def test_bits_packed_up_to_capacity(self):
        events = [TntEvent(tsc=i, taken=bool(i % 2)) for i in range(6)]
        packets = encode_core(events)
        tnts = _packets_of(packets, TNTPacket)
        assert len(tnts) == 1
        assert tnts[0].bits == (False, True, False, True, False, True)

    def test_seventh_bit_opens_new_packet(self):
        events = [TntEvent(tsc=i, taken=True) for i in range(7)]
        tnts = _packets_of(encode_core(events), TNTPacket)
        assert [len(t.bits) for t in tnts] == [6, 1]

    def test_tip_flushes_pending_bits(self):
        events = [
            TntEvent(tsc=0, taken=True),
            TipEvent(tsc=1, target=0x7FA419000000),
            TntEvent(tsc=2, taken=False),
        ]
        packets = encode_core(events)
        kinds = [type(p).__name__ for p in packets if not isinstance(p, TSCPacket)]
        assert kinds == ["TNTPacket", "TIPPacket", "TNTPacket"]

    def test_bit_order_preserved(self):
        pattern = [True, False, False, True, True, False, True, False]
        events = [TntEvent(tsc=i, taken=bit) for i, bit in enumerate(pattern)]
        tnts = _packets_of(encode_core(events), TNTPacket)
        recovered = [bit for packet in tnts for bit in packet.bits]
        assert recovered == pattern


class TestTIPCompression:
    def test_consecutive_nearby_tips_compress(self):
        base = 0x7FA419000000
        events = [TipEvent(tsc=i, target=base + i * 0x40) for i in range(4)]
        tips = _packets_of(encode_core(events), TIPPacket)
        assert tips[0].size == 9  # first: nothing to compress against
        assert all(tip.size == 3 for tip in tips[1:])

    def test_far_jump_costs_full_ip(self):
        events = [
            TipEvent(tsc=0, target=0x7FA419000000),
            TipEvent(tsc=1, target=0x123456789),
        ]
        tips = _packets_of(encode_core(events), TIPPacket)
        assert tips[1].size == 9


class TestTSCInsertion:
    def test_periodic_tsc_packets(self):
        config = EncoderConfig(tsc_interval=100)
        events = [TipEvent(tsc=i * 60, target=0x7FA419000000) for i in range(5)]
        packets = encode_core(events, config)
        tscs = _packets_of(packets, TSCPacket)
        # t=0 always, then at >=100 (t=120) and >=220 (t=240)
        assert len(tscs) == 3

    def test_first_packet_preceded_by_tsc(self):
        packets = encode_core([TipEvent(tsc=5, target=0x7FA419000000)])
        assert isinstance(packets[0], TSCPacket)


class TestEventMapping:
    def test_all_event_kinds_encode(self):
        events = [
            EnableEvent(tsc=0, ip=1),
            TipEvent(tsc=1, target=2),
            TntEvent(tsc=2, taken=True),
            FupEvent(tsc=3, ip=3),
            DisableEvent(tsc=4, ip=4),
        ]
        packets = encode_core(events)
        kinds = {type(p) for p in packets}
        assert {PGEPacket, TIPPacket, TNTPacket, FUPPacket, PGDPacket} <= kinds

    def test_stats_account_bytes_and_packets(self):
        encoder = PTEncoder()
        events = [TipEvent(tsc=i, target=0x7FA419000000 + i) for i in range(10)]
        packets = encoder.encode(events)
        assert encoder.stats.packets == len(packets)
        assert encoder.stats.bytes == sum(p.size for p in packets)
        assert encoder.stats.tips == 10

    def test_trailing_bits_flushed_at_end(self):
        events = [TntEvent(tsc=0, taken=True)]
        tnts = _packets_of(encode_core(events), TNTPacket)
        assert len(tnts) == 1


class TestConfigIsolation:
    """Regression for the shared mutable default-argument config."""

    def test_two_encoders_do_not_share_config(self):
        """With ``config: EncoderConfig = EncoderConfig()`` in the
        signature, every default-constructed encoder shared ONE config
        instance, so tuning one silently retuned all of them."""
        first = PTEncoder()
        second = PTEncoder()
        assert first.config is not second.config
        first.config.tsc_interval = 1
        first.config.tnt_capacity = 2
        assert second.config.tsc_interval == 2_000
        assert second.config.tnt_capacity == 6

    def test_mutated_default_does_not_leak_into_encode_core(self):
        encoder = PTEncoder()
        encoder.config.tnt_capacity = 1
        events = [TntEvent(tsc=100 + i, taken=True) for i in range(6)]
        packets = encode_core(events)
        tnts = [p for p in packets if isinstance(p, TNTPacket)]
        # encode_core's fresh default packs all six bits into one packet.
        assert len(tnts) == 1 and len(tnts[0].bits) == 6

    def test_explicit_config_still_honoured(self):
        config = EncoderConfig(tnt_capacity=2)
        events = [TntEvent(tsc=100 + i, taken=False) for i in range(4)]
        tnts = [
            p for p in encode_core(events, config)
            if isinstance(p, TNTPacket)
        ]
        assert [len(p.bits) for p in tnts] == [2, 2]
