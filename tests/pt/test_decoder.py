"""Unit tests for the libipt-style packet decoder.

Uses a small hand-built code database (templates + one synthetic compiled
blob) so each decoding behaviour can be exercised in isolation.
"""

from repro.jvm.machine import MIKind, MachineInstruction
from repro.jvm.opcodes import Kind, Op, info
from repro.jvm.templates import TemplateTable
from repro.pt.decoder import (
    AnomalyKind,
    DecodeAnomaly,
    DegradationPolicy,
    InterpDispatch,
    InterpReturnStub,
    JitSpan,
    PTDecoder,
    TraceLoss,
)
from repro.pt.packets import (
    AuxLossRecord,
    FUPPacket,
    PGDPacket,
    PGEPacket,
    TIPPacket,
    TNTPacket,
    TSCPacket,
)

CODE_BASE = 0x7FA419000000


class FakeDatabase:
    """Template table + a synthetic compiled blob for walker tests.

    Blob layout (addresses relative to CODE_BASE):
        +0   OTHER     (size 3)
        +3   COND      (size 6) -> +20
        +9   OTHER     (size 3)
        +12  JMP_DIR   (size 5) -> +3      (loop back to the branch)
        +17  RET       (size 1)
        +20  CALL_IND  (size 6)
        +26  RET       (size 1)
    """

    def __init__(self):
        self.templates = TemplateTable()
        instructions = [
            MachineInstruction(CODE_BASE + 0, 3, MIKind.OTHER),
            MachineInstruction(CODE_BASE + 3, 6, MIKind.COND_BRANCH, target=CODE_BASE + 20),
            MachineInstruction(CODE_BASE + 9, 3, MIKind.OTHER),
            MachineInstruction(CODE_BASE + 12, 5, MIKind.JMP_DIRECT, target=CODE_BASE + 3),
            MachineInstruction(CODE_BASE + 17, 1, MIKind.RET),
            MachineInstruction(CODE_BASE + 20, 6, MIKind.CALL_INDIRECT),
            MachineInstruction(CODE_BASE + 26, 1, MIKind.RET),
        ]
        self.by_address = {mi.address: mi for mi in instructions}

    def template_op_at(self, ip):
        return self.templates.op_at(ip)

    @staticmethod
    def op_is_conditional(op):
        return info(op).kind is Kind.COND

    def is_return_stub(self, ip):
        return self.templates.is_return_stub(ip)

    def in_code_cache(self, ip):
        return CODE_BASE <= ip < CODE_BASE + 0x1000

    def native_instruction_at(self, ip, tsc=None):
        return self.by_address.get(ip)


def _decode(packets_and_losses):
    decoder = PTDecoder(FakeDatabase())
    return decoder, decoder.decode(packets_and_losses)


def _tip(db, target, tsc=0):
    return ("packet", TIPPacket(tsc=tsc, target=target))


class TestInterpDecoding:
    def test_dispatch_resolves_opcode(self):
        db = FakeDatabase()
        stream = [_tip(db, db.templates.entry(Op.ILOAD_0))]
        _dec, items = _decode(stream)
        assert len(items) == 1
        assert isinstance(items[0], InterpDispatch)
        assert items[0].op is Op.ILOAD_0

    def test_conditional_waits_for_tnt(self):
        db = FakeDatabase()
        stream = [
            _tip(db, db.templates.entry(Op.IFEQ)),
            ("packet", TNTPacket(tsc=1, bits=(True,))),
        ]
        _dec, items = _decode(stream)
        assert isinstance(items[0], InterpDispatch)
        assert items[0].op is Op.IFEQ
        assert items[0].taken is True

    def test_conditional_without_tnt_is_unknown(self):
        db = FakeDatabase()
        stream = [
            _tip(db, db.templates.entry(Op.IFEQ)),
            _tip(db, db.templates.entry(Op.NOP), tsc=1),
        ]
        decoder, items = _decode(stream)
        dispatches = [i for i in items if isinstance(i, InterpDispatch)]
        assert dispatches[0].op is Op.IFEQ
        assert dispatches[0].taken is None
        assert decoder.stats.anomalies >= 1

    def test_return_stub_recognised(self):
        db = FakeDatabase()
        stream = [_tip(db, db.templates.return_stub_entry)]
        _dec, items = _decode(stream)
        assert isinstance(items[0], InterpReturnStub)

    def test_unknown_tip_is_anomaly(self):
        stream = [("packet", TIPPacket(tsc=0, target=0x1234))]
        decoder, items = _decode(stream)
        assert isinstance(items[0], DecodeAnomaly)

    def test_tsc_packets_ignored(self):
        _dec, items = _decode([("packet", TSCPacket(tsc=0))])
        assert items == []


class TestWalker:
    def test_walk_follows_fallthrough_and_direct_jumps(self):
        db = FakeDatabase()
        # Enter at +0; branch not taken; fall to +9; jmp back to +3;
        # branch taken -> +20 (indirect call: stop).
        stream = [
            _tip(db, CODE_BASE),
            ("packet", TNTPacket(tsc=1, bits=(False, True))),
        ]
        _dec, items = _decode(stream)
        spans = [i for i in items if isinstance(i, JitSpan)]
        assert len(spans) == 1
        offsets = [a - CODE_BASE for a in spans[0].addresses]
        assert offsets == [0, 3, 9, 12, 3, 20]

    def test_walk_starves_and_resumes_on_tnt(self):
        db = FakeDatabase()
        stream = [
            _tip(db, CODE_BASE),  # walks +0, then needs a bit at +3
            ("packet", TNTPacket(tsc=1, bits=(True,))),  # resumes -> +20
        ]
        _dec, items = _decode(stream)
        span = next(i for i in items if isinstance(i, JitSpan))
        offsets = [a - CODE_BASE for a in span.addresses]
        assert offsets == [0, 3, 20]

    def test_walk_stops_at_ret_until_next_tip(self):
        db = FakeDatabase()
        stream = [
            _tip(db, CODE_BASE + 17),  # RET: stop immediately
            _tip(db, db.templates.return_stub_entry, tsc=1),
        ]
        _dec, items = _decode(stream)
        assert isinstance(items[0], JitSpan)
        assert [a - CODE_BASE for a in items[0].addresses] == [17]
        assert isinstance(items[1], InterpReturnStub)

    def test_desynchronised_walk_reports_anomaly(self):
        db = FakeDatabase()
        stream = [_tip(db, CODE_BASE + 1)]  # mid-instruction address
        decoder, items = _decode(stream)
        assert any(isinstance(i, DecodeAnomaly) for i in items)

    def test_walked_instruction_count_in_stats(self):
        db = FakeDatabase()
        stream = [
            _tip(db, CODE_BASE),
            ("packet", TNTPacket(tsc=1, bits=(True,))),
        ]
        decoder, _items = _decode(stream)
        assert decoder.stats.walked_instructions == 3


class TestLossHandling:
    def test_loss_emits_marker_and_clears_bits(self):
        db = FakeDatabase()
        stream = [
            ("packet", TNTPacket(tsc=0, bits=(True, True))),  # orphan bits
            ("loss", AuxLossRecord(start_tsc=1, end_tsc=5, bytes_lost=64, packets_lost=3)),
            _tip(db, db.templates.entry(Op.IFNE), tsc=6),
            ("packet", TNTPacket(tsc=7, bits=(False,))),
        ]
        _dec, items = _decode(stream)
        losses = [i for i in items if isinstance(i, TraceLoss)]
        assert len(losses) == 1
        assert losses[0].bytes_lost == 64
        # The post-loss conditional must bind the *new* bit, not stale ones.
        dispatch = next(i for i in items if isinstance(i, InterpDispatch))
        assert dispatch.taken is False

    def test_loss_abandons_suspended_walk(self):
        db = FakeDatabase()
        stream = [
            _tip(db, CODE_BASE),  # suspends awaiting TNT at +3
            ("loss", AuxLossRecord(start_tsc=1, end_tsc=2, bytes_lost=8, packets_lost=1)),
            ("packet", TNTPacket(tsc=3, bits=(True,))),  # must NOT resume
        ]
        _dec, items = _decode(stream)
        span = next(i for i in items if isinstance(i, JitSpan))
        assert [a - CODE_BASE for a in span.addresses] == [0]

    def test_pending_conditional_flushed_with_unknown_outcome(self):
        db = FakeDatabase()
        stream = [
            _tip(db, db.templates.entry(Op.IFEQ)),
            ("loss", AuxLossRecord(start_tsc=1, end_tsc=2, bytes_lost=8, packets_lost=1)),
        ]
        _dec, items = _decode(stream)
        dispatch = next(i for i in items if isinstance(i, InterpDispatch))
        assert dispatch.taken is None


class TestAnomalyPaths:
    """DecodeAnomaly coverage: orphan post-loss TNT bits, unknown IPs,
    desynchronised walks -- and their propagation into the metrics
    registry and pipeline-level anomaly counts."""

    def test_orphan_tnt_after_loss_is_anomaly_and_dropped(self):
        db = FakeDatabase()
        stream = [
            ("loss", AuxLossRecord(start_tsc=0, end_tsc=4, bytes_lost=32, packets_lost=2)),
            # Bits whose branches were dropped with the loss: orphans.
            ("packet", TNTPacket(tsc=5, bits=(True, False))),
            _tip(db, db.templates.entry(Op.IFEQ), tsc=6),
        ]
        decoder, items = _decode(stream)
        anomalies = [i for i in items if isinstance(i, DecodeAnomaly)]
        assert any("orphan TNT" in a.reason for a in anomalies)
        # The orphan bits must NOT bind the post-loss conditional.
        dispatch = next(i for i in items if isinstance(i, InterpDispatch))
        assert dispatch.taken is None
        assert decoder.stats.anomalies == len(anomalies)

    def test_tnt_resynchronises_after_first_post_loss_tip(self):
        db = FakeDatabase()
        stream = [
            ("loss", AuxLossRecord(start_tsc=0, end_tsc=4, bytes_lost=32, packets_lost=2)),
            _tip(db, db.templates.entry(Op.IFEQ), tsc=5),
            ("packet", TNTPacket(tsc=6, bits=(True,))),
        ]
        decoder, items = _decode(stream)
        dispatch = next(i for i in items if isinstance(i, InterpDispatch))
        assert dispatch.taken is True
        assert decoder.stats.anomalies == 0

    def test_anomaly_counters_reach_metrics_registry(self):
        from repro.core.metrics import MetricsRegistry

        registry = MetricsRegistry()
        decoder = PTDecoder(FakeDatabase(), metrics=registry, tid=5)
        decoder.decode(
            [
                ("packet", TIPPacket(tsc=0, target=0x1234)),  # unknown IP
                ("packet", TIPPacket(tsc=1, target=CODE_BASE + 1)),  # desync
            ]
        )
        assert decoder.stats.anomalies == 2
        assert registry.counter("decode.anomalies", tid=5) == 2
        assert registry.counter("decode.anomalies") == 2
        assert registry.counter("decode.anomalies", tid=0) == 0
        assert registry.counter("decode.tips", tid=5) == 2

    def test_desynchronised_walk_counts_once_per_bad_address(self):
        db = FakeDatabase()
        registry_stream = [
            _tip(db, CODE_BASE + 1),  # mid-instruction: desynchronised
            _tip(db, CODE_BASE + 2, tsc=1),
        ]
        decoder, items = _decode(registry_stream)
        reasons = [
            i.reason for i in items if isinstance(i, DecodeAnomaly)
        ]
        assert len([r for r in reasons if "desynchronised" in r]) == 2

    def test_pipeline_propagates_anomalies_to_result_and_metrics(self):
        """An unfiltered collection traces non-code addresses; the decoder
        flags them and the counts surface on JPortalResult, the per-thread
        breakdown, and the metrics registry consistently."""
        from repro.core import JPortal
        from repro.jvm.assembler import MethodAssembler
        from repro.jvm.jit import JITPolicy
        from repro.jvm.model import JClass, JProgram
        from repro.jvm.runtime import RuntimeConfig, run_program
        from repro.jvm.verifier import verify_program
        from repro.pt.buffer import RingBufferConfig
        from repro.pt.perf import PTConfig

        asm = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        asm.const(200).store(0)
        asm.label("head")
        asm.load(0).ifle("done")
        asm.const(1).newarray().pop()
        asm.iinc(0, -1).goto("head")
        asm.label("done")
        asm.const(0).ireturn()
        program = JProgram("noisy")
        cls = JClass("T")
        cls.add_method(asm.build())
        program.add_class(cls)
        program.set_entry("T", "main")
        verify_program(program)
        run = run_program(
            program,
            RuntimeConfig(
                cores=1,
                gc_period_allocations=30,
                emit_runtime_noise=True,
                jit=JITPolicy(hot_threshold=10**9),
            ),
        )
        config = PTConfig(
            buffer=RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1e9),
            ip_filter=False,
        )
        result = JPortal(program).analyze_run(run, config)
        assert result.anomalies > 0
        assert result.metrics.counter("decode.anomalies") == result.anomalies
        per_thread = sum(
            breakdown.anomalies
            for breakdown in result.timings.per_thread.values()
        )
        assert per_thread == result.anomalies


class TestAsyncAndPauses:
    def test_fup_abandons_walk(self):
        db = FakeDatabase()
        stream = [
            _tip(db, CODE_BASE),
            ("packet", FUPPacket(tsc=1, ip=CODE_BASE + 3)),
            ("packet", TNTPacket(tsc=2, bits=(True,))),
        ]
        _dec, items = _decode(stream)
        span = next(i for i in items if isinstance(i, JitSpan))
        assert [a - CODE_BASE for a in span.addresses] == [0]

    def test_pge_pgd_do_not_disturb_suspended_walk(self):
        db = FakeDatabase()
        stream = [
            _tip(db, CODE_BASE),
            ("packet", PGDPacket(tsc=1, ip=CODE_BASE + 3)),
            ("packet", PGEPacket(tsc=5, ip=CODE_BASE + 3)),
            ("packet", TNTPacket(tsc=6, bits=(True,))),
        ]
        _dec, items = _decode(stream)
        span = next(i for i in items if isinstance(i, JitSpan))
        assert [a - CODE_BASE for a in span.addresses] == [0, 3, 20]

    def test_end_of_stream_flushes_pending(self):
        # A conditional whose bit never arrives is emitted with unknown
        # outcome AND recorded as an anomaly (same as the TIP flush path).
        db = FakeDatabase()
        stream = [_tip(db, db.templates.entry(Op.IFLT))]
        dec, items = _decode(stream)
        anomalies = [i for i in items if isinstance(i, DecodeAnomaly)]
        dispatches = [i for i in items if isinstance(i, InterpDispatch)]
        assert len(dispatches) == 1
        assert dispatches[0].taken is None
        assert len(anomalies) == 1
        assert anomalies[0].kind is AnomalyKind.CONDITIONAL_WITHOUT_TNT
        assert "end of stream" in anomalies[0].reason
        assert dec.stats.anomalies == 1


class TestDegradation:
    """Resync protocol, error budget, and the no-crash contract."""

    def _decode_with(self, stream, policy=None):
        decoder = PTDecoder(FakeDatabase(), policy=policy)
        return decoder, decoder.decode(stream)

    def test_resync_discards_tnt_until_valid_anchor(self):
        db = FakeDatabase()
        stream = [
            ("packet", TIPPacket(tsc=0, target=0x1234)),  # unmapped: desync
            ("packet", TNTPacket(tsc=1, bits=(True, False))),
            ("packet", TNTPacket(tsc=2, bits=(True,))),
            _tip(db, db.templates.entry(Op.NOP), tsc=3),  # valid anchor
        ]
        decoder, items = self._decode_with(stream)
        kinds = [i.kind for i in items if isinstance(i, DecodeAnomaly)]
        assert kinds == [
            AnomalyKind.TIP_UNMAPPED,
            AnomalyKind.TNT_DISCARDED_DESYNC,
            AnomalyKind.TNT_DISCARDED_DESYNC,
        ]
        assert decoder.stats.tnt_discarded == 3
        dispatches = [i for i in items if isinstance(i, InterpDispatch)]
        assert len(dispatches) == 1 and dispatches[0].op is Op.NOP

    def test_resync_rejects_second_invalid_tip(self):
        db = FakeDatabase()
        stream = [
            ("packet", TIPPacket(tsc=0, target=0x1234)),
            ("packet", TIPPacket(tsc=1, target=0x5678)),  # still invalid
            _tip(db, db.templates.entry(Op.NOP), tsc=2),
        ]
        decoder, items = self._decode_with(stream)
        unmapped = [
            i for i in items
            if isinstance(i, DecodeAnomaly) and i.kind is AnomalyKind.TIP_UNMAPPED
        ]
        assert len(unmapped) == 2
        assert any(isinstance(i, InterpDispatch) for i in items)

    def test_legacy_mode_buffers_tnt_across_bad_tip(self):
        # resync=False preserves the lenient pre-policy behaviour: bits
        # arriving after an unmapped TIP stay buffered and bind the next
        # conditional.
        db = FakeDatabase()
        stream = [
            ("packet", TIPPacket(tsc=0, target=0x1234)),
            ("packet", TNTPacket(tsc=1, bits=(True,))),
            _tip(db, db.templates.entry(Op.IFEQ), tsc=2),
        ]
        decoder, items = self._decode_with(
            stream, policy=DegradationPolicy(resync=False)
        )
        dispatch = next(i for i in items if isinstance(i, InterpDispatch))
        assert dispatch.taken is True
        assert decoder.stats.tnt_discarded == 0

    def test_walk_desync_enters_resync(self):
        db = FakeDatabase()
        stream = [
            _tip(db, CODE_BASE + 1),  # mid-instruction: walk desyncs
            ("packet", TNTPacket(tsc=1, bits=(False,))),
            _tip(db, db.templates.entry(Op.NOP), tsc=2),
        ]
        decoder, items = self._decode_with(stream)
        kinds = [i.kind for i in items if isinstance(i, DecodeAnomaly)]
        assert AnomalyKind.WALK_DESYNC in kinds
        assert AnomalyKind.TNT_DISCARDED_DESYNC in kinds
        assert any(isinstance(i, InterpDispatch) for i in items)

    def test_error_budget_declares_synthetic_hole(self):
        policy = DegradationPolicy(max_anomalies_per_segment=3)
        stream = [
            ("packet", TIPPacket(tsc=t, target=0x1000 + t)) for t in range(3)
        ]
        decoder, items = self._decode_with(stream, policy=policy)
        holes = [i for i in items if isinstance(i, TraceLoss)]
        assert len(holes) == 1
        assert holes[0].synthetic is True
        assert holes[0].start_tsc == 0 and holes[0].end_tsc == 2
        assert holes[0].bytes_lost == 0
        assert decoder.stats.synthetic_holes == 1
        # A synthetic hole is not a (physical) loss.
        assert decoder.stats.losses == 0

    def test_budget_resets_each_segment(self):
        policy = DegradationPolicy(max_anomalies_per_segment=2)
        stream = [
            ("packet", TIPPacket(tsc=0, target=0x1000)),
            ("loss", AuxLossRecord(start_tsc=1, end_tsc=2, bytes_lost=9, packets_lost=1)),
            ("packet", TIPPacket(tsc=3, target=0x1000)),
        ]
        decoder, items = self._decode_with(stream, policy=policy)
        # One anomaly per segment: the budget of 2 is never reached.
        assert decoder.stats.synthetic_holes == 0

    def test_budget_disabled_with_none(self):
        policy = DegradationPolicy(max_anomalies_per_segment=None)
        stream = [
            ("packet", TIPPacket(tsc=t, target=0x1000 + t)) for t in range(200)
        ]
        decoder, _items = self._decode_with(stream, policy=policy)
        assert decoder.stats.synthetic_holes == 0

    def test_garbage_stream_never_raises(self):
        stream = [
            ("packet", "not a packet"),
            ("loss", None),
            ("wat", TSCPacket(tsc=0)),
            ("packet", 17),
        ]
        decoder, items = self._decode_with(stream)
        kinds = {i.kind for i in items if isinstance(i, DecodeAnomaly)}
        assert AnomalyKind.DECODER_ERROR in kinds or AnomalyKind.MALFORMED_ITEM in kinds
        assert decoder.stats.anomalies == len(items)

    def test_by_kind_sums_to_anomalies(self):
        db = FakeDatabase()
        stream = [
            ("packet", TIPPacket(tsc=0, target=0x1234)),
            ("packet", TNTPacket(tsc=1, bits=(True,))),
            _tip(db, db.templates.entry(Op.IFLT), tsc=2),
        ]
        decoder, _items = self._decode_with(stream)
        assert sum(decoder.stats.by_kind.values()) == decoder.stats.anomalies

    def test_per_kind_metrics_published(self):
        from repro.core.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        decoder = PTDecoder(FakeDatabase(), metrics=metrics, tid=7)
        decoder.decode([("packet", TIPPacket(tsc=0, target=0x1234))])
        assert metrics.counter("decode.anomaly.tip_unmapped", tid=7) == 1
        assert metrics.counter("decode.anomalies", tid=7) == 1

    def test_fup_abandon_counts_walk_not_anomaly_item(self):
        db = FakeDatabase()
        stream = [
            _tip(db, CODE_BASE),  # suspends at the branch awaiting a bit
            ("packet", FUPPacket(tsc=1, ip=CODE_BASE + 3)),
        ]
        decoder, items = self._decode_with(stream)
        assert decoder.stats.walks_abandoned == 1
