"""Regenerate the golden corpus of corrupted archives.

Run from the repo root::

    PYTHONPATH=src:tests python tests/pt/corrupt_archives/generate.py

Everything is deterministic (seeded run, fixed cut points chosen
relative to scanned record spans), so regeneration after a format change
produces a reviewable diff.  ``manifest.json`` records, per file, which
salvage kinds a reader must report and which snapshot sidecar (if any)
belongs to it; ``test_corrupt_corpus.py`` drives the salvage contract
from that manifest.
"""

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))

#: The corpus workload: keep in sync with ``test_corrupt_corpus.py``.
ITERATIONS = 80
CORES = 2
SEGMENT_PACKETS = 48


def build_corpus():
    from conftest import build_figure2_program, lossy_config
    from repro.jvm.runtime import RuntimeConfig, run_program
    from repro.pt.archive import (
        REC_SEGMENT,
        RECORD_OVERHEAD,
        merge_core_stream,
        scan_record_spans,
        write_archive,
    )
    from repro.pt.perf import collect
    from repro.pt.serialize import dump_bytes
    from repro.core.metadata import collect_metadata

    program = build_figure2_program(ITERATIONS)
    run = run_program(program, RuntimeConfig(cores=CORES))
    trace = collect(run, lossy_config())
    database = collect_metadata(run)

    clean_path = os.path.join(HERE, "clean.rpt2")
    write_archive(
        trace, database, clean_path, segment_packets=SEGMENT_PACKETS
    )
    clean = open(clean_path, "rb").read()
    spans = scan_record_spans(clean)
    segments = [span for span in spans if span.rtype == REC_SEGMENT]
    meta = "clean.rpt2.meta"

    manifest = {}

    def emit(name, payload, kinds, snapshot=meta, note=""):
        with open(os.path.join(HERE, name), "wb") as sink:
            sink.write(payload)
        manifest[name] = {
            "expected_kinds": sorted(kinds),
            "snapshot": snapshot,
            "note": note,
        }

    emit("clean.rpt2", clean, [], note="undamaged reference archive")

    victim = segments[len(segments) // 2]
    emit(
        "truncated_tail.rpt2",
        clean[: victim.start + RECORD_OVERHEAD + 7],
        ["segment_torn", "archive_unsealed"],
        note="file cut mid-payload of a middle segment",
    )
    emit(
        "truncated_boundary.rpt2",
        clean[: segments[-1].end],
        ["archive_unsealed"],
        note="file cut exactly at a record boundary (only the seal is gone)",
    )

    header_rot = bytearray(clean)
    header_rot[segments[1].start + 3] ^= 0x40  # inside the record header
    emit(
        "bitflip_header.rpt2",
        bytes(header_rot),
        ["archive_malformed", "segment_gap"],
        note="bit flipped in a segment header (header CRC rejects it)",
    )

    payload_rot = bytearray(clean)
    payload_rot[segments[1].start + RECORD_OVERHEAD] ^= 0x01
    emit(
        "bitflip_payload.rpt2",
        bytes(payload_rot),
        ["segment_crc_mismatch"],
        note="bit flipped in a segment payload (payload CRC rejects it)",
    )

    victim = segments[0]
    emit(
        "dropped_segment.rpt2",
        clean[: victim.start] + clean[victim.end :],
        ["segment_gap"],
        note="one committed segment record excised",
    )

    victim = segments[2]
    emit(
        "duplicated_segment.rpt2",
        clean[: victim.end] + clean[victim.start : victim.end] + clean[victim.end :],
        ["segment_duplicate"],
        note="one committed segment record replayed",
    )

    emit(
        "missing_snapshot.rpt2",
        clean,
        ["metadata_snapshot_missing"],
        snapshot=None,
        note="intact archive whose metadata sidecar is gone",
    )
    emit(
        "garbage_tail.rpt2",
        clean + b"\x00\x11\x22\x33" * 16,
        [],
        note="junk appended after the seal; dropped without an event",
    )
    emit(
        "bad_magic.rpt2",
        b"XXXX" + clean[4:],
        ["archive_malformed"],
        note="unrecognised magic; records still salvage via sync scan",
    )
    emit(
        "empty.rpt2",
        b"",
        ["archive_malformed", "archive_unsealed"],
        snapshot=None,
        note="zero-byte file",
    )
    emit(
        "zeros.rpt2",
        b"\x00" * 256,
        ["archive_malformed", "archive_unsealed"],
        snapshot=None,
        note="all-zero file",
    )

    core0 = trace.cores[0]
    legacy = dump_bytes(merge_core_stream(core0.packets, core0.losses))
    emit(
        "legacy.rpt1",
        legacy,
        [],
        snapshot=None,
        note="flat RPT1 stream (pre-archive format)",
    )
    emit(
        "legacy_truncated.rpt1",
        legacy[: len(legacy) * 2 // 3],
        ["archive_malformed"],
        snapshot=None,
        note="RPT1 stream cut mid-entry; prefix salvages",
    )

    with open(os.path.join(HERE, "manifest.json"), "w") as sink:
        json.dump(manifest, sink, indent=2, sort_keys=True)
        sink.write("\n")
    return manifest


if __name__ == "__main__":
    manifest = build_corpus()
    print("wrote %d corpus files to %s" % (len(manifest) + 2, HERE))
    sys.exit(0)
