"""Unit tests for the lossy ring-buffer model."""

from repro.pt.buffer import (
    BufferResult,
    RingBuffer,
    RingBufferConfig,
    interleave_with_losses,
)
from repro.pt.packets import AuxLossRecord, TIPPacket


def _burst(count, tsc_step=1, size=9, start_tsc=0):
    return [
        TIPPacket(tsc=start_tsc + i * tsc_step, target=0x1000, compressed_size=size)
        for i in range(count)
    ]


class TestLossless:
    def test_big_buffer_keeps_everything(self):
        buffer = RingBuffer(RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1.0))
        packets = _burst(1000)
        result = buffer.apply(packets)
        assert result.kept == packets
        assert result.losses == []
        assert result.bytes_lost == 0
        assert result.loss_fraction == 0.0

    def test_fast_drain_keeps_everything(self):
        # 9 bytes per tsc unit generated, 100 bytes/unit drained.
        buffer = RingBuffer(RingBufferConfig(capacity_bytes=32, drain_bandwidth=100.0))
        result = buffer.apply(_burst(1000))
        assert result.bytes_lost == 0

    def test_empty_stream(self):
        buffer = RingBuffer(RingBufferConfig())
        result = buffer.apply([])
        assert result.kept == [] and result.losses == []
        assert result.loss_fraction == 0.0


class TestOverflow:
    def test_slow_drain_loses_data(self):
        # Generates 9 bytes/unit, drains 1 byte/unit, tiny buffer.
        buffer = RingBuffer(
            RingBufferConfig(capacity_bytes=100, drain_bandwidth=1.0)
        )
        result = buffer.apply(_burst(1000))
        assert result.bytes_lost > 0
        assert result.losses
        assert result.bytes_in == 9000
        assert 0 < result.loss_fraction < 1

    def test_losses_are_contiguous_chunks(self):
        """Hysteresis: overflow drops a chunk, not alternating packets."""
        buffer = RingBuffer(
            RingBufferConfig(capacity_bytes=90, drain_bandwidth=0.5, low_watermark=0.5)
        )
        result = buffer.apply(_burst(200))
        # Each loss record should cover several packets.
        assert result.losses
        assert all(record.packets_lost >= 2 for record in result.losses)

    def test_loss_records_account_all_lost_bytes(self):
        buffer = RingBuffer(RingBufferConfig(capacity_bytes=90, drain_bandwidth=0.5))
        result = buffer.apply(_burst(500))
        assert sum(r.bytes_lost for r in result.losses) == result.bytes_lost

    def test_loss_timestamps_within_stream(self):
        buffer = RingBuffer(RingBufferConfig(capacity_bytes=90, drain_bandwidth=0.5))
        packets = _burst(500)
        result = buffer.apply(packets)
        for record in result.losses:
            assert packets[0].tsc <= record.start_tsc <= record.end_tsc <= packets[-1].tsc

    def test_smaller_buffer_loses_more(self):
        """The Table 3 trend: loss grows as the buffer shrinks."""
        losses = []
        for capacity in (4000, 2000, 1000, 500):
            buffer = RingBuffer(
                RingBufferConfig(capacity_bytes=capacity, drain_bandwidth=2.0)
            )
            losses.append(buffer.apply(_burst(5000, tsc_step=1)).loss_fraction)
        assert losses == sorted(losses)

    def test_quiet_period_lets_buffer_drain(self):
        buffer = RingBuffer(RingBufferConfig(capacity_bytes=100, drain_bandwidth=1.0))
        burst1 = _burst(11, tsc_step=0)  # 99 bytes at t=0: fills the buffer
        burst2 = _burst(11, tsc_step=0, start_tsc=1000)  # after a long gap
        result = buffer.apply(burst1 + burst2)
        # The second burst fits because the buffer drained in between.
        assert all(record.start_tsc < 1000 for record in result.losses)
        kept_late = [p for p in result.kept if p.tsc >= 1000]
        assert len(kept_late) == 11


class TestInterleave:
    def test_merged_stream_order(self):
        buffer = RingBuffer(RingBufferConfig(capacity_bytes=90, drain_bandwidth=0.5))
        result = buffer.apply(_burst(300))
        merged = interleave_with_losses(result)
        packet_count = sum(1 for tag, _item in merged if tag == "packet")
        loss_count = sum(1 for tag, _item in merged if tag == "loss")
        assert packet_count == len(result.kept)
        assert loss_count == len(result.losses)
        # Losses appear no later than the first kept packet after them.
        last_tsc = -1
        for tag, item in merged:
            tsc = item.tsc if tag == "packet" else item.start_tsc
            assert tsc >= last_tsc or tag == "loss"
            if tag == "packet":
                last_tsc = item.tsc

    def test_trailing_loss_appended(self):
        buffer = RingBuffer(RingBufferConfig(capacity_bytes=95, drain_bandwidth=0.01))
        result = buffer.apply(_burst(100))
        merged = interleave_with_losses(result)
        assert merged[-1][0] == "loss"


class TestPeriodicDrain:
    """The perf-style periodic reader (used by the Table 3 experiments)."""

    def test_everything_kept_when_bursts_fit(self):
        buffer = RingBuffer(
            RingBufferConfig(capacity_bytes=1000, drain_period=100)
        )
        # 10 packets of 9 bytes per 100-tsc period: 90 bytes < 1000.
        result = buffer.apply(_burst(100, tsc_step=10))
        assert result.bytes_lost == 0

    def test_oversized_bursts_lose_the_tail(self):
        buffer = RingBuffer(
            RingBufferConfig(capacity_bytes=50, drain_period=1000)
        )
        # 100 packets of 9 bytes arrive within one period: only ~5 fit.
        result = buffer.apply(_burst(100, tsc_step=1))
        assert result.bytes_lost > 0
        assert len(result.kept) <= 6

    def test_loss_scales_with_capacity(self):
        losses = []
        for capacity in (900, 450, 225):
            buffer = RingBuffer(
                RingBufferConfig(capacity_bytes=capacity, drain_period=500)
            )
            losses.append(buffer.apply(_burst(500, tsc_step=1)).loss_fraction)
        assert losses[0] < losses[1] < losses[2]

    def test_drain_resets_dropping_state(self):
        buffer = RingBuffer(RingBufferConfig(capacity_bytes=45, drain_period=100))
        # First period overflows; after the wakeup the next burst is kept.
        first = _burst(20, tsc_step=1)               # t in [0, 20)
        second = _burst(4, tsc_step=1, start_tsc=150)  # next period
        result = buffer.apply(first + second)
        kept_late = [p for p in result.kept if p.tsc >= 150]
        assert len(kept_late) == 4

    def test_loss_span_closes_at_drain_wakeup(self):
        """A loss straddling a wakeup must be two records, not one merged
        span: the ring is empty after the wakeup, so the overflow there is
        a distinct event."""
        buffer = RingBuffer(RingBufferConfig(capacity_bytes=5, drain_period=100))
        # 9-byte packets never fit a 5-byte ring: every packet drops, in
        # both the first period (t<100) and the second (t>=100).
        packets = _burst(10, tsc_step=20)  # t = 0..180, wakeup at t=100
        result = buffer.apply(packets)
        assert len(result.losses) == 2
        first, second = result.losses
        assert first.end_tsc < 100 <= second.start_tsc

    def test_one_loss_record_per_straddled_period(self):
        buffer = RingBuffer(RingBufferConfig(capacity_bytes=5, drain_period=50))
        result = buffer.apply(_burst(20, tsc_step=10))  # t = 0..190, 4 periods
        assert len(result.losses) == 4
        assert sum(r.bytes_lost for r in result.losses) == result.bytes_lost
        assert sum(r.packets_lost for r in result.losses) == 20


class TestDegenerateConfigs:
    def test_oversized_packet_does_not_wedge_dropping(self):
        """A packet bigger than the whole ring is dropped, but the buffer
        must recover: fill never grew, so hysteresis releases immediately
        and subsequent fitting packets are kept."""
        buffer = RingBuffer(
            RingBufferConfig(capacity_bytes=45, drain_bandwidth=1.0)
        )
        giant = TIPPacket(tsc=0, target=0x1000, compressed_size=100)
        tail = _burst(4, tsc_step=10, start_tsc=10)
        result = buffer.apply([giant] + tail)
        assert result.bytes_lost == 100
        assert result.kept == tail

    def test_oversized_packet_periodic_mode(self):
        buffer = RingBuffer(RingBufferConfig(capacity_bytes=45, drain_period=100))
        giant = TIPPacket(tsc=0, target=0x1000, compressed_size=100)
        tail = _burst(4, tsc_step=1, start_tsc=1)
        result = buffer.apply([giant] + tail)
        assert result.kept == tail

    def test_zero_capacity_drops_everything(self):
        buffer = RingBuffer(RingBufferConfig(capacity_bytes=0, drain_bandwidth=1.0))
        packets = _burst(10)
        result = buffer.apply(packets)
        assert result.kept == []
        assert result.bytes_lost == result.bytes_in == 90
        assert len(result.losses) == 1
        assert result.losses[0].packets_lost == 10
        assert result.loss_fraction == 1.0


class TestInterleaveTieOrdering:
    def test_packet_precedes_loss_at_equal_tsc(self):
        """Within one TSC tick kept packets precede the drops, so a loss
        starting at a kept packet's TSC is emitted after that packet."""
        packet = TIPPacket(tsc=5, target=0x1000, compressed_size=9)
        loss = AuxLossRecord(start_tsc=5, end_tsc=7, bytes_lost=18, packets_lost=2)
        merged = interleave_with_losses(
            BufferResult(kept=[packet], losses=[loss], bytes_in=27, bytes_lost=18)
        )
        assert merged == [("packet", packet), ("loss", loss)]

    def test_loss_strictly_before_packet_still_precedes(self):
        packet = TIPPacket(tsc=6, target=0x1000, compressed_size=9)
        loss = AuxLossRecord(start_tsc=5, end_tsc=5, bytes_lost=9, packets_lost=1)
        merged = interleave_with_losses(
            BufferResult(kept=[packet], losses=[loss], bytes_in=18, bytes_lost=9)
        )
        assert merged == [("loss", loss), ("packet", packet)]
