"""Unit tests for the durable ``RPT2`` archive layer.

Covers the commit-length-last writer protocol, versioned metadata
serialisation, the salvage reader's per-fault behaviour, sequence-gap
synthesis, and the legacy ``RPT1`` fallback.  The end-to-end salvage
contract (inject fault -> analyse -> fault visible in the result) lives
in ``tests/integration/test_archive_salvage.py``.
"""

import io
import os
import struct

import pytest

from repro.core import JPortal
from repro.core.metadata import CodeDatabase, collect_metadata
from repro.core.multicore import split_by_thread
from repro.jvm.machine import AddressSpace
from repro.jvm.runtime import RuntimeConfig, run_program
from repro.pt.archive import (
    ArchiveContents,
    ArchiveFormatError,
    ArchiveWriter,
    REC_SEGMENT,
    RECORD_OVERHEAD,
    SalvageStats,
    deserialize_code_dump,
    deserialize_database,
    merge_core_stream,
    read_archive,
    scan_record_spans,
    serialize_code_dump,
    serialize_database,
    write_archive,
)
from repro.pt.packets import TSCPacket
from repro.pt.perf import PTConfig, collect, collect_to_archive
from repro.pt.serialize import dump_bytes

from ..conftest import build_figure2_program, lossless_config, lossy_config


@pytest.fixture(scope="module")
def traced():
    run = run_program(build_figure2_program(120), RuntimeConfig(cores=2))
    trace = collect(run, lossy_config())
    database = collect_metadata(run)
    return run, trace, database


def write_to(tmp_path, trace, database, **kw):
    path = tmp_path / "trace.rpt2"
    report = write_archive(trace, database, path, **kw)
    return path, report


def accounted(stats: SalvageStats) -> int:
    return stats.bytes_salvaged + stats.bytes_dropped + stats.bytes_converted_to_loss


class TestWriter:
    def test_report_matches_file(self, tmp_path, traced):
        _run, trace, database = traced
        path, report = write_to(tmp_path, trace, database, segment_packets=64)
        assert os.path.getsize(path) == report.bytes_written
        assert report.segments >= len(trace.cores)
        assert os.path.getsize(report.snapshot_path) == report.snapshot_bytes

    def test_segment_spans_cover_stream(self, tmp_path, traced):
        _run, trace, database = traced
        path, report = write_to(tmp_path, trace, database, segment_packets=32)
        spans = scan_record_spans(open(path, "rb").read())
        segments = [span for span in spans if span.rtype == REC_SEGMENT]
        assert len(segments) == report.segments
        # Sequence numbers are dense over all record kinds.
        seqs = sorted(span.seq for span in spans)
        assert seqs == list(range(len(spans)))

    def test_sealed_archive_rejects_appends(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "a.rpt2")
        writer.close()
        with pytest.raises(ValueError, match="sealed"):
            writer.append_segment(0, [])

    def test_abort_leaves_unsealed(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "a.rpt2")
        writer.append_segment(0, [("packet", TSCPacket(tsc=4))])
        writer.abort()
        stats = read_archive(writer.path).stats
        assert not stats.sealed
        assert stats.segments_salvaged == 1
        assert "archive_unsealed" in stats.by_kind()

    def test_torn_write_is_detected_and_dropped(self, tmp_path):
        """A record missing its commit trailer salvages to a loss."""
        writer = ArchiveWriter(tmp_path / "a.rpt2")
        writer.append_segment(0, [("packet", TSCPacket(tsc=4))], tsc_span=(4, 9))
        writer.close()
        data = open(writer.path, "rb").read()
        torn = tmp_path / "torn.rpt2"
        torn.write_bytes(data[:-RECORD_OVERHEAD - 3])  # cut inside segment
        stats = read_archive(torn).stats
        assert stats.segments_salvaged == 0
        assert stats.loss_records_synthesized == 1
        assert "segment_torn" in stats.by_kind()
        assert accounted(stats) == stats.file_size

    def test_crash_mid_snapshot_keeps_old_snapshot(self, tmp_path, traced):
        """temp+rename: a torn snapshot write never clobbers the live one."""
        _run, trace, database = traced
        path, _report = write_to(tmp_path, trace, database)
        snapshot_path = str(path) + ".meta"
        before = open(snapshot_path, "rb").read()
        # Simulate a crash that leaves only the temp file half-written.
        with open(snapshot_path + ".tmp", "wb") as sink:
            sink.write(b"RPM2\x00partial")
        assert open(snapshot_path, "rb").read() == before
        contents = read_archive(path)
        assert contents.database is not None
        assert contents.stats.metadata_snapshots_missing == 0


class TestMetadataSerialization:
    def test_code_dump_roundtrip(self, traced):
        _run, _trace, database = traced
        assert database.code_dumps, "fixture must JIT-compile something"
        for dump in database.code_dumps:
            restored = deserialize_code_dump(serialize_code_dump(dump))
            assert restored.qname == dump.qname
            assert restored.entry == dump.entry
            assert restored.limit == dump.limit
            assert restored.load_tsc == dump.load_tsc
            assert restored.unload_tsc == dump.unload_tsc
            assert restored.declared_debug_count == dump.declared_debug_count
            assert restored.debug == dump.debug
            assert [
                (mi.address, mi.size, mi.kind, mi.target) for mi in restored.instructions
            ] == [
                (mi.address, mi.size, mi.kind, mi.target) for mi in dump.instructions
            ]

    def test_database_roundtrip(self, traced):
        _run, _trace, database = traced
        restored = deserialize_database(serialize_database(database))
        assert restored.template_metadata == database.template_metadata
        assert len(restored.code_dumps) == len(database.code_dumps)
        space, restored_space = database.address_space, restored.address_space
        assert restored_space.template_base == space.template_base
        assert restored_space.code_cache_base == space.code_cache_base
        assert restored_space.code_cache_limit == space.code_cache_limit

    def test_snapshot_excludes_dumps_when_asked(self, traced):
        _run, _trace, database = traced
        restored = deserialize_database(
            serialize_database(database, include_dumps=False)
        )
        assert restored.code_dumps == []
        assert restored.template_metadata == database.template_metadata

    def test_truncated_database_blob_raises_with_offset(self, traced):
        _run, _trace, database = traced
        blob = serialize_database(database)
        with pytest.raises(ArchiveFormatError) as exc:
            deserialize_database(blob[: len(blob) // 2])
        assert exc.value.offset > 0

    def test_with_dumps_dedups_by_identity(self, traced):
        _run, _trace, database = traced
        merged = database.with_dumps(list(database.code_dumps))
        assert len(merged.code_dumps) == len(database.code_dumps)


class TestSalvageReader:
    def test_clean_archive_is_clean(self, tmp_path, traced):
        _run, trace, database = traced
        path, _report = write_to(tmp_path, trace, database)
        stats = read_archive(path).stats
        assert stats.clean
        assert stats.sealed
        assert stats.events == []
        assert accounted(stats) == stats.file_size == os.path.getsize(path)

    def test_decoded_streams_match_original(self, tmp_path, traced):
        """Per-core salvaged streams equal the canonical merged streams."""
        _run, trace, database = traced
        path, _report = write_to(tmp_path, trace, database, segment_packets=48)
        contents = read_archive(path)
        for core_trace in trace.cores:
            merged = merge_core_stream(core_trace.packets, core_trace.losses)
            assert contents.cores.get(core_trace.core, []) == merged
        assert contents.thread_switches == list(trace.thread_switches)

    def test_dropped_segment_becomes_gap_loss(self, tmp_path, traced):
        _run, trace, database = traced
        path, _report = write_to(tmp_path, trace, database, segment_packets=32)
        data = open(path, "rb").read()
        segments = [
            span for span in scan_record_spans(data) if span.rtype == REC_SEGMENT
        ]
        victim = segments[len(segments) // 2]
        mutated = data[: victim.start] + data[victim.end :]
        damaged = tmp_path / "gap.rpt2"
        damaged.write_bytes(mutated)
        stats = read_archive(damaged, snapshot_path=str(path) + ".meta").stats
        assert stats.sequence_gaps == 1
        assert stats.loss_records_synthesized >= 1
        assert "segment_gap" in stats.by_kind()
        assert accounted(stats) == len(mutated)

    def test_duplicate_segment_dropped_once(self, tmp_path, traced):
        _run, trace, database = traced
        path, _report = write_to(tmp_path, trace, database, segment_packets=32)
        data = open(path, "rb").read()
        segments = [
            span for span in scan_record_spans(data) if span.rtype == REC_SEGMENT
        ]
        victim = segments[0]
        clone = data[victim.start : victim.end]
        mutated = data[: victim.end] + clone + data[victim.end :]
        damaged = tmp_path / "dup.rpt2"
        damaged.write_bytes(mutated)
        contents = read_archive(damaged, snapshot_path=str(path) + ".meta")
        stats = contents.stats
        assert stats.sequence_duplicates == 1
        assert "segment_duplicate" in stats.by_kind()
        assert stats.bytes_dropped == len(clone)
        assert accounted(stats) == len(mutated)
        # The stream decodes as if the duplicate never existed.
        clean = read_archive(path)
        assert contents.cores == clean.cores

    def test_payload_corruption_converts_to_loss(self, tmp_path, traced):
        _run, trace, database = traced
        path, _report = write_to(tmp_path, trace, database, segment_packets=32)
        data = bytearray(open(path, "rb").read())
        segments = [
            span for span in scan_record_spans(bytes(data)) if span.rtype == REC_SEGMENT
        ]
        victim = segments[1]
        # Flip a byte in the middle of the payload (past the 40-byte framing).
        data[victim.start + RECORD_OVERHEAD] ^= 0xFF
        damaged = tmp_path / "rot.rpt2"
        damaged.write_bytes(bytes(data))
        stats = read_archive(damaged, snapshot_path=str(path) + ".meta").stats
        assert "segment_crc_mismatch" in stats.by_kind()
        assert stats.loss_records_synthesized >= 1
        assert accounted(stats) == len(data)

    def test_missing_snapshot_degrades_to_journal(self, tmp_path, traced):
        _run, trace, database = traced
        path, _report = write_to(tmp_path, trace, database)
        os.unlink(str(path) + ".meta")
        contents = read_archive(path)
        stats = contents.stats
        assert stats.metadata_snapshots_missing == 1
        assert "metadata_snapshot_missing" in stats.by_kind()
        assert contents.database is None
        fallback = contents.database_or_empty()
        # Journaled dumps still decode JIT code; template table is gone.
        assert len(fallback.code_dumps) == len(contents.journal_dumps)
        assert fallback.template_metadata == {}

    def test_strict_mode_raises_on_first_event(self, tmp_path, traced):
        _run, trace, database = traced
        path, _report = write_to(tmp_path, trace, database)
        os.unlink(str(path) + ".meta")
        with pytest.raises(ArchiveFormatError, match="metadata_snapshot_missing"):
            read_archive(path, strict=True)

    def test_empty_and_garbage_never_raise(self, tmp_path):
        cases = {
            "empty.rpt2": b"",
            "tiny.rpt2": b"RP",
            "badmagic.rpt2": b"XXXX" + b"\x07" * 64,
            "zeros.rpt2": b"\x00" * 512,
        }
        for name, payload in cases.items():
            target = tmp_path / name
            target.write_bytes(payload)
            stats = read_archive(target).stats
            assert accounted(stats) == len(payload), name

    def test_garbage_between_records_is_resynced(self, tmp_path, traced):
        _run, trace, database = traced
        path, _report = write_to(tmp_path, trace, database, segment_packets=32)
        data = open(path, "rb").read()
        segments = [
            span for span in scan_record_spans(data) if span.rtype == REC_SEGMENT
        ]
        victim = segments[1]
        junk = b"\xde\xad\xbe\xef" * 8
        mutated = data[: victim.start] + junk + data[victim.start :]
        damaged = tmp_path / "junk.rpt2"
        damaged.write_bytes(mutated)
        contents = read_archive(damaged, snapshot_path=str(path) + ".meta")
        stats = contents.stats
        assert stats.bytes_dropped >= len(junk)
        assert accounted(stats) == len(mutated)
        # All real segments still decode.
        assert contents.cores == read_archive(path).cores


class TestLegacyFallback:
    def test_rpt1_file_reads_as_single_segment(self, tmp_path, traced):
        run, _trace, database = traced
        trace = collect(run, lossless_config())
        core = trace.cores[0]
        blob = dump_bytes(merge_core_stream(core.packets, core.losses))
        path = tmp_path / "legacy.rpt1"
        path.write_bytes(blob)
        contents = read_archive(path)
        stats = contents.stats
        assert stats.legacy
        assert stats.segments_salvaged == 1
        assert contents.cores[0] == merge_core_stream(core.packets, core.losses)
        assert accounted(stats) == len(blob)

    def test_truncated_rpt1_salvages_prefix(self, tmp_path, traced):
        run, _trace, _database = traced
        trace = collect(run, lossless_config())
        core = trace.cores[0]
        full = merge_core_stream(core.packets, core.losses)
        blob = dump_bytes(full)
        path = tmp_path / "legacy_trunc.rpt1"
        path.write_bytes(blob[: len(blob) * 2 // 3])
        contents = read_archive(path)
        stats = contents.stats
        assert stats.legacy
        assert "archive_malformed" in stats.by_kind()
        entries = contents.cores[0]
        # Salvage keeps a clean prefix plus one synthetic trailing loss.
        assert entries[-1][0] == "loss"
        assert entries[:-1] == full[: len(entries) - 1]
        assert accounted(stats) == os.path.getsize(path)


class TestPipelineIntegration:
    def test_analyze_archive_matches_in_memory(self, tmp_path, traced):
        run, trace, database = traced
        program = build_figure2_program(120)
        path = tmp_path / "trace.rpt2"
        config = PTConfig(
            buffer=lossy_config().buffer, archive_segment_packets=64
        )
        collected, collected_db, _report = collect_to_archive(run, path, config)
        jportal = JPortal(program)
        in_memory = jportal.analyze_trace(collected, collected_db)
        from_disk = jportal.analyze_archive(path)
        assert sorted(in_memory.flows) == sorted(from_disk.flows)
        for tid, flow in in_memory.flows.items():
            assert from_disk.flows[tid].flow.entries == flow.flow.entries
        assert from_disk.salvage is not None and from_disk.salvage.clean
        assert in_memory.salvage is None

    def test_salvage_counters_surface_on_result(self, tmp_path, traced):
        run, _trace, _database = traced
        program = build_figure2_program(120)
        path = tmp_path / "trace.rpt2"
        collect_to_archive(run, path, PTConfig(buffer=lossy_config().buffer))
        os.unlink(str(path) + ".meta")
        result = JPortal(program).analyze_archive(path)
        assert result.anomalies_by_kind.get("metadata_snapshot_missing") == 1
        assert result.metrics.counter("archive.metadata_snapshots_missing") == 1
        assert result.salvage.metadata_snapshots_missing == 1

    def test_explicit_database_overrides_sidecar(self, tmp_path, traced):
        run, trace, database = traced
        program = build_figure2_program(120)
        path = tmp_path / "trace.rpt2"
        collect_to_archive(run, path, PTConfig(buffer=lossy_config().buffer))
        os.unlink(str(path) + ".meta")
        jportal = JPortal(program)
        with_db = jportal.analyze_archive(path, database=database)
        reference = jportal.analyze_trace(trace, database)
        for tid, flow in reference.flows.items():
            assert with_db.flows[tid].flow.entries == flow.flow.entries
