"""Golden-corpus salvage tests.

``corrupt_archives/`` holds a committed set of damaged archive files
(regenerable with ``corrupt_archives/generate.py``) plus a manifest of
the salvage kinds each one must surface.  Unlike the seeded fuzz suite,
these bytes never change, so a decoder regression that quietly starts
raising -- or stops *reporting* -- on a known damage shape fails loudly
and reproducibly.
"""

import io
import json
import os

import pytest

from repro.core import JPortal
from repro.pt.archive import read_archive

from ..conftest import build_figure2_program

CORPUS = os.path.join(os.path.dirname(__file__), "corrupt_archives")

with open(os.path.join(CORPUS, "manifest.json")) as _source:
    MANIFEST = json.load(_source)

#: Must match the workload constants in ``corrupt_archives/generate.py``.
ITERATIONS = 80


@pytest.fixture(scope="module")
def jportal():
    return JPortal(build_figure2_program(ITERATIONS))


def snapshot_arg(entry):
    name = entry.get("snapshot")
    return os.path.join(CORPUS, name) if name else None


@pytest.mark.parametrize("name", sorted(MANIFEST))
def test_salvage_never_raises_and_reports(name):
    """Contract part 1: hostile bytes -> stats, never an exception."""
    entry = MANIFEST[name]
    path = os.path.join(CORPUS, name)
    contents = read_archive(path, snapshot_path=snapshot_arg(entry))
    stats = contents.stats
    kinds = set(stats.by_kind())
    missing = set(entry["expected_kinds"]) - kinds
    assert not missing, "%s: expected kinds %s absent (got %s)" % (
        name, sorted(missing), sorted(kinds),
    )
    accounted = (
        stats.bytes_salvaged + stats.bytes_dropped + stats.bytes_converted_to_loss
    )
    assert accounted == stats.file_size == os.path.getsize(path), name


@pytest.mark.parametrize("name", sorted(MANIFEST))
def test_full_analysis_completes(name, jportal):
    """Contract part 2: the whole pipeline runs on every corpus file and
    the injected damage lands in ``anomalies_by_kind``."""
    entry = MANIFEST[name]
    path = os.path.join(CORPUS, name)
    result = jportal.analyze_archive(path, snapshot_path=snapshot_arg(entry))
    assert result.salvage is not None
    for kind in entry["expected_kinds"]:
        assert result.anomalies_by_kind.get(kind, 0) >= 1, (name, kind)


def test_clean_reference_is_clean():
    contents = read_archive(
        os.path.join(CORPUS, "clean.rpt2"),
        snapshot_path=os.path.join(CORPUS, "clean.rpt2.meta"),
    )
    assert contents.stats.clean
    assert contents.stats.sealed
    assert contents.database is not None


def test_corpus_files_all_manifested():
    """Every binary in the corpus directory is covered by the manifest."""
    binaries = {
        name for name in os.listdir(CORPUS)
        if name.endswith((".rpt1", ".rpt2"))
    }
    assert binaries == set(MANIFEST)


def test_damaged_files_still_yield_segments():
    """Single-fault files keep all undamaged segments decodable: the
    salvaged stream of each is within one segment of the clean one."""
    clean = read_archive(
        os.path.join(CORPUS, "clean.rpt2"),
        snapshot_path=os.path.join(CORPUS, "clean.rpt2.meta"),
    )
    clean_total = clean.stats.segments_salvaged
    for name in ("bitflip_payload.rpt2", "dropped_segment.rpt2",
                 "duplicated_segment.rpt2", "bitflip_header.rpt2"):
        stats = read_archive(
            os.path.join(CORPUS, name),
            snapshot_path=snapshot_arg(MANIFEST[name]),
        ).stats
        assert stats.segments_salvaged >= clean_total - 1, name
