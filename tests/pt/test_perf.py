"""Unit tests for the perf-style collection session."""

from repro.jvm.machine import (
    DEFAULT_ADDRESS_SPACE,
    FupEvent,
    TipEvent,
    TntEvent,
)
from repro.jvm.runtime import RuntimeConfig, run_program
from repro.pt.buffer import RingBufferConfig
from repro.pt.perf import PTConfig, calibrate_drain_bandwidth, collect, filter_events

from ..conftest import build_figure2_program


class TestIPFiltering:
    def test_out_of_range_events_dropped(self):
        space = DEFAULT_ADDRESS_SPACE
        inside = TipEvent(tsc=0, target=space.template_base + 0x10)
        outside = TipEvent(tsc=1, target=space.runtime_base + 0x10)
        kept = filter_events([inside, outside], space)
        assert kept == [inside]

    def test_tnt_events_always_kept(self):
        space = DEFAULT_ADDRESS_SPACE
        tnt = TntEvent(tsc=0, taken=True)
        assert filter_events([tnt], space) == [tnt]

    def test_fup_filtered_by_ip(self):
        space = DEFAULT_ADDRESS_SPACE
        inside = FupEvent(tsc=0, ip=space.code_cache_base + 4)
        outside = FupEvent(tsc=1, ip=0x1234)
        assert filter_events([inside, outside], space) == [inside]

    def test_code_cache_range_included(self):
        space = DEFAULT_ADDRESS_SPACE
        assert space.in_filter_range(space.code_cache_base)
        assert space.in_filter_range(space.template_base)
        assert not space.in_filter_range(space.runtime_base)


class TestCollect:
    def _run(self):
        return run_program(build_figure2_program(40), RuntimeConfig(cores=2))

    def test_one_core_trace_per_core(self):
        run = self._run()
        trace = collect(run, PTConfig())
        assert len(trace.cores) == run.config.cores
        assert trace.cores[0].core == 0

    def test_byte_accounting(self):
        run = self._run()
        trace = collect(
            run,
            PTConfig(buffer=RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1e9)),
        )
        assert trace.bytes_lost == 0
        assert trace.bytes_kept == trace.bytes_generated
        assert trace.bytes_generated == sum(
            core.bytes_generated for core in trace.cores
        )
        assert trace.loss_fraction == 0.0

    def test_lossy_collection_reports_losses(self):
        run = run_program(build_figure2_program(300), RuntimeConfig(cores=1))
        trace = collect(
            run,
            PTConfig(buffer=RingBufferConfig(capacity_bytes=400, drain_bandwidth=0.05)),
        )
        assert trace.bytes_lost > 0
        assert 0 < trace.loss_fraction < 1
        assert any(core.losses for core in trace.cores)

    def test_sideband_carried_through(self):
        run = self._run()
        trace = collect(run, PTConfig())
        assert trace.thread_switches == run.thread_switches


class TestCalibration:
    def test_calibrated_bandwidth_hits_target_band(self):
        run = run_program(build_figure2_program(400), RuntimeConfig(cores=1))
        bandwidth = calibrate_drain_bandwidth(run, capacity_bytes=1024, target_loss=0.25)
        trace = collect(
            run,
            PTConfig(
                buffer=RingBufferConfig(capacity_bytes=1024, drain_bandwidth=bandwidth)
            ),
        )
        assert 0.05 < trace.loss_fraction < 0.5

    def test_more_bandwidth_less_loss(self):
        run = run_program(build_figure2_program(400), RuntimeConfig(cores=1))
        bandwidth = calibrate_drain_bandwidth(run, capacity_bytes=1024)
        losses = []
        for factor in (0.5, 1.0, 4.0):
            trace = collect(
                run,
                PTConfig(
                    buffer=RingBufferConfig(
                        capacity_bytes=1024, drain_bandwidth=bandwidth * factor
                    )
                ),
            )
            losses.append(trace.loss_fraction)
        assert losses[0] >= losses[1] >= losses[2]


class TestRuntimeNoiseFiltering:
    """Negative control for IP filtering (paper Section 6): GC/runtime
    branches outside the code cache must be invisible with the filter on,
    and corrupt decoding when it is off."""

    def _noisy_run(self):
        from repro.jvm.jit import JITPolicy

        config = RuntimeConfig(
            cores=1,
            gc_period_allocations=30,
            emit_runtime_noise=True,
            jit=JITPolicy(hot_threshold=10**9),
        )
        from repro.jvm.assembler import MethodAssembler
        from repro.jvm.model import JClass, JProgram
        from repro.jvm.verifier import verify_program

        asm = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        asm.const(200).store(0)
        asm.label("head")
        asm.load(0).ifle("done")
        asm.const(1).newarray().pop()
        asm.iinc(0, -1).goto("head")
        asm.label("done")
        asm.const(0).ireturn()
        program = JProgram("noisy")
        cls = JClass("T")
        cls.add_method(asm.build())
        program.add_class(cls)
        program.set_entry("T", "main")
        verify_program(program)
        return program, run_program(program, config)

    def test_filter_on_reconstructs_exactly(self):
        from repro.core import JPortal

        program, run = self._noisy_run()
        assert run.counters["gc_pauses"] > 0
        result = JPortal(program).analyze_run(
            run,
            PTConfig(
                buffer=RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1e9),
                ip_filter=True,
            ),
        )
        assert result.anomalies == 0
        assert result.flow_of(0).reconstructed_nodes() == run.threads[0].truth

    def test_filter_off_produces_anomalies(self):
        from repro.core import JPortal

        program, run = self._noisy_run()
        result = JPortal(program).analyze_run(
            run,
            PTConfig(
                buffer=RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1e9),
                ip_filter=False,
            ),
        )
        assert result.anomalies > 0
