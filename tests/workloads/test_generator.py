"""Tests for the random program generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jvm.runtime import RuntimeConfig, run_program
from repro.jvm.verifier import verify_program
from repro.workloads.generator import GeneratorConfig, generate_program


class TestGeneration:
    def test_deterministic_for_seed(self):
        first = generate_program(42)
        second = generate_program(42)
        assert str(first.entry_method()) == str(second.entry_method())

    def test_different_seeds_differ(self):
        programs = {str(generate_program(seed).entry_method()) for seed in range(8)}
        assert len(programs) > 1

    def test_method_count_respected(self):
        config = GeneratorConfig(methods=6)
        program = generate_program(1, config)
        # 6 generated + main
        assert len(program.classes["Gen"].methods) == 7

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_generated_programs_verify(self, seed):
        verify_program(generate_program(seed))

    @given(st.integers(0, 200))
    @settings(max_examples=12, deadline=None)
    def test_generated_programs_terminate(self, seed):
        program = generate_program(seed)
        result = run_program(program, RuntimeConfig(cores=1, max_steps=2_000_000))
        assert result.threads[0].finished
        assert result.threads[0].uncaught is None

    def test_call_graph_is_acyclic(self):
        config = GeneratorConfig(methods=8, call_probability=1.0)
        program = generate_program(9, config)
        for method in program.methods():
            for inst in method.code:
                if inst.methodref is not None:
                    caller_index = int(method.name[1:]) if method.name != "main" else -1
                    callee_index = int(inst.methodref.method_name[1:])
                    assert callee_index > caller_index


class TestDecodability:
    """The analyzer gate replaced PR 3's NOP padding: every shipped
    program must be statically decodable, with no NOPs distorting it."""

    @given(st.integers(0, 600))
    @settings(max_examples=25, deadline=None)
    def test_generated_programs_statically_decodable(self, seed):
        from repro.analysis import check_program

        checks = check_program(generate_program(seed))
        assert all(c.decodable for c in checks.values())

    def test_switch_heavy_programs_decodable(self):
        from repro.analysis import check_program

        config = GeneratorConfig(methods=5, switch_probability=0.6, max_depth=3)
        for seed in range(30):
            checks = check_program(generate_program(seed, config))
            bad = [q for q, c in checks.items() if not c.decodable]
            assert bad == [], "seed=%d: %r" % (seed, bad)

    def test_no_nop_padding_emitted(self):
        from repro.jvm.opcodes import Op

        config = GeneratorConfig(methods=5, switch_probability=0.9)
        for seed in range(10):
            program = generate_program(seed, config)
            for method in program.methods():
                assert all(inst.op is not Op.NOP for inst in method.code)

    def test_regeneration_is_deterministic(self):
        config = GeneratorConfig(methods=5, switch_probability=0.9)
        first = generate_program(7, config)
        second = generate_program(7, config)
        for method in first.methods():
            twin = second.method("Gen", method.name)
            assert [str(i) for i in method.code] == [str(i) for i in twin.code]


class TestExceptionArcs:
    @given(st.integers(0, 300))
    @settings(max_examples=12, deadline=None)
    def test_programs_with_throws_verify_and_terminate(self, seed):
        config = GeneratorConfig(throw_probability=0.4)
        program = generate_program(seed, config)
        verify_program(program)
        result = run_program(program, RuntimeConfig(cores=1, max_steps=2_000_000))
        assert result.threads[0].finished
        assert result.threads[0].uncaught is None

    def test_throws_actually_occur(self):
        config = GeneratorConfig(throw_probability=0.9, max_depth=4)
        hit = 0
        for seed in range(40):
            program = generate_program(seed, config)
            result = run_program(program, RuntimeConfig(cores=1, max_steps=2_000_000))
            hit += result.counters["exceptions"]
        assert hit > 0

    @given(st.integers(0, 200))
    @settings(max_examples=8, deadline=None)
    def test_lossless_reconstruction_with_throws(self, seed):
        from repro.core import JPortal
        from ..conftest import lossless_config

        config = GeneratorConfig(throw_probability=0.5)
        program = generate_program(seed, config)
        run = run_program(program, RuntimeConfig(cores=1, max_steps=2_000_000))
        result = JPortal(program).analyze_run(run, lossless_config())
        assert result.flow_of(0).reconstructed_nodes() == run.threads[0].truth
