"""Tests for the nine DaCapo-like subjects."""

import pytest

from repro.jvm.verifier import verify_program
from repro.workloads import SUBJECT_NAMES, all_subjects, build_subject, default_config

EXPECTED_NAMES = (
    "avrora",
    "batik",
    "fop",
    "h2",
    "jython",
    "luindex",
    "lusearch",
    "pmd",
    "sunflow",
)

MULTITHREADED = {"h2", "lusearch", "pmd"}

# Scaled-down sizes so the suite stays fast; benchmarks use the defaults.
SMALL_SIZE = {
    "avrora": 800,
    "batik": 40,
    "fop": 15,
    "h2": 120,
    "jython": 400,
    "luindex": 60,
    "lusearch": 8,
    "pmd": 15,
    "sunflow": 3,
}


def small(name):
    return build_subject(name, size=SMALL_SIZE[name])


class TestRegistry:
    def test_all_nine_subjects_present(self):
        assert SUBJECT_NAMES == EXPECTED_NAMES

    def test_unknown_subject_rejected(self):
        with pytest.raises(KeyError, match="unknown subject"):
            build_subject("tomcat")

    def test_all_subjects_builder(self):
        subjects = all_subjects()
        assert [s.name for s in subjects] == list(EXPECTED_NAMES)


@pytest.mark.parametrize("name", EXPECTED_NAMES)
class TestEachSubject:
    def test_program_verifies(self, name):
        subject = small(name)
        verify_program(subject.program)

    def test_threading_matches_paper(self, name):
        subject = small(name)
        assert subject.threaded == (name in MULTITHREADED)

    def test_runs_without_uncaught_exceptions(self, name):
        subject = small(name)
        result = subject.run()
        for thread in result.threads:
            assert thread.finished
            assert thread.uncaught is None, thread.uncaught

    def test_run_is_deterministic(self, name):
        subject = small(name)
        first = subject.run()
        second = small(name).run()
        assert [t.result for t in first.threads] == [t.result for t in second.threads]
        assert first.counters == second.counters
        assert first.threads[0].truth == second.threads[0].truth

    def test_exercises_both_execution_modes(self, name):
        result = small(name).run()
        assert result.counters["steps_interp"] > 0
        if name != "avrora":  # avrora's dispatch loop stays interpreted
            assert result.counters["steps_compiled"] > 0

    def test_produces_trace_events(self, name):
        result = small(name).run()
        assert result.event_count() > 1000


class TestWorkloadCharacter:
    def test_fop_exercises_exceptions(self):
        result = small("fop").run()
        assert result.counters["exceptions"] > 0

    def test_multithreaded_subjects_have_multiple_threads(self):
        for name in MULTITHREADED:
            result = small(name).run()
            assert len(result.threads) >= 3

    def test_pmd_exposes_opaque_call_site(self):
        subject = build_subject("pmd")
        assert subject.opaque_call_sites
        qname, bci = subject.opaque_call_sites[0]
        assert qname == "Pmd.visit"
        inst = subject.program.method("Pmd", "visit").code[bci]
        assert inst.methodref.method_name == "check"

    def test_sizes_scale(self):
        small = build_subject("batik", size=20).run()
        large = build_subject("batik", size=60).run()
        assert large.counters["steps"] > small.counters["steps"]

    def test_sunflow_has_highest_compiled_share(self):
        """sunflow is the trace-rate outlier, as in the paper."""
        result = build_subject("sunflow").run()
        share = result.counters["steps_compiled"] / result.counters["steps"]
        assert share > 0.6

    def test_default_config_overrides(self):
        config = default_config(cores=2, quantum=111)
        assert config.cores == 2
        assert config.quantum == 111
