"""Targeted tests for context-sensitive (PDA-style) projection."""

from repro.core.nfa import ProgramNFA
from repro.core.observed import ObservedStep
from repro.core.reconstruct import Projector
from repro.jvm.assembler import MethodAssembler
from repro.jvm.icfg import ICFG
from repro.jvm.model import JClass, JProgram
from repro.jvm.opcodes import Op
from repro.jvm.verifier import verify_program


def _ambiguous_callsites_program():
    """Two call sites of the same callee with *identical* continuations --
    the plain NFA cannot tell the return sites apart."""
    helper = MethodAssembler("T", "helper", arg_count=1, returns_value=True)
    helper.load(0).const(1).iadd().ireturn()
    main = MethodAssembler("T", "main", arg_count=0, returns_value=True)
    # site 1: const, call, pop
    main.const(1).invokestatic("T", "helper", 1, True).pop()
    # site 2: const, call, pop  (identical shape)
    main.const(2).invokestatic("T", "helper", 1, True).pop()
    main.const(0).ireturn()
    cls = JClass("T")
    cls.add_method(helper.build())
    cls.add_method(main.build())
    program = JProgram("amb")
    program.add_class(cls)
    program.set_entry("T", "main")
    verify_program(program)
    return program


def _steps(symbols):
    return [
        ObservedStep(symbol=op, taken=taken, location=None, source="interp", tsc=i)
        for i, (op, taken) in enumerate(symbols)
    ]


# The full observed sequence of main(): both call sites.
FULL_SEQUENCE = [
    (Op.ICONST_1, None),
    (Op.INVOKESTATIC, None),
    (Op.ILOAD_0, None),  # helper@0
    (Op.ICONST_1, None),
    (Op.IADD, None),
    (Op.IRETURN, None),
    (Op.POP, None),  # back at main@2
    (Op.ICONST_2, None),
    (Op.INVOKESTATIC, None),
    (Op.ILOAD_0, None),
    (Op.ICONST_1, None),
    (Op.IADD, None),
    (Op.IRETURN, None),
    (Op.POP, None),  # back at main@5
    (Op.ICONST_0, None),
    (Op.IRETURN, None),
]

EXPECTED = [
    ("T.main", 0),
    ("T.main", 1),
    ("T.helper", 0),
    ("T.helper", 1),
    ("T.helper", 2),
    ("T.helper", 3),
    ("T.main", 2),
    ("T.main", 3),
    ("T.main", 4),
    ("T.helper", 0),
    ("T.helper", 1),
    ("T.helper", 2),
    ("T.helper", 3),
    ("T.main", 5),
    ("T.main", 6),
    ("T.main", 7),
]


class TestContextSensitivity:
    def setup_method(self):
        self.program = _ambiguous_callsites_program()
        self.nfa = ProgramNFA(ICFG(self.program))

    def test_pda_resolves_return_sites_exactly(self):
        projector = Projector(self.nfa, context_sensitive=True)
        projection = projector.project(_steps(FULL_SEQUENCE))
        assert projection.path == EXPECTED
        assert projection.stats.restarts == 0

    def test_nfa_mode_still_produces_feasible_path(self):
        projector = Projector(self.nfa, context_sensitive=False)
        projection = projector.project(_steps(FULL_SEQUENCE))
        assert projection.stats.matched == len(FULL_SEQUENCE)
        # Every consecutive pair is an ICFG edge (feasibility), even if the
        # return sites may be swapped.
        icfg = ICFG(self.program)
        for left, right in zip(projection.path, projection.path[1:]):
            successors = {dst for dst, _k in icfg.successors(left)}
            assert right in successors

    def test_midstream_start_with_empty_stack(self):
        """A segment starting inside the callee has no call on the stack;
        the return must fall back to context-insensitive behaviour."""
        tail = FULL_SEQUENCE[9:]  # starts at helper@0 of the second call
        projector = Projector(self.nfa, context_sensitive=True)
        projection = projector.project(_steps(tail))
        assert projection.stats.matched == len(tail)
        # The helper body is identified even without a stack.
        assert projection.path[0] == ("T.helper", 0)

    def test_deep_recursion_beyond_stack_bound(self):
        """Recursion deeper than MAX_STACK must degrade gracefully, not
        fail: oldest frames are forgotten."""
        from repro.core import reconstruct

        rec = MethodAssembler("R", "down", arg_count=1, returns_value=True)
        rec.load(0).ifle("base")
        rec.load(0).const(1).isub().invokestatic("R", "down", 1, True).ireturn()
        rec.label("base")
        rec.const(0).ireturn()
        main = MethodAssembler("R", "main", arg_count=0, returns_value=True)
        main.const(reconstruct.MAX_STACK + 20)
        main.invokestatic("R", "down", 1, True).ireturn()
        cls = JClass("R")
        cls.add_method(rec.build())
        cls.add_method(main.build())
        program = JProgram("deep")
        program.add_class(cls)
        program.set_entry("R", "main")
        verify_program(program)

        from repro.jvm.runtime import RuntimeConfig, run_program
        from repro.jvm.jit import JITPolicy

        run = run_program(
            program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=10**9))
        )
        from ..conftest import analyze_lossless

        result = analyze_lossless(program, run)
        flow = result.flow_of(0)
        # Deep recursion unwinds without failures; every step is matched.
        assert flow.projection.matched == flow.projection.steps
        assert flow.projection.restarts == 0
        # Beyond MAX_STACK the oldest frames were forgotten, so the very
        # last returns are context-insensitive and may pick the wrong (but
        # feasible) return site: near-exact, by design.
        from repro.profiling.accuracy import sequence_similarity

        similarity = sequence_similarity(
            run.threads[0].truth, flow.reconstructed_nodes()
        )
        assert similarity > 0.99
