"""Persistent analysis-cache coverage: hits, and every way to miss.

The cache's contract mirrors the archive layer's salvage semantics: no
state of the cache file may ever raise or change analysis results -- a
damaged entry reads as a miss (cold rebuild) and publishes a
``cache.anomaly.<kind>`` counter.  Each failure mode gets a directed
test: corruption, stale format version, and partial write (truncation),
plus store-failure and the warm-run skip-determinize verification the
ISSUE's acceptance criteria name.
"""

import os
import pickle

from repro.core import JPortal
from repro.core.dfacache import (
    ANOMALY_CORRUPT,
    ANOMALY_STALE_VERSION,
    ANOMALY_STORE_FAILED,
    ANOMALY_TRUNCATED,
    CACHE_METRIC_PREFIX,
    CACHE_VERSION,
    MAGIC,
    AnalysisCache,
    analysis_cache_key,
)

from ..conftest import build_figure2_program, lossless_config, run_program_traced


def _entry_path(cache_dir, program):
    return AnalysisCache(str(cache_dir)).path_for(analysis_cache_key(program))


class TestCacheRoundTrip:
    def test_cold_build_stores_then_warm_build_hits(self, figure2, tmp_path):
        cold = JPortal(figure2, cache_dir=str(tmp_path))
        assert cold._cache_events == {"cache.misses": 1, "cache.stores": 1}
        assert os.path.exists(_entry_path(tmp_path, figure2))
        warm = JPortal(figure2, cache_dir=str(tmp_path))
        assert warm._cache_events == {"cache.hits": 1}
        # The loaded report carries the same verdicts as the rebuilt one.
        assert sorted(warm.analysis_report.checks) == sorted(
            cold.analysis_report.checks
        )
        assert warm.analysis_report.summary()["decodable"] == (
            cold.analysis_report.summary()["decodable"]
        )

    def test_key_is_stable_and_content_sensitive(self, figure2):
        assert analysis_cache_key(figure2) == analysis_cache_key(figure2)
        other = build_figure2_program(iterations=7)
        # Same structure, different constant -> different bytecode digest.
        assert analysis_cache_key(other) != analysis_cache_key(figure2)
        # Opaque-site choice is part of the identity.
        assert analysis_cache_key(figure2, [("Test.main", 9)]) != (
            analysis_cache_key(figure2)
        )

    def test_frontend_is_part_of_the_cache_identity(self, figure2, tmp_path):
        """Regression: a report built under one frontend's projection
        model must never satisfy a lookup for another frontend.  Before
        the key folded the frontend in, a pt-warmed cache served pt
        verdicts to an etrace analysis."""
        pt_key = analysis_cache_key(figure2)
        assert pt_key == analysis_cache_key(figure2, frontend="pt")
        etrace_key = analysis_cache_key(figure2, frontend="etrace")
        assert pt_key != etrace_key
        # Bumping a model's version (a projection-semantics change)
        # invalidates that frontend's entries without touching others.
        assert analysis_cache_key(figure2, frontend="pt", model_version=2) != pt_key
        assert analysis_cache_key(
            figure2, frontend="etrace", model_version=2
        ) != etrace_key

        # End to end: warming the cache under pt leaves etrace cold.
        JPortal(figure2, cache_dir=str(tmp_path))  # pt populate
        crossed = JPortal(
            figure2, cache_dir=str(tmp_path), analysis_frontend="etrace"
        )
        assert crossed._cache_events == {"cache.misses": 1, "cache.stores": 1}
        assert crossed.analysis_report.frontend == "etrace"
        # And each frontend now hits its own entry.
        assert JPortal(figure2, cache_dir=str(tmp_path))._cache_events == {
            "cache.hits": 1
        }
        warm_etrace = JPortal(
            figure2, cache_dir=str(tmp_path), analysis_frontend="etrace"
        )
        assert warm_etrace._cache_events == {"cache.hits": 1}
        assert warm_etrace.analysis_report.frontend == "etrace"

    def test_warm_build_produces_identical_results(self, figure2, tmp_path):
        run = run_program_traced(figure2)
        config = lossless_config()
        baseline = JPortal(figure2).analyze_run(run, config)
        JPortal(figure2, cache_dir=str(tmp_path))  # populate
        warm = JPortal(figure2, cache_dir=str(tmp_path)).analyze_run(run, config)
        assert warm.flows == baseline.flows
        assert warm.anomalies_by_kind == baseline.anomalies_by_kind

    def test_warm_run_skips_subset_construction(self, figure2, tmp_path):
        """Acceptance criterion: ~zero analysis/determinize time on a
        warm-cache repeat, visible through ``timings_by_prefix``."""
        run = run_program_traced(figure2)
        config = lossless_config()
        JPortal(figure2, cache_dir=str(tmp_path))  # populate
        cold = JPortal(figure2).analyze_run(run, config)
        warm = JPortal(figure2, cache_dir=str(tmp_path)).analyze_run(run, config)
        cold_static = cold.metrics.timings_by_prefix("analysis")[".static"]
        warm_static = warm.metrics.timings_by_prefix("analysis")[".static"]
        assert warm_static < cold_static
        assert warm_static < 0.05  # a disk load, not a determinize
        assert warm.metrics.counter("cache.hits") == 1


class TestCacheFailureModes:
    """One directed test per damage class; none may raise."""

    def _damage_then_rebuild(self, program, tmp_path, damage):
        JPortal(program, cache_dir=str(tmp_path))  # populate
        path = _entry_path(tmp_path, program)
        damage(path)
        rebuilt = JPortal(program, cache_dir=str(tmp_path))
        return rebuilt, path

    def test_corrupt_payload_falls_back_to_cold_build(self, figure2, tmp_path):
        def flip_payload_bytes(path):
            blob = bytearray(open(path, "rb").read())
            blob[-10] ^= 0xFF
            open(path, "wb").write(bytes(blob))

        rebuilt, path = self._damage_then_rebuild(
            figure2, tmp_path, flip_payload_bytes
        )
        events = rebuilt._cache_events
        assert events[CACHE_METRIC_PREFIX + ANOMALY_CORRUPT] == 1
        assert events["cache.misses"] == 1
        assert events["cache.stores"] == 1  # cold result re-persisted
        # The rewritten entry is valid again.
        assert JPortal(figure2, cache_dir=str(tmp_path))._cache_events == {
            "cache.hits": 1
        }

    def test_bad_magic_counts_as_corrupt(self, figure2, tmp_path):
        def clobber_magic(path):
            blob = bytearray(open(path, "rb").read())
            blob[:4] = b"XXXX"
            open(path, "wb").write(bytes(blob))

        rebuilt, _ = self._damage_then_rebuild(figure2, tmp_path, clobber_magic)
        assert rebuilt._cache_events[CACHE_METRIC_PREFIX + ANOMALY_CORRUPT] == 1

    def test_stale_version_falls_back_to_cold_build(self, figure2, tmp_path):
        def bump_version(path):
            blob = bytearray(open(path, "rb").read())
            assert blob[:4] == MAGIC
            blob[4] = (CACHE_VERSION + 1) & 0xFF
            open(path, "wb").write(bytes(blob))

        rebuilt, _ = self._damage_then_rebuild(figure2, tmp_path, bump_version)
        events = rebuilt._cache_events
        assert events[CACHE_METRIC_PREFIX + ANOMALY_STALE_VERSION] == 1
        assert events["cache.misses"] == 1

    def test_partial_write_falls_back_to_cold_build(self, figure2, tmp_path):
        def truncate(path):
            size = os.path.getsize(path)
            with open(path, "rb+") as handle:
                handle.truncate(size // 2)

        rebuilt, _ = self._damage_then_rebuild(figure2, tmp_path, truncate)
        assert rebuilt._cache_events[CACHE_METRIC_PREFIX + ANOMALY_TRUNCATED] == 1

    def test_header_only_fragment_counts_truncated(self, figure2, tmp_path):
        def to_fragment(path):
            open(path, "wb").write(b"JP")

        rebuilt, _ = self._damage_then_rebuild(figure2, tmp_path, to_fragment)
        assert rebuilt._cache_events[CACHE_METRIC_PREFIX + ANOMALY_TRUNCATED] == 1

    def test_valid_checksum_bad_pickle_counts_corrupt(self, figure2, tmp_path):
        """A consistent entry whose body isn't a pickled report (e.g. a
        hostile rewrite) still degrades to a cold build."""
        import hashlib
        import struct

        cache = AnalysisCache(str(tmp_path))
        body = b"not a pickle at all"
        header = struct.pack(
            "<4sI32sQ", MAGIC, CACHE_VERSION, hashlib.sha256(body).digest(), len(body)
        )
        key = analysis_cache_key(figure2)
        with open(cache.path_for(key), "wb") as handle:
            handle.write(header + body)
        rebuilt = JPortal(figure2, cache_dir=str(tmp_path))
        assert rebuilt._cache_events[CACHE_METRIC_PREFIX + ANOMALY_CORRUPT] == 1

    def test_unwritable_cache_dir_never_raises(self, figure2, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the cache dir should be")
        jportal = JPortal(figure2, cache_dir=str(blocker))
        events = jportal._cache_events
        assert events[CACHE_METRIC_PREFIX + ANOMALY_STORE_FAILED] == 1
        assert jportal.analysis_report is not None  # cold build succeeded

    def test_anomalies_surface_on_result_metrics(self, figure2, tmp_path):
        """Cache damage is visible on the same surfaces as decode and
        archive damage: run metrics and ``anomalies_by_kind``."""
        def truncate(path):
            with open(path, "rb+") as handle:
                handle.truncate(8)

        rebuilt, _ = self._damage_then_rebuild(figure2, tmp_path, truncate)
        run = run_program_traced(figure2)
        result = rebuilt.analyze_run(run, lossless_config())
        assert result.metrics.counter(
            CACHE_METRIC_PREFIX + ANOMALY_TRUNCATED
        ) == 1
        assert result.anomalies_by_kind.get(ANOMALY_TRUNCATED) == 1


class TestCachePrimitives:
    def test_store_and_load_arbitrary_object(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        assert cache.store("k" * 8, {"payload": list(range(10))})
        assert cache.load("k" * 8) == {"payload": list(range(10))}
        assert cache.events == {"cache.stores": 1, "cache.hits": 1}

    def test_missing_entry_is_a_plain_miss(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        assert cache.load("absent") is None
        assert cache.events == {"cache.misses": 1}

    def test_atomic_replace_leaves_no_temp_files(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        for round_trip in range(3):
            assert cache.store("samekey", round_trip)
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []
        assert cache.load("samekey") == 2

    def test_entry_survives_pickle_of_loaded_report(self, figure2, tmp_path):
        """Loaded reports are themselves picklable (process workers ship
        analyser state built from them)."""
        JPortal(figure2, cache_dir=str(tmp_path))
        cache = AnalysisCache(str(tmp_path))
        report = cache.load(analysis_cache_key(figure2))
        assert report is not None
        assert pickle.loads(pickle.dumps(report)).checks.keys() == report.checks.keys()


class TestCacheConcurrency:
    """The temp+rename store must be safe under concurrent access: a
    reader racing a writer sees either the old value, the new value, or
    a miss -- never a partial write, never an exception, and never a
    ``cache.anomaly.*`` event caused purely by the race."""

    def test_store_load_race_never_yields_partial_entry(self, tmp_path):
        import threading

        key = "racekey1"
        payload = {"table": list(range(5000)), "tag": "x" * 4096}
        stop = threading.Event()
        failures = []

        def writer(cache):
            while not stop.is_set():
                if not cache.store(key, payload):
                    failures.append("store returned False")

        def reader(cache):
            while not stop.is_set():
                got = cache.load(key)
                if got is not None and got != payload:
                    failures.append("partial entry observed")

        caches = [AnalysisCache(str(tmp_path)) for _ in range(4)]
        threads = [
            threading.Thread(target=writer, args=(caches[0],)),
            threading.Thread(target=writer, args=(caches[1],)),
            threading.Thread(target=reader, args=(caches[2],)),
            threading.Thread(target=reader, args=(caches[3],)),
        ]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join()

        assert failures == []
        for cache in caches:
            anomalies = {
                name: count
                for name, count in cache.events.items()
                if name.startswith("cache.anomaly.")
            }
            assert anomalies == {}, anomalies
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []
        assert AnalysisCache(str(tmp_path)).load(key) == payload

    def test_many_writers_distinct_keys_all_land(self, tmp_path):
        import threading

        def hammer(cache, worker):
            for round_trip in range(25):
                key = "w%dk%d" % (worker, round_trip % 5)
                assert cache.store(key, (worker, round_trip))

        caches = [AnalysisCache(str(tmp_path)) for _ in range(6)]
        threads = [
            threading.Thread(target=hammer, args=(cache, worker))
            for worker, cache in enumerate(caches)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        fresh = AnalysisCache(str(tmp_path))
        for worker in range(6):
            for slot in range(5):
                value = fresh.load("w%dk%d" % (worker, slot))
                assert value is not None and value[0] == worker
        assert not any(
            name.startswith("cache.anomaly.") for name in fresh.events
        )
