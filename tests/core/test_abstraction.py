"""Tests for tier abstractions, incl. property tests of Lemmas 5.3/5.4."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.abstraction import (
    TIER_CALL,
    TIER_CONCRETE,
    TIER_CONTROL,
    abstract_ops,
    common_suffix_length,
)
from repro.jvm.opcodes import Op, tier

ALL_OPS = list(Op)
ops_lists = st.lists(st.sampled_from(ALL_OPS), max_size=60)


class TestAbstractSequence:
    def test_tier3_is_identity(self):
        ops = [Op.ILOAD_0, Op.IFEQ, Op.IADD, Op.IRETURN]
        assert abstract_ops(ops, TIER_CONCRETE) == ops

    def test_tier2_keeps_control_only(self):
        ops = [Op.ILOAD_0, Op.IFEQ, Op.IADD, Op.GOTO, Op.IRETURN]
        assert abstract_ops(ops, TIER_CONTROL) == [Op.IFEQ, Op.GOTO, Op.IRETURN]

    def test_tier1_keeps_call_structure_only(self):
        ops = [Op.IFEQ, Op.INVOKESTATIC, Op.GOTO, Op.IRETURN, Op.ATHROW]
        assert abstract_ops(ops, TIER_CALL) == [Op.INVOKESTATIC, Op.IRETURN, Op.ATHROW]

    def test_empty_sequence(self):
        for level in (1, 2, 3):
            assert abstract_ops([], level) == []

    @given(ops_lists)
    def test_abstraction_is_a_subsequence(self, ops):
        for level in (1, 2):
            abstracted = abstract_ops(ops, level)
            iterator = iter(ops)
            assert all(op in iterator for op in abstracted)

    @given(ops_lists)
    def test_tiers_are_nested(self, ops):
        tier1 = abstract_ops(ops, 1)
        tier2 = abstract_ops(ops, 2)
        # tier1 is a subsequence of tier2
        iterator = iter(tier2)
        assert all(op in iterator for op in tier1)

    @given(ops_lists)
    def test_idempotent(self, ops):
        for level in (1, 2):
            once = abstract_ops(ops, level)
            assert abstract_ops(once, level) == once


class TestCommonSuffix:
    def test_basic(self):
        assert common_suffix_length("abcd", "xbcd") == 3
        assert common_suffix_length("abcd", "abcd") == 4
        assert common_suffix_length("abcd", "xyz") == 0
        assert common_suffix_length("", "abc") == 0

    @given(ops_lists, ops_lists)
    def test_bounded_by_lengths(self, left, right):
        n = common_suffix_length(left, right)
        assert 0 <= n <= min(len(left), len(right))
        if n:
            assert left[-n:] == right[-n:]
        if n < min(len(left), len(right)):
            assert left[-n - 1] != right[-n - 1]


class TestLemmas:
    """Property tests for the paper's Lemma 5.3 and Lemma 5.4.

    The matching operator on already-aligned sequences is the common
    suffix; tier abstraction then commutes with it in the inequality
    directions the paper proves.
    """

    @staticmethod
    def _alpha(ops, level):
        return abstract_ops(list(ops), level)

    @given(ops_lists, ops_lists, ops_lists)
    @settings(max_examples=200)
    def test_lemma_5_3_monotone_over_tiers(self, omega0, omega1, omega2):
        """|w0 . w1| >= |w0 . w2| => |a2(w0 . w1)| >= |a2(w0 . w2)| (and
        tier 2 => tier 1)."""
        suffix1 = omega0[len(omega0) - common_suffix_length(omega0, omega1) :]
        suffix2 = omega0[len(omega0) - common_suffix_length(omega0, omega2) :]
        if len(suffix1) >= len(suffix2):
            assert len(self._alpha(suffix1, 2)) >= len(self._alpha(suffix2, 2))
        if len(self._alpha(suffix1, 2)) >= len(self._alpha(suffix2, 2)):
            # suffix2 is a suffix of suffix1 whenever it's shorter (both
            # are suffixes of omega0), which is what the lemma uses.
            if len(suffix1) >= len(suffix2):
                assert len(self._alpha(suffix1, 1)) >= len(self._alpha(suffix2, 1))

    @given(ops_lists, ops_lists)
    @settings(max_examples=200)
    def test_lemma_5_4_abstraction_relaxes_matching(self, omega0, omega1):
        """|a_l(w0) . a_l(w1)| >= |a_l(w0 . w1)| for l in {1, 2}."""
        concrete_suffix = omega0[len(omega0) - common_suffix_length(omega0, omega1) :]
        for level in (1, 2):
            abstract_match = common_suffix_length(
                self._alpha(omega0, level), self._alpha(omega1, level)
            )
            assert abstract_match >= len(self._alpha(concrete_suffix, level))

    @given(ops_lists, ops_lists, ops_lists)
    @settings(max_examples=200)
    def test_theorem_5_5_pruning_is_safe(self, omega0, omega1, omega2):
        """If the tier-2 abstract match of w1 is worse than w2's recorded
        concrete-match abstraction, w1 cannot beat w2 concretely."""
        m_12 = common_suffix_length(omega0, omega2)
        alpha2_of_concrete2 = len(self._alpha(omega0[len(omega0) - m_12 :], 2))
        abstract_match1 = common_suffix_length(
            self._alpha(omega0, 2), self._alpha(omega1, 2)
        )
        if abstract_match1 < alpha2_of_concrete2:
            assert common_suffix_length(omega0, omega1) < m_12
