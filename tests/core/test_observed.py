"""Unit tests for the observed-trace model and the bytecode lifters."""

from repro.core.interp_decoder import lift_dispatch
from repro.core.jit_decoder import lift_span
from repro.core.metadata import collect_metadata
from repro.core.observed import ObservedHole, ObservedStep, ObservedTrace
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import RuntimeConfig, run_program
from repro.pt.decoder import InterpDispatch, JitSpan
from repro.jvm.opcodes import Op

from ..conftest import build_figure2_program


def _step(op=Op.NOP, tsc=0):
    return ObservedStep(symbol=op, taken=None, location=None, source="interp", tsc=tsc)


def _hole(tsc=0):
    return ObservedHole(start_tsc=tsc, end_tsc=tsc + 10)


class TestObservedTrace:
    def test_segments_split_at_holes(self):
        trace = ObservedTrace(tid=0)
        trace.items.extend([_step(), _step(), _hole(), _step(), _hole(), _hole(), _step()])
        segments = trace.segments()
        assert [len(s) for s in segments] == [2, 1, 1]

    def test_segments_without_holes(self):
        trace = ObservedTrace(tid=0)
        trace.items.extend([_step(), _step()])
        assert [len(s) for s in trace.segments()] == [2]

    def test_leading_and_trailing_holes(self):
        trace = ObservedTrace(tid=0)
        trace.items.extend([_hole(), _step(), _hole()])
        assert [len(s) for s in trace.segments()] == [1]
        assert len(trace.holes()) == 2

    def test_hole_duration(self):
        hole = ObservedHole(start_tsc=5, end_tsc=25)
        assert hole.duration == 20
        assert ObservedHole(start_tsc=9, end_tsc=3).duration == 0

    def test_steps_and_holes_views(self):
        trace = ObservedTrace(tid=1)
        trace.items.extend([_step(), _hole(), _step()])
        assert len(trace.steps()) == 2
        assert len(trace.holes()) == 1


class TestLifters:
    def test_lift_dispatch(self):
        item = InterpDispatch(tsc=7, op=Op.IFEQ, taken=True)
        step = lift_dispatch(item)
        assert step.symbol is Op.IFEQ
        assert step.taken is True
        assert step.location is None
        assert step.source == "interp"
        assert step.tsc == 7

    def test_lift_span_maps_debug_locations(self):
        program = build_figure2_program(iterations=30)
        run = run_program(
            program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=5))
        )
        database = collect_metadata(run)
        code = run.code_cache.lookup("Test.fun")
        # A span covering the whole compiled body in address order.
        span = JitSpan(tsc=0, addresses=[mi.address for mi in code.instructions])
        steps = lift_span(span, database, program)
        # Synthetic instructions are skipped; every step has a location.
        assert 0 < len(steps) <= len(code.instructions)
        for step in steps:
            assert step.source == "jit"
            assert step.location is not None
            qname, bci = step.location
            assert qname == "Test.fun"
            assert program.method("Test", "fun").code[bci].op is step.symbol

    def test_lift_span_skips_unknown_addresses(self):
        program = build_figure2_program(iterations=30)
        run = run_program(
            program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=5))
        )
        database = collect_metadata(run)
        span = JitSpan(tsc=0, addresses=[0xDEAD])
        assert lift_span(span, database, program) == []
