"""Integration tests for the end-to-end JPortal pipeline."""

from repro.core import JPortal
from repro.core.recovery import RecoveryConfig
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import JVMRuntime, RuntimeConfig, run_program

from ..conftest import (
    build_figure2_program,
    lossless_config,
    lossy_config,
)


class TestLosslessExactness:
    def test_interp_only_run_reconstructs_exactly(self):
        program = build_figure2_program(iterations=40)
        run = run_program(
            program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=10**9))
        )
        result = JPortal(program).analyze_run(run, lossless_config())
        assert result.flow_of(0).reconstructed_nodes() == run.threads[0].truth

    def test_mixed_mode_run_reconstructs_exactly(self):
        program = build_figure2_program(iterations=80)
        run = run_program(
            program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=5))
        )
        result = JPortal(program).analyze_run(run, lossless_config())
        flow = result.flow_of(0)
        assert flow.reconstructed_nodes() == run.threads[0].truth
        assert flow.projection.restarts == 0
        assert result.anomalies == 0

    def test_inlined_run_reconstructs_exactly(self):
        program = build_figure2_program(iterations=80)
        run = run_program(
            program,
            RuntimeConfig(
                cores=1, jit=JITPolicy(hot_threshold=3, enable_inlining=True)
            ),
        )
        result = JPortal(program).analyze_run(run, lossless_config())
        assert result.flow_of(0).reconstructed_nodes() == run.threads[0].truth

    def test_all_entries_decoded_when_lossless(self):
        program = build_figure2_program(iterations=30)
        run = run_program(program, RuntimeConfig(cores=1))
        result = JPortal(program).analyze_run(run, lossless_config())
        counts = result.flow_of(0).entry_counts()
        assert counts["recovered"] == 0
        assert counts["fallback"] == 0
        assert result.loss_fraction == 0.0


class TestLossyPipeline:
    def _lossy_result(self):
        program = build_figure2_program(iterations=400)
        run = run_program(
            program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=10))
        )
        jportal = JPortal(program, recovery=RecoveryConfig(cost_per_instruction=1.0))
        return run, jportal.analyze_run(run, lossy_config())

    def test_loss_produces_holes_and_recovery(self):
        run, result = self._lossy_result()
        flow = result.flow_of(0)
        assert result.loss_fraction > 0
        assert flow.observed.holes()
        counts = flow.entry_counts()
        assert counts["recovered"] + counts["fallback"] > 0

    def test_segments_match_holes(self):
        _run, result = self._lossy_result()
        flow = result.flow_of(0)
        assert len(flow.segments) >= len(flow.observed.holes())

    def test_timings_populated(self):
        _run, result = self._lossy_result()
        timings = result.timings
        assert timings.decode_seconds >= 0
        assert timings.total_seconds == (
            timings.decode_seconds
            + timings.reconstruct_seconds
            + timings.recovery_seconds
        )


class TestMultiThreaded:
    def test_two_threads_reconstruct_independently(self):
        program = build_figure2_program(iterations=50)
        config = RuntimeConfig(cores=2, quantum=60, jit=JITPolicy(hot_threshold=10**9))
        runtime = JVMRuntime(program, config)
        runtime.add_thread(name="main")
        runtime.add_thread("Test", "main", ())
        run = runtime.run()
        result = JPortal(program).analyze_run(run, lossless_config())
        for tid in (0, 1):
            assert result.flow_of(tid).reconstructed_nodes() == run.threads[tid].truth
