"""Unit tests for the NFA formulation (Definitions 4.1-4.3, Figures 4-5)."""

from repro.core.nfa import NFA, ProgramNFA, abstract_method_nfa, determinize, method_nfa
from repro.jvm.icfg import ICFG
from repro.jvm.opcodes import Op, tier

from ..conftest import build_figure2_program


class TestProgramNFA:
    def setup_method(self):
        self.program = build_figure2_program()
        self.icfg = ICFG(self.program)
        self.nfa = ProgramNFA(self.icfg)

    def test_one_state_per_instruction(self):
        total = sum(len(m.code) for m in self.program.methods())
        assert len(self.nfa) == total

    def test_state_node_roundtrip(self):
        for state in range(len(self.nfa)):
            node = self.nfa.node(state)
            assert self.nfa.state_of[node] == state

    def test_initial_states_by_symbol(self):
        starts = self.nfa.initial_states(Op.ILOAD_0)
        nodes = {self.nfa.node(s) for s in starts}
        assert nodes == {
            ("Test.fun", 0),
            ("Test.main", 4),
            ("Test.main", 7),
            ("Test.main", 10),
        }

    def test_conditional_arms_resolved(self):
        ifeq_state = self.nfa.state_of[("Test.fun", 1)]
        arms = self.nfa.cond_arms[ifeq_state]
        assert arms is not None
        fall, taken = arms
        assert self.nfa.node(fall) == ("Test.fun", 2)
        # ifeq in fun targets the else-arm
        target_bci = self.program.method("Test", "fun").code[1].target
        assert self.nfa.node(taken) == ("Test.fun", target_bci)

    def test_step_with_known_taken_is_deterministic(self):
        ifeq_state = self.nfa.state_of[("Test.fun", 1)]
        assert len(list(self.nfa.step(ifeq_state, True))) == 1
        assert len(list(self.nfa.step(ifeq_state, False))) == 1

    def test_step_with_unknown_taken_is_both_arms(self):
        ifeq_state = self.nfa.state_of[("Test.fun", 1)]
        assert len(list(self.nfa.step(ifeq_state, None))) == 2

    def test_call_step_reaches_callee_entry(self):
        call_node = None
        for inst in self.program.method("Test", "main").code:
            if inst.methodref is not None:
                call_node = ("Test.main", inst.bci)
                break
        state = self.nfa.state_of[call_node]
        successors = {self.nfa.node(s) for s in self.nfa.step(state, None)}
        assert ("Test.fun", 0) in successors

    def test_control_closure_lands_on_control_states(self):
        closure = self.nfa.control_closure()
        for state in range(len(self.nfa)):
            for target in closure[state]:
                assert self.nfa.is_control(target)

    def test_control_closure_of_fun_entry(self):
        # fun@0 is iload_0; the first control instruction after it is ifeq@1.
        state = self.nfa.state_of[("Test.fun", 0)]
        closure = self.nfa.control_closure()[state]
        assert {self.nfa.node(s) for s in closure} == {("Test.fun", 1)}

    def test_abstract_step_skips_noncontrol(self):
        # From ifeq@1 taken=False: next control is ifne@8 (through the
        # then-arm's data instructions and the goto... the then-arm has a
        # goto, which is control).  Check it lands only on control states.
        ifeq_state = self.nfa.state_of[("Test.fun", 1)]
        result = self.nfa.abstract_step(ifeq_state, False)
        assert result
        for state in result:
            assert self.nfa.is_control(state)

    def test_entry_states_indexed(self):
        entries = self.nfa.entry_states_by_op.get(Op.ILOAD_0, [])
        assert [self.nfa.node(s) for s in entries] == [("Test.fun", 0)]

    def test_tiers_recorded(self):
        for state in range(len(self.nfa)):
            assert self.nfa.tier_of[state] == tier(self.nfa.op_of[state])


class TestGenericNFA:
    def _simple(self):
        # 0 -a-> 1 -eps-> 2 -b-> 3
        nfa = NFA(state_count=4)
        nfa.add(0, "a", 1)
        nfa.add(1, NFA.EPSILON, 2)
        nfa.add(2, "b", 3)
        nfa.starts = frozenset({0})
        nfa.accepts = frozenset({3})
        return nfa

    def test_epsilon_closure(self):
        nfa = self._simple()
        assert nfa.epsilon_closure({1}) == frozenset({1, 2})
        assert nfa.epsilon_closure({0}) == frozenset({0})

    def test_move(self):
        nfa = self._simple()
        assert nfa.move({0}, "a") == frozenset({1})
        assert nfa.move({0}, "b") == frozenset()

    def test_accepts_sequence(self):
        nfa = self._simple()
        assert nfa.accepts_sequence(["a", "b"])
        assert not nfa.accepts_sequence(["b"])
        assert not nfa.accepts_sequence(["a", "a"])

    def test_determinize_equivalent(self):
        nfa = self._simple()
        dfa = determinize(nfa)
        for sequence in (["a", "b"], ["a"], ["b"], ["a", "b", "b"], []):
            assert dfa.accepts_sequence(sequence) == nfa.accepts_sequence(sequence)

    def test_determinize_nondeterministic_branching(self):
        nfa = NFA(state_count=4)
        nfa.add(0, "x", 1)
        nfa.add(0, "x", 2)
        nfa.add(1, "y", 3)
        nfa.add(2, "z", 3)
        nfa.starts = frozenset({0})
        nfa.accepts = frozenset({3})
        dfa = determinize(nfa)
        assert dfa.accepts_sequence(["x", "y"])
        assert dfa.accepts_sequence(["x", "z"])
        assert not dfa.accepts_sequence(["x", "x"])
        # The subset construction merged the x-successors.
        assert frozenset({1, 2}) in dfa.transitions


class TestFigure4And5:
    """Mirror the paper's running example: fun's per-method NFA, its
    abstraction, and the determinised DFA."""

    def setup_method(self):
        self.program = build_figure2_program()
        self.icfg = ICFG(self.program)
        self.nfa = method_nfa(self.icfg, "Test.fun")

    @staticmethod
    def _is_control(label):
        op, _taken = label
        return tier(op) <= 2

    def test_executed_path_accepted(self):
        # fun(1, 4): iload_0, ifeq(not taken), iload_1, iconst_1, iadd,
        # istore_1, goto, iload_1, iconst_2, irem, ifne(not taken: 5%2!=0
        # -> actually 5 is odd so taken)...
        # Use the simpler false path: fun(0, 4): ifeq taken.
        path = [
            (Op.ILOAD_0, None),
            (Op.IFEQ, True),
            (Op.ILOAD_1, None),
            (Op.ICONST_2, None),
            (Op.ISUB, None),
            (Op.ISTORE_1, None),
            (Op.ILOAD_1, None),
            (Op.ICONST_2, None),
            (Op.IREM, None),
            (Op.IFNE, False),
            (Op.ICONST_1, None),
            (Op.IRETURN, None),
        ]
        assert self.nfa.accepts_sequence(path)

    def test_impossible_path_rejected(self):
        path = [
            (Op.ILOAD_0, None),
            (Op.IFEQ, True),
            (Op.ICONST_1, None),  # cannot follow the taken arm
        ]
        assert not self.nfa.accepts_sequence(path)

    def test_wrong_branch_direction_rejected(self):
        path = [
            (Op.ILOAD_0, None),
            (Op.IFEQ, False),
            (Op.ILOAD_1, None),
            (Op.ICONST_2, None),
            (Op.ISUB, None),  # the fallthrough arm adds, not subtracts
        ]
        assert not self.nfa.accepts_sequence(path)

    def test_abstraction_keeps_control_skeleton(self):
        abstract = abstract_method_nfa(self.nfa, self._is_control)
        # Theorem 4.4 direction: a concretely accepted path's abstraction
        # is accepted by the ANFA.
        concrete = [
            (Op.ILOAD_0, None),
            (Op.IFEQ, True),
            (Op.ILOAD_1, None),
            (Op.ICONST_2, None),
            (Op.ISUB, None),
            (Op.ISTORE_1, None),
            (Op.ILOAD_1, None),
            (Op.ICONST_2, None),
            (Op.IREM, None),
            (Op.IFNE, False),
            (Op.ICONST_1, None),
            (Op.IRETURN, None),
        ]
        abstract_path = [label for label in concrete if self._is_control(label)]
        assert abstract.accepts_sequence(abstract_path)

    def test_abstraction_rejects_impossible_skeleton(self):
        abstract = abstract_method_nfa(self.nfa, self._is_control)
        # Two returns in a row are impossible in fun.
        assert not abstract.accepts_sequence(
            [(Op.IRETURN, None), (Op.IRETURN, None)]
        )

    def test_dfa_of_abstraction_matches(self):
        abstract = abstract_method_nfa(self.nfa, self._is_control)
        dfa = determinize(abstract)
        good = [(Op.IFEQ, True), (Op.IFNE, False), (Op.IRETURN, None)]
        bad = [(Op.IFNE, True), (Op.IFNE, True)]
        assert dfa.accepts_sequence(good) == abstract.accepts_sequence(good)
        assert dfa.accepts_sequence(bad) == abstract.accepts_sequence(bad)
        assert dfa.state_count() >= 1
