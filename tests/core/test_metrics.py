"""Unit tests for the pipeline metrics registry."""

import threading

from repro.core.metrics import MetricsRegistry


class TestCounters:
    def test_incr_and_read_per_thread(self):
        registry = MetricsRegistry()
        registry.incr("decode.packets", 5, tid=1)
        registry.incr("decode.packets", 7, tid=2)
        registry.incr("decode.packets", 3, tid=1)
        assert registry.counter("decode.packets", tid=1) == 8
        assert registry.counter("decode.packets", tid=2) == 7
        assert registry.counter("decode.packets") == 15

    def test_missing_counter_is_zero(self):
        registry = MetricsRegistry()
        assert registry.counter("nope") == 0
        assert registry.counter("nope", tid=3) == 0

    def test_global_and_per_thread_keys_are_distinct(self):
        registry = MetricsRegistry()
        registry.incr("x", 1)  # global (tid=None)
        registry.incr("x", 2, tid=0)
        assert registry.counter("x", tid=0) == 2
        assert registry.counter("x") == 3  # aggregate includes both


class TestTimingsAndMaxima:
    def test_timer_accumulates(self):
        registry = MetricsRegistry()
        with registry.timer("decode", tid=1):
            pass
        with registry.timer("decode", tid=1):
            pass
        assert registry.timing("decode", tid=1) > 0
        assert registry.timing("decode") == registry.timing("decode", tid=1)

    def test_observe_max_keeps_high_water_mark(self):
        registry = MetricsRegistry()
        registry.observe_max("frontier", 4, tid=0)
        registry.observe_max("frontier", 2, tid=0)
        registry.observe_max("frontier", 9, tid=1)
        assert registry.maximum("frontier", tid=0) == 4
        assert registry.maximum("frontier") == 9
        assert registry.maximum("absent") == 0.0

    def test_tids_enumerates_threads_seen(self):
        registry = MetricsRegistry()
        registry.incr("a", tid=3)
        registry.add_time("p", 0.1, tid=1)
        registry.observe_max("m", 5, tid=2)
        registry.incr("g")  # global: not a tid
        assert registry.tids() == [1, 2, 3]


class TestMergeAndSnapshot:
    def test_merge_folds_all_kinds(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.incr("c", 1, tid=0)
        right.incr("c", 2, tid=0)
        right.add_time("p", 0.5, tid=1)
        right.observe_max("m", 7, tid=1)
        left.merge(right)
        assert left.counter("c", tid=0) == 3
        assert left.timing("p", tid=1) == 0.5
        assert left.maximum("m", tid=1) == 7

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.incr("decode.packets", 4, tid=0)
        registry.incr("decode.packets", 6, tid=1)
        registry.observe_max("project.frontier_peak", 3, tid=0)
        snapshot = registry.snapshot()
        packets = snapshot["counters"]["decode.packets"]
        assert packets["total"] == 10
        assert packets["by_thread"] == {0: 4, 1: 6}
        peak = snapshot["maxima"]["project.frontier_peak"]
        assert peak["total"] == 3


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()
        rounds = 2_000

        def worker(tid):
            for _ in range(rounds):
                registry.incr("hits", tid=tid)
                registry.observe_max("peak", tid, tid=tid)

        threads = [
            threading.Thread(target=worker, args=(tid,)) for tid in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("hits") == 4 * rounds
        for tid in range(4):
            assert registry.counter("hits", tid=tid) == rounds
