"""Unit tests for metadata collection and the offline code database."""

from repro.core.metadata import CodeDatabase, CodeDump, collect_metadata
from repro.jvm.jit import JITPolicy
from repro.jvm.opcodes import Op
from repro.jvm.runtime import RuntimeConfig, run_program

from ..conftest import build_figure2_program


def _run(threshold=5):
    program = build_figure2_program(iterations=30)
    config = RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=threshold))
    return run_program(program, config)


class TestCollection:
    def test_dump_per_compiled_method(self):
        run = _run()
        database = collect_metadata(run)
        assert database.compiled_method_count() == run.counters["compiles"]

    def test_dumps_carry_load_timestamps(self):
        run = _run()
        database = collect_metadata(run)
        for dump in database.code_dumps:
            assert dump.load_tsc >= 0
            assert dump.unload_tsc is None
            assert dump.entry < dump.limit

    def test_metadata_bytes_positive(self):
        database = collect_metadata(_run())
        assert database.metadata_bytes() > 0


class TestTemplateQueries:
    def setup_method(self):
        self.run = _run()
        self.database = collect_metadata(self.run)

    def test_template_lookup_roundtrip(self):
        table = self.run.template_table
        for op in (Op.ILOAD_0, Op.IFEQ, Op.GOTO, Op.IRETURN):
            assert self.database.template_op_at(table.entry(op)) is op

    def test_return_stub_detected(self):
        table = self.run.template_table
        assert self.database.is_return_stub(table.return_stub_entry)
        assert not self.database.is_return_stub(table.entry(Op.NOP))

    def test_conditional_classifier(self):
        assert self.database.op_is_conditional(Op.IFEQ)
        assert not self.database.op_is_conditional(Op.GOTO)
        assert not self.database.op_is_conditional(Op.IADD)


class TestNativeQueries:
    def setup_method(self):
        self.run = _run()
        self.database = collect_metadata(self.run)
        self.code = self.run.code_cache.lookup("Test.fun")

    def test_instruction_lookup(self):
        for mi in self.code.instructions:
            found = self.database.native_instruction_at(mi.address)
            assert found is not None
            assert found.address == mi.address

    def test_lookup_outside_code_is_none(self):
        assert self.database.native_instruction_at(0x1234) is None
        assert self.database.native_instruction_at(self.code.entry + 1) is None

    def test_dump_at_resolves_range(self):
        dump = self.database.dump_at(self.code.entry)
        assert dump is not None
        assert dump.qname == "Test.fun"
        assert self.database.dump_at(self.code.limit + 1000) is None

    def test_debug_frames_for_semantic_instructions(self):
        frames_seen = 0
        for mi in self.code.instructions:
            frames = self.database.debug_frames_at(mi.address)
            if frames is not None:
                frames_seen += 1
                assert frames[-1][0] in ("Test.fun", "Test.main")
        assert frames_seen == len(self.code.debug)

    def test_in_code_cache(self):
        assert self.database.in_code_cache(self.code.entry)
        assert not self.database.in_code_cache(
            self.run.template_table.entry(Op.NOP)
        )


class TestAddressReuse:
    def test_timestamp_disambiguates_reused_addresses(self):
        from repro.jvm.machine import MachineInstruction, MIKind, DEFAULT_ADDRESS_SPACE

        base = DEFAULT_ADDRESS_SPACE.code_cache_base
        old_mi = MachineInstruction(base, 3, MIKind.OTHER, text="old")
        new_mi = MachineInstruction(base, 3, MIKind.RET, text="new")
        old = CodeDump(
            qname="T.old", entry=base, limit=base + 3,
            instructions=[old_mi], debug={base: (("T.old", 0),)},
            load_tsc=0, unload_tsc=100,
        )
        new = CodeDump(
            qname="T.new", entry=base, limit=base + 3,
            instructions=[new_mi], debug={base: (("T.new", 0),)},
            load_tsc=100, unload_tsc=None,
        )
        database = CodeDatabase({}, [old, new], DEFAULT_ADDRESS_SPACE)
        assert database.native_instruction_at(base, tsc=50).text == "old"
        assert database.native_instruction_at(base, tsc=150).text == "new"
        assert database.debug_frames_at(base, tsc=50) == (("T.old", 0),)
        assert database.debug_frames_at(base, tsc=150) == (("T.new", 0),)

    def test_alive_at_semantics(self):
        dump = CodeDump(
            qname="q", entry=0, limit=1, instructions=[], debug={},
            load_tsc=10, unload_tsc=20,
        )
        assert not dump.alive_at(5)
        assert dump.alive_at(10)
        assert dump.alive_at(19)
        assert not dump.alive_at(20)
        assert not dump.alive_at(None)  # None = "currently live"
