"""Unit tests for per-core -> per-thread trace reassembly (Section 6)."""

from repro.core.multicore import split_by_thread, split_loss_at_switches
from repro.jvm.jit import JITPolicy
from repro.jvm.machine import ThreadSwitchRecord
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.pt.packets import AuxLossRecord, TIPPacket
from repro.pt.perf import CoreTrace, PTConfig, PTTrace, collect

from ..conftest import build_figure2_program, lossless_config


def _synthetic_trace(switches, packets_by_core):
    cores = []
    for core_id, packets in enumerate(packets_by_core):
        cores.append(
            CoreTrace(
                core=core_id,
                packets=packets,
                losses=[],
                bytes_generated=sum(p.size for p in packets),
                bytes_lost=0,
                encoder_stats=None,
            )
        )
    return PTTrace(cores=cores, thread_switches=switches, config=PTConfig())


def _tip(tsc):
    return TIPPacket(tsc=tsc, target=0x1000)


class TestSyntheticSplitting:
    def test_single_thread_single_core(self):
        switches = [ThreadSwitchRecord(core=0, tid=0, tsc=0)]
        trace = _synthetic_trace(switches, [[_tip(1), _tip(5)]])
        threads = split_by_thread(trace)
        assert set(threads) == {0}
        assert threads[0].packet_count() == 2

    def test_windows_assign_by_timestamp(self):
        switches = [
            ThreadSwitchRecord(core=0, tid=0, tsc=0),
            ThreadSwitchRecord(core=0, tid=1, tsc=10),
            ThreadSwitchRecord(core=0, tid=0, tsc=20),
        ]
        packets = [_tip(1), _tip(11), _tip(15), _tip(25)]
        threads = split_by_thread(_synthetic_trace(switches, [packets]))
        assert threads[0].packet_count() == 2
        assert threads[1].packet_count() == 2

    def test_cross_core_merge_in_tsc_order(self):
        switches = [
            ThreadSwitchRecord(core=0, tid=0, tsc=0),
            ThreadSwitchRecord(core=1, tid=0, tsc=10),
        ]
        trace = _synthetic_trace(
            switches, [[_tip(1), _tip(2)], [_tip(11), _tip(12)]]
        )
        threads = split_by_thread(trace)
        timestamps = [p.tsc for _tag, p in threads[0].stream]
        assert timestamps == sorted(timestamps)
        assert threads[0].packet_count() == 4

    def test_packet_before_any_switch_goes_to_first_owner(self):
        switches = [ThreadSwitchRecord(core=0, tid=3, tsc=100)]
        trace = _synthetic_trace(switches, [[_tip(5)]])
        threads = split_by_thread(trace)
        assert threads[3].packet_count() == 1

    def test_core_without_sideband_uses_first_owner_anywhere(self):
        """A core with packets but no switch records must not invent a
        phantom tid 0: its packets go to the earliest owner observed on
        any core."""
        switches = [ThreadSwitchRecord(core=0, tid=7, tsc=50)]
        trace = _synthetic_trace(switches, [[_tip(60)], [_tip(5), _tip(70)]])
        threads = split_by_thread(trace)
        assert set(threads) == {7}
        assert threads[7].packet_count() == 3

    def test_no_sideband_at_all_defaults_to_tid_zero(self):
        trace = _synthetic_trace([], [[_tip(1), _tip(2)]])
        threads = split_by_thread(trace)
        assert set(threads) == {0}
        assert threads[0].packet_count() == 2

    def test_sideband_core_choice_uses_earliest_record(self):
        """The fallback owner is the earliest switch anywhere, not the
        first core's first record."""
        switches = [
            ThreadSwitchRecord(core=0, tid=2, tsc=30),
            ThreadSwitchRecord(core=2, tid=5, tsc=10),
        ]
        # Core 1 has no sideband; tid 5 switched in first (tsc=10).
        trace = _synthetic_trace(switches, [[_tip(40)], [_tip(4)], [_tip(15)]])
        threads = split_by_thread(trace)
        assert threads[5].packet_count() == 2  # core 1 orphan + core 2
        assert threads[2].packet_count() == 1

    def test_jittered_boundary_misassigns(self):
        """A switch record whose timestamp lies (wrongly) after packets of
        the new thread sends those packets to the old thread -- the
        paper's multi-thread inaccuracy source."""
        true_switch_at = 10
        recorded_at = 13  # jitter: +3
        switches = [
            ThreadSwitchRecord(core=0, tid=0, tsc=0),
            ThreadSwitchRecord(core=0, tid=1, tsc=recorded_at),
        ]
        packets = [_tip(11), _tip(12), _tip(14)]
        threads = split_by_thread(_synthetic_trace(switches, [packets]))
        assert threads[0].packet_count() == 2  # 11, 12 misassigned
        assert threads[1].packet_count() == 1


class TestRealRuns:
    def _multithreaded_run(self, jitter=0):
        program = build_figure2_program(iterations=60)
        config = RuntimeConfig(
            cores=2,
            quantum=40,
            jit=JITPolicy(hot_threshold=10**9),
            switch_timestamp_jitter=jitter,
        )
        runtime = JVMRuntime(program, config)
        runtime.add_thread(name="main")
        runtime.add_thread("Test", "main", ())
        return runtime.run()

    def test_all_threads_have_streams(self):
        run = self._multithreaded_run()
        trace = collect(run, lossless_config())
        threads = split_by_thread(trace)
        assert set(threads) == {0, 1}
        for thread in threads.values():
            assert thread.packet_count() > 0
            assert thread.loss_count() == 0

    def test_packet_conservation(self):
        run = self._multithreaded_run()
        trace = collect(run, lossless_config())
        threads = split_by_thread(trace)
        total = sum(t.packet_count() for t in threads.values())
        assert total == trace.packet_count()

    def test_per_thread_streams_are_tsc_ordered(self):
        run = self._multithreaded_run()
        threads = split_by_thread(collect(run, lossless_config()))
        for thread in threads.values():
            timestamps = [
                item.tsc if tag == "packet" else item.start_tsc
                for tag, item in thread.stream
            ]
            assert timestamps == sorted(timestamps)


class TestLossSplitting:
    """Loss spans crossing thread-switch boundaries (the attribution
    bugfix): each owner gets its share, per-core totals conserved."""

    def _trace_with_loss(self, switches, losses, packets=()):
        core = CoreTrace(
            core=0,
            packets=list(packets),
            losses=list(losses),
            bytes_generated=sum(l.bytes_lost for l in losses),
            bytes_lost=sum(l.bytes_lost for l in losses),
            encoder_stats=None,
        )
        return PTTrace(cores=[core], thread_switches=switches, config=PTConfig())

    def test_span_crossing_switch_is_split(self):
        """Regression: the whole span used to land on the owner of its
        start tsc, silently blaming one thread for another's hole."""
        switches = [
            ThreadSwitchRecord(core=0, tid=0, tsc=0),
            ThreadSwitchRecord(core=0, tid=1, tsc=10),
        ]
        loss = AuxLossRecord(
            start_tsc=5, end_tsc=15, bytes_lost=110, packets_lost=11
        )
        threads = split_by_thread(self._trace_with_loss(switches, [loss]))
        assert threads[0].loss_count() == 1
        assert threads[1].loss_count() == 1
        (piece0,) = [item for tag, item in threads[0].stream if tag == "loss"]
        (piece1,) = [item for tag, item in threads[1].stream if tag == "loss"]
        assert (piece0.start_tsc, piece0.end_tsc) == (5, 9)
        assert (piece1.start_tsc, piece1.end_tsc) == (10, 15)
        assert piece0.bytes_lost + piece1.bytes_lost == 110
        assert piece0.packets_lost + piece1.packets_lost == 11
        # 5 of 11 ticks belong to tid 0.
        assert piece0.bytes_lost == 50
        assert piece0.packets_lost == 5

    def test_single_owner_span_is_returned_unsplit(self):
        switches = [
            ThreadSwitchRecord(core=0, tid=0, tsc=0),
            ThreadSwitchRecord(core=0, tid=1, tsc=100),
        ]
        loss = AuxLossRecord(
            start_tsc=5, end_tsc=50, bytes_lost=64, packets_lost=4
        )
        threads = split_by_thread(self._trace_with_loss(switches, [loss]))
        assert 1 not in threads or threads[1].loss_count() == 0
        (piece,) = [item for tag, item in threads[0].stream if tag == "loss"]
        assert piece is loss

    def test_switch_back_to_same_owner_does_not_split(self):
        """Cut points where attribution does not change re-merge, so the
        old single-owner behaviour (one record, unmodified) survives."""
        switches = [
            ThreadSwitchRecord(core=0, tid=0, tsc=0),
            ThreadSwitchRecord(core=0, tid=0, tsc=10),
        ]
        loss = AuxLossRecord(
            start_tsc=5, end_tsc=15, bytes_lost=100, packets_lost=10
        )
        (tid, piece), = split_loss_at_switches(
            loss, [0, 10], lambda tsc: 0
        )
        assert tid == 0 and piece is loss

    def test_boundary_at_span_start_does_not_cut(self):
        """A switch exactly at start_tsc owns the whole span already;
        only boundaries strictly inside (start, end] cut."""
        loss = AuxLossRecord(
            start_tsc=10, end_tsc=20, bytes_lost=10, packets_lost=1
        )
        pieces = split_loss_at_switches(
            loss, [10], lambda tsc: 1 if tsc >= 10 else 0
        )
        assert pieces == [(1, loss)]

    def test_conservation_property(self):
        """Property: over random switch layouts and spans, piece totals
        always equal the original and pieces tile the span exactly."""
        import random

        rng = random.Random(1234)
        for _ in range(200):
            switch_tscs = sorted(
                rng.sample(range(1, 400), rng.randrange(1, 12))
            )
            owners = [rng.randrange(4) for _ in switch_tscs]

            def owner_of(tsc):
                position = len([t for t in switch_tscs if t <= tsc]) - 1
                return owners[position] if position >= 0 else owners[0]

            start = rng.randrange(0, 380)
            end = start + rng.randrange(0, 60)
            loss = AuxLossRecord(
                start_tsc=start,
                end_tsc=end,
                bytes_lost=rng.randrange(0, 5000),
                packets_lost=rng.randrange(0, 50),
            )
            pieces = split_loss_at_switches(loss, switch_tscs, owner_of)
            assert sum(p.bytes_lost for _, p in pieces) == loss.bytes_lost
            assert sum(p.packets_lost for _, p in pieces) == loss.packets_lost
            assert pieces[0][1].start_tsc == start
            assert pieces[-1][1].end_tsc == end
            for (_, left), (_, right) in zip(pieces, pieces[1:]):
                assert right.start_tsc == left.end_tsc + 1
            for index, (tid, piece) in enumerate(pieces):
                assert tid == owner_of(piece.start_tsc)
                if index:
                    assert tid != pieces[index - 1][0]

    def test_per_core_loss_totals_conserved_through_split(self):
        """Sum of per-thread loss spans equals the per-core loss spans
        (the ISSUE's property), on a trace with several crossing holes."""
        switches = [
            ThreadSwitchRecord(core=0, tid=0, tsc=0),
            ThreadSwitchRecord(core=0, tid=1, tsc=50),
            ThreadSwitchRecord(core=0, tid=2, tsc=120),
            ThreadSwitchRecord(core=0, tid=0, tsc=200),
        ]
        losses = [
            AuxLossRecord(start_tsc=40, end_tsc=70, bytes_lost=333, packets_lost=7),
            AuxLossRecord(start_tsc=100, end_tsc=260, bytes_lost=999, packets_lost=13),
        ]
        threads = split_by_thread(self._trace_with_loss(switches, losses))
        split_bytes = sum(
            item.bytes_lost
            for thread in threads.values()
            for tag, item in thread.stream
            if tag == "loss"
        )
        split_packets = sum(
            item.packets_lost
            for thread in threads.values()
            for tag, item in thread.stream
            if tag == "loss"
        )
        assert split_bytes == sum(l.bytes_lost for l in losses)
        assert split_packets == sum(l.packets_lost for l in losses)
        # Every thread that owned the core inside a hole sees a share.
        assert all(threads[tid].loss_count() for tid in (0, 1, 2))
