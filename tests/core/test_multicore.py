"""Unit tests for per-core -> per-thread trace reassembly (Section 6)."""

from repro.core.multicore import split_by_thread
from repro.jvm.jit import JITPolicy
from repro.jvm.machine import ThreadSwitchRecord
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.pt.packets import TIPPacket
from repro.pt.perf import CoreTrace, PTConfig, PTTrace, collect

from ..conftest import build_figure2_program, lossless_config


def _synthetic_trace(switches, packets_by_core):
    cores = []
    for core_id, packets in enumerate(packets_by_core):
        cores.append(
            CoreTrace(
                core=core_id,
                packets=packets,
                losses=[],
                bytes_generated=sum(p.size for p in packets),
                bytes_lost=0,
                encoder_stats=None,
            )
        )
    return PTTrace(cores=cores, thread_switches=switches, config=PTConfig())


def _tip(tsc):
    return TIPPacket(tsc=tsc, target=0x1000)


class TestSyntheticSplitting:
    def test_single_thread_single_core(self):
        switches = [ThreadSwitchRecord(core=0, tid=0, tsc=0)]
        trace = _synthetic_trace(switches, [[_tip(1), _tip(5)]])
        threads = split_by_thread(trace)
        assert set(threads) == {0}
        assert threads[0].packet_count() == 2

    def test_windows_assign_by_timestamp(self):
        switches = [
            ThreadSwitchRecord(core=0, tid=0, tsc=0),
            ThreadSwitchRecord(core=0, tid=1, tsc=10),
            ThreadSwitchRecord(core=0, tid=0, tsc=20),
        ]
        packets = [_tip(1), _tip(11), _tip(15), _tip(25)]
        threads = split_by_thread(_synthetic_trace(switches, [packets]))
        assert threads[0].packet_count() == 2
        assert threads[1].packet_count() == 2

    def test_cross_core_merge_in_tsc_order(self):
        switches = [
            ThreadSwitchRecord(core=0, tid=0, tsc=0),
            ThreadSwitchRecord(core=1, tid=0, tsc=10),
        ]
        trace = _synthetic_trace(
            switches, [[_tip(1), _tip(2)], [_tip(11), _tip(12)]]
        )
        threads = split_by_thread(trace)
        timestamps = [p.tsc for _tag, p in threads[0].stream]
        assert timestamps == sorted(timestamps)
        assert threads[0].packet_count() == 4

    def test_packet_before_any_switch_goes_to_first_owner(self):
        switches = [ThreadSwitchRecord(core=0, tid=3, tsc=100)]
        trace = _synthetic_trace(switches, [[_tip(5)]])
        threads = split_by_thread(trace)
        assert threads[3].packet_count() == 1

    def test_core_without_sideband_uses_first_owner_anywhere(self):
        """A core with packets but no switch records must not invent a
        phantom tid 0: its packets go to the earliest owner observed on
        any core."""
        switches = [ThreadSwitchRecord(core=0, tid=7, tsc=50)]
        trace = _synthetic_trace(switches, [[_tip(60)], [_tip(5), _tip(70)]])
        threads = split_by_thread(trace)
        assert set(threads) == {7}
        assert threads[7].packet_count() == 3

    def test_no_sideband_at_all_defaults_to_tid_zero(self):
        trace = _synthetic_trace([], [[_tip(1), _tip(2)]])
        threads = split_by_thread(trace)
        assert set(threads) == {0}
        assert threads[0].packet_count() == 2

    def test_sideband_core_choice_uses_earliest_record(self):
        """The fallback owner is the earliest switch anywhere, not the
        first core's first record."""
        switches = [
            ThreadSwitchRecord(core=0, tid=2, tsc=30),
            ThreadSwitchRecord(core=2, tid=5, tsc=10),
        ]
        # Core 1 has no sideband; tid 5 switched in first (tsc=10).
        trace = _synthetic_trace(switches, [[_tip(40)], [_tip(4)], [_tip(15)]])
        threads = split_by_thread(trace)
        assert threads[5].packet_count() == 2  # core 1 orphan + core 2
        assert threads[2].packet_count() == 1

    def test_jittered_boundary_misassigns(self):
        """A switch record whose timestamp lies (wrongly) after packets of
        the new thread sends those packets to the old thread -- the
        paper's multi-thread inaccuracy source."""
        true_switch_at = 10
        recorded_at = 13  # jitter: +3
        switches = [
            ThreadSwitchRecord(core=0, tid=0, tsc=0),
            ThreadSwitchRecord(core=0, tid=1, tsc=recorded_at),
        ]
        packets = [_tip(11), _tip(12), _tip(14)]
        threads = split_by_thread(_synthetic_trace(switches, [packets]))
        assert threads[0].packet_count() == 2  # 11, 12 misassigned
        assert threads[1].packet_count() == 1


class TestRealRuns:
    def _multithreaded_run(self, jitter=0):
        program = build_figure2_program(iterations=60)
        config = RuntimeConfig(
            cores=2,
            quantum=40,
            jit=JITPolicy(hot_threshold=10**9),
            switch_timestamp_jitter=jitter,
        )
        runtime = JVMRuntime(program, config)
        runtime.add_thread(name="main")
        runtime.add_thread("Test", "main", ())
        return runtime.run()

    def test_all_threads_have_streams(self):
        run = self._multithreaded_run()
        trace = collect(run, lossless_config())
        threads = split_by_thread(trace)
        assert set(threads) == {0, 1}
        for thread in threads.values():
            assert thread.packet_count() > 0
            assert thread.loss_count() == 0

    def test_packet_conservation(self):
        run = self._multithreaded_run()
        trace = collect(run, lossless_config())
        threads = split_by_thread(trace)
        total = sum(t.packet_count() for t in threads.values())
        assert total == trace.packet_count()

    def test_per_thread_streams_are_tsc_ordered(self):
        run = self._multithreaded_run()
        threads = split_by_thread(collect(run, lossless_config()))
        for thread in threads.values():
            timestamps = [
                item.tsc if tag == "packet" else item.start_tsc
                for tag, item in thread.stream
            ]
            assert timestamps == sorted(timestamps)
