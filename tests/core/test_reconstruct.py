"""Unit tests for projection: Algorithms 1-2 and the production Projector."""

from repro.core.nfa import ProgramNFA
from repro.core.observed import ObservedStep
from repro.core.reconstruct import (
    Projector,
    abstraction_guided,
    enumerate_and_test,
    match_from,
)
from repro.jvm.icfg import ICFG
from repro.jvm.opcodes import Op

from ..conftest import build_figure2_program

# fun(0, b even): the else-arm then the true-return.
FUN_FALSE_ARM = [
    (Op.ILOAD_0, None),
    (Op.IFEQ, True),
    (Op.ILOAD_1, None),
    (Op.ICONST_2, None),
    (Op.ISUB, None),
    (Op.ISTORE_1, None),
    (Op.ILOAD_1, None),
    (Op.ICONST_2, None),
    (Op.IREM, None),
    (Op.IFNE, False),
    (Op.ICONST_1, None),
    (Op.IRETURN, None),
]

FUN_FALSE_ARM_NODES = [
    ("Test.fun", bci) for bci in (0, 1, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)
]


def _steps(symbols, locations=None):
    steps = []
    for index, (op, taken) in enumerate(symbols):
        location = None
        if locations is not None:
            location = locations[index]
        steps.append(
            ObservedStep(symbol=op, taken=taken, location=location, source="interp", tsc=index)
        )
    return steps


class TestMatchFrom:
    def setup_method(self):
        self.program = build_figure2_program()
        self.nfa = ProgramNFA(ICFG(self.program))

    def test_match_from_correct_start(self):
        start = self.nfa.state_of[("Test.fun", 0)]
        path = match_from(self.nfa, _steps(FUN_FALSE_ARM), start)
        assert path == FUN_FALSE_ARM_NODES

    def test_match_from_wrong_start_fails(self):
        start = self.nfa.state_of[("Test.main", 0)]
        assert match_from(self.nfa, _steps(FUN_FALSE_ARM), start) is None

    def test_empty_sequence_matches_trivially(self):
        assert match_from(self.nfa, [], 0) == []


class TestAlgorithm1:
    def setup_method(self):
        self.program = build_figure2_program()
        self.nfa = ProgramNFA(ICFG(self.program))

    def test_finds_unique_path(self):
        path = enumerate_and_test(self.nfa, FUN_FALSE_ARM)
        assert path == FUN_FALSE_ARM_NODES

    def test_rejects_infeasible_sequence(self):
        impossible = [(Op.IRETURN, None)] * 3
        assert enumerate_and_test(self.nfa, impossible) is None

    def test_midstream_start_found(self):
        # A sequence starting mid-method (trace can start anywhere).
        tail = FUN_FALSE_ARM[6:]
        path = enumerate_and_test(self.nfa, tail)
        assert path is not None
        assert path[-1] == ("Test.fun", 16)

    def test_interprocedural_sequence(self):
        # main's call site into fun: invokestatic then fun's entry.
        sequence = [
            (Op.ILOAD_0, None),
            (Op.INVOKESTATIC, None),
            (Op.ILOAD_0, None),
            (Op.IFEQ, True),
        ]
        path = enumerate_and_test(self.nfa, sequence)
        assert path is not None
        assert path[1] == ("Test.main", 11)
        assert path[2] == ("Test.fun", 0)


class TestAlgorithm2:
    def setup_method(self):
        self.program = build_figure2_program()
        self.nfa = ProgramNFA(ICFG(self.program))

    def test_agrees_with_algorithm1(self):
        for sequence in (FUN_FALSE_ARM, FUN_FALSE_ARM[6:], FUN_FALSE_ARM[:4]):
            a1 = enumerate_and_test(self.nfa, sequence)
            a2 = abstraction_guided(self.nfa, sequence)
            assert (a1 is None) == (a2 is None)
            if a1 is not None:
                assert a1 == a2

    def test_rejects_what_algorithm1_rejects(self):
        impossible = [
            (Op.ILOAD_0, None),
            (Op.IFEQ, True),
            (Op.ICONST_1, None),  # wrong arm content
        ]
        assert enumerate_and_test(self.nfa, impossible) is None
        assert abstraction_guided(self.nfa, impossible) is None


class TestProjector:
    def setup_method(self):
        self.program = build_figure2_program()
        self.nfa = ProgramNFA(ICFG(self.program))
        self.projector = Projector(self.nfa)

    def test_full_segment_projection(self):
        projection = self.projector.project(_steps(FUN_FALSE_ARM))
        assert projection.path == FUN_FALSE_ARM_NODES
        assert projection.stats.restarts == 0
        assert projection.stats.matched == len(FUN_FALSE_ARM)

    def test_anchor_pins_frontier(self):
        locations = [None] * len(FUN_FALSE_ARM)
        locations[6] = ("Test.fun", 11)  # a JIT-known location mid-sequence
        projection = self.projector.project(_steps(FUN_FALSE_ARM, locations))
        assert projection.path == FUN_FALSE_ARM_NODES
        assert projection.stats.frontier_peak >= 1

    def test_contradictory_anchor_forces_restart(self):
        locations = [None] * len(FUN_FALSE_ARM)
        locations[6] = ("Test.main", 4)  # iload_0... wrong method AND wrong op
        projection = self.projector.project(_steps(FUN_FALSE_ARM, locations))
        assert projection.stats.restarts >= 1

    def test_empty_segment(self):
        projection = self.projector.project([])
        assert projection.path == []
        assert projection.stats.steps == 0

    def test_unmatchable_symbol_skipped(self):
        # NOP appears nowhere in figure2: position cannot be projected.
        steps = _steps([(Op.NOP, None)] + FUN_FALSE_ARM)
        projection = self.projector.project(steps)
        assert projection.path[0] is None
        assert projection.path[1:] == FUN_FALSE_ARM_NODES

    def test_taken_bits_disambiguate(self):
        # Without taken bits, both arms match the prefix; with them the
        # path is unique and correct.
        projection = self.projector.project(_steps(FUN_FALSE_ARM))
        assert projection.path[2] == ("Test.fun", 7)  # else-arm, not then-arm


class TestCallbackFallback:
    def test_opaque_call_recovered_via_entry_search(self):
        program = build_figure2_program()
        call_bci = next(
            inst.bci
            for inst in program.method("Test", "main").code
            if inst.methodref is not None
        )
        icfg = ICFG(program, opaque_call_sites=[("Test.main", call_bci)])
        nfa = ProgramNFA(icfg)
        projector = Projector(nfa)
        sequence = [
            (Op.ILOAD_0, None),  # main@10
            (Op.INVOKESTATIC, None),  # main@11 (opaque!)
            (Op.ILOAD_0, None),  # fun@0 -- only findable via entry search
            (Op.IFEQ, True),
            (Op.ILOAD_1, None),
        ]
        projection = projector.project(_steps(sequence))
        assert projection.stats.callback_fallbacks == 1
        assert projection.path[2] == ("Test.fun", 0)


class TestUnknownOutcome:
    """``taken=None`` (a conditional whose TNT bit was lost) must stay
    nondeterministic -- both arms explored -- never collapse to one arm."""

    def test_nfa_step_with_none_keeps_both_arms(self):
        program = build_figure2_program()
        nfa = ProgramNFA(ICFG(program))
        ifeq_state = nfa.state_of[("Test.fun", 1)]  # the IFEQ at bci 1
        both = set(nfa.step(ifeq_state, None))
        taken_only = set(nfa.step(ifeq_state, True))
        not_taken_only = set(nfa.step(ifeq_state, False))
        assert taken_only | not_taken_only == both
        assert taken_only != both and not_taken_only != both

    def test_projection_recovers_despite_unknown_bit(self):
        # The same observed sequence as FUN_FALSE_ARM but with the IFEQ
        # outcome unknown: the remaining opcodes disambiguate the path,
        # so projection still finds the unique concrete route.
        blurred = [(op, None) for op, _taken in FUN_FALSE_ARM]
        program = build_figure2_program()
        projector = Projector(ProgramNFA(ICFG(program)))
        projection = projector.project(_steps(blurred))
        assert projection.path == FUN_FALSE_ARM_NODES
