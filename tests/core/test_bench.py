"""The perf-trajectory tooling (``repro.bench``): storage + CI gate.

The subject-running halves (:func:`repro.bench.run_table5`,
:func:`repro.bench.run_archive_overhead`) are exercised by the real
``python -m repro.bench`` invocations that produce the committed
``BENCH_*.json``; these tests pin the parts CI correctness depends on --
the merge format and the regression gate's aggregate-throughput math --
on synthetic numbers, without running any subject.
"""

import json

from repro.bench import check_regression, merge_into, run_id


def _entry(rows):
    return {"table5": {"rows": rows}}


def _baseline_file(tmp_path, rows, label="post"):
    path = str(tmp_path / "BENCH_test.json")
    merge_into(path, label, _entry(rows))
    return path


BASE_ROWS = {
    "a": {"pt_bytes": 1000, "decode_s": 1.0},
    "b": {"pt_bytes": 3000, "decode_s": 1.0},
}


class TestMerge:
    def test_labels_accumulate(self, tmp_path):
        path = _baseline_file(tmp_path, BASE_ROWS, label="pre")
        merge_into(path, "post", _entry(BASE_ROWS))
        document = json.load(open(path))
        assert sorted(document["runs"]) == ["post", "pre"]
        assert document["format"] == "repro-bench-v1"

    def test_relabel_overwrites(self, tmp_path):
        path = _baseline_file(tmp_path, BASE_ROWS)
        merge_into(path, "post", _entry({"a": {"pt_bytes": 7, "decode_s": 1.0}}))
        document = json.load(open(path))
        assert document["runs"]["post"]["table5"]["rows"]["a"]["pt_bytes"] == 7

    def test_unreadable_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        open(path, "w").write("{not json")
        merge_into(path, "post", _entry(BASE_ROWS))
        assert json.load(open(path))["runs"]["post"]


class TestRegressionGate:
    def test_clean_run_passes(self, tmp_path):
        path = _baseline_file(tmp_path, BASE_ROWS)
        ok, messages = check_regression(_entry(BASE_ROWS), path)
        assert ok
        assert any("aggregate" in message for message in messages)

    def test_aggregate_drop_beyond_tolerance_fails(self, tmp_path):
        path = _baseline_file(tmp_path, BASE_ROWS)
        slower = {
            name: {"pt_bytes": row["pt_bytes"], "decode_s": row["decode_s"] * 2}
            for name, row in BASE_ROWS.items()
        }
        ok, messages = check_regression(_entry(slower), path)
        assert not ok
        assert "REGRESSION" in messages[-1]

    def test_single_subject_noise_does_not_fail_aggregate(self, tmp_path):
        """One small subject slowing down is absorbed when the bulk of
        the bytes decode at baseline speed (the point of aggregating)."""
        path = _baseline_file(tmp_path, BASE_ROWS)
        noisy = {
            "a": {"pt_bytes": 1000, "decode_s": 1.5},  # -33% alone
            "b": {"pt_bytes": 3000, "decode_s": 1.0},
        }
        ok, _messages = check_regression(_entry(noisy), path)
        assert ok

    def test_subject_subset_is_comparable(self, tmp_path):
        path = _baseline_file(tmp_path, BASE_ROWS)
        ok, messages = check_regression(
            _entry({"a": BASE_ROWS["a"]}), path, subjects=("a",)
        )
        assert ok
        assert len(messages) == 2  # one subject + the aggregate line

    def test_missing_baseline_fails_without_raising(self, tmp_path):
        ok, messages = check_regression(
            _entry(BASE_ROWS), str(tmp_path / "absent.json")
        )
        assert not ok and messages

    def test_no_common_subjects_fails(self, tmp_path):
        path = _baseline_file(tmp_path, {"z": {"pt_bytes": 1, "decode_s": 1.0}})
        ok, _messages = check_regression(_entry(BASE_ROWS), path)
        assert not ok


class TestRunId:
    def test_carries_host_and_timestamp(self):
        identity = run_id()
        assert identity["host"]
        assert identity["timestamp"]
        assert "python" in identity and "commit" in identity
