"""Unit tests for abstraction-guided data recovery (Section 5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.observed import ObservedHole
from repro.core.recovery import RecoveryConfig, RecoveryEngine, basic_search
from repro.jvm.icfg import ICFG

from ..conftest import build_figure2_program

# The repeating unit of Test.fun's else-arm path (see figure2 bytecode).
FUN_FALSE = [("Test.fun", bci) for bci in (0, 1, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)]
FUN_TRUE = [("Test.fun", bci) for bci in (0, 1, 2, 3, 4, 5, 6, 11, 12, 13, 14, 15, 16)]
MAIN_ITER = [("Test.main", bci) for bci in (4, 5, 6, 7, 8, 9, 10, 11)]
MAIN_RET = [("Test.main", bci) for bci in (12, 13, 14, 15, 16)]


def _iteration(even: bool):
    """One full main-loop iteration including the call into fun."""
    return MAIN_ITER + (FUN_FALSE if even else FUN_TRUE) + MAIN_RET


def _engine(**config):
    program = build_figure2_program()
    return RecoveryEngine(ICFG(program), RecoveryConfig(**config))


def _hole(duration=10_000):
    return ObservedHole(start_tsc=0, end_tsc=duration)


class TestAnchorSearch:
    def test_recovers_missing_iteration(self):
        """Two segments split mid-pattern: the CS from segment content
        fills the hole with the repeating unit."""
        pattern = _iteration(True) + _iteration(False)
        history = pattern * 3
        # IS ends right before a repetition; the missing part is one
        # iteration whose continuation reappears in segment 2.
        segment1 = history + _iteration(True)[:20]
        missing = _iteration(True)[20:]
        segment2 = _iteration(False) * 2
        engine = _engine(cost_per_instruction=1.0)
        flow = engine.recover([segment1, segment2], [_hole(len(missing) * 2)])
        assert flow.stats.filled_from_cs == 1
        recovered = [e for e, p in flow.entries if p == "recovered"]
        assert recovered == missing

    def test_no_anchor_match_falls_back_to_icfg(self):
        engine = _engine()
        segment1 = MAIN_ITER
        segment2 = MAIN_RET
        flow = engine.recover([segment1, segment2], [_hole()])
        # No repetition to learn from, but the ICFG connects main@11 to
        # main@12 through fun.
        assert flow.stats.filled_from_cs == 0
        assert flow.stats.filled_fallback == 1
        fallback = [e for e, p in flow.entries if p == "fallback"]
        assert fallback  # a path through fun

    def test_short_is_falls_back(self):
        engine = _engine(anchor_length=5)
        flow = engine.recover([MAIN_ITER[:2], MAIN_RET], [_hole()])
        assert flow.stats.filled_from_cs == 0

    def test_no_holes_passthrough(self):
        engine = _engine()
        flow = engine.recover([FUN_FALSE], [])
        assert [e for e, _p in flow.entries] == FUN_FALSE
        assert all(p == "decoded" for _e, p in flow.entries)
        assert flow.stats.holes == 0

    def test_trailing_hole_unfilled_without_context(self):
        engine = _engine()
        flow = engine.recover([MAIN_ITER], [_hole()])
        assert flow.stats.unfilled == 1


class TestBudget:
    def test_tiny_time_budget_rejects_long_fill(self):
        pattern = _iteration(True) * 4
        segment1 = pattern + _iteration(True)[:20]
        segment2 = _iteration(False)
        engine = _engine(cost_per_instruction=1.0, budget_slack=1.0)
        # Hole duration of 1 step: the CS continuation cannot reach the
        # post-hole context within budget.
        flow = engine.recover([segment1, segment2], [_hole(duration=1)])
        assert flow.stats.filled_from_cs == 0

    def test_max_fill_caps_recovery(self):
        engine = _engine(max_fill=3)
        pattern = _iteration(True) * 4
        segment1 = pattern + _iteration(True)[:20]
        segment2 = _iteration(False)
        flow = engine.recover([segment1, segment2], [_hole(10**6)])
        recovered = [e for e, p in flow.entries if p == "recovered"]
        assert len(recovered) <= 3 + len(segment2)


class TestRanking:
    def test_algorithm4_matches_basic_search_winner(self):
        """The abstraction-guided search must choose a CS at least as good
        (by concrete suffix) as Algorithm 3's exhaustive winner."""
        segments = [
            _iteration(True) * 2 + _iteration(False)[:10],
            _iteration(False) + _iteration(True),
            _iteration(True)[:18],
        ]
        best = basic_search(segments, is_id=0, anchor_length=3)
        assert best is not None
        engine = _engine()
        views = [
            engine.recover([segment], [])  # warm nothing; just reuse tiers
            for segment in segments
        ]
        # Compare via the ranking path: recover() with these segments and
        # a hole after segment 0 must pick a CS achieving the same m3.
        flow = engine.recover(segments, [_hole(10**6), _hole(10**6)])
        assert flow.stats.candidates_tested >= 1

    def test_tier_pruning_counts(self):
        # Many repetitions of mixed patterns: some candidates must be
        # pruned at an abstract tier before concrete comparison.
        segments = [
            (_iteration(True) + _iteration(False)) * 3,
            _iteration(False) * 2,
            _iteration(True) * 2,
        ]
        engine = _engine()
        flow = engine.recover(segments, [_hole(10**4), _hole(10**4)])
        stats = flow.stats
        assert stats.candidates_tested > 0


class TestProperties:
    @given(st.integers(0, 6), st.integers(2, 5))
    @settings(max_examples=15, deadline=None)
    def test_recovered_entries_lie_on_icfg(self, cut, repeats):
        """Whatever recovery fills, consecutive non-None entries must be
        connected in the ICFG (recovered paths are feasible)."""
        program = build_figure2_program()
        icfg = ICFG(program)
        engine = RecoveryEngine(icfg, RecoveryConfig(cost_per_instruction=1.0))
        pattern = _iteration(True) + _iteration(False)
        segment1 = pattern * repeats + pattern[: 20 + cut]
        segment2 = _iteration(False)
        flow = engine.recover([segment1, segment2], [_hole(10**4)])
        entries = [e for e, _p in flow.entries]
        for left, right in zip(entries, entries[1:]):
            if left is None or right is None:
                continue
            successors = {dst for dst, _k in icfg.successors(left)}
            # Across the pre-hole boundary the connection may legitimately
            # break if recovery failed; only check within recovered spans.
        provenance = [p for _e, p in flow.entries]
        spans = []
        for i in range(len(entries) - 1):
            if provenance[i] == provenance[i + 1] == "recovered":
                left, right = entries[i], entries[i + 1]
                successors = {dst for dst, _k in icfg.successors(left)}
                assert right in successors
