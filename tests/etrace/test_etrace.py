"""Unit tests for the RISC-V E-Trace frontend.

Packet model (branch-map capacity, delta compression), encoder
behaviour (flush invariants, periodic sync), serialisation round trips
through the shared RPT1 codec registry, and the frontend registry
entry itself.
"""

import io

import pytest

from repro.etrace import (
    BRANCH_MAP_MAX_BITS,
    ETraceEncoder,
    ETraceEncoderConfig,
    encode_core,
)
from repro.etrace.packets import (
    ETAddressPacket,
    ETBranchMapPacket,
    ETDisablePacket,
    ETEnablePacket,
    ETSyncPacket,
    ETTimePacket,
    ETTrapPacket,
    delta_address_size,
)
from repro.etrace.serialize import VALID_ET_ADDRESS_SIZES
from repro.jvm.machine import (
    DisableEvent,
    EnableEvent,
    FupEvent,
    TipEvent,
    TntEvent,
)
from repro.pt.serialize import TraceFormatError, dump_bytes, load_bytes
from repro.tracesource import frontend_names, get_frontend
from repro.tracesource.events import (
    AsyncEvent,
    ConditionalOutcomes,
    IndirectTarget,
    TimeRef,
    TraceDisable,
    TraceEnable,
)


def _tnts(count, start_tsc=100, taken=True):
    return [TntEvent(tsc=start_tsc + i, taken=taken) for i in range(count)]


class TestPackets:
    def test_branch_map_packs_up_to_31_bits(self):
        packet = ETBranchMapPacket(tsc=1, bits=(True,) * BRANCH_MAP_MAX_BITS)
        assert len(packet.bits) == 31
        # Header byte + 4 bytes holding 31 packed bits.
        assert packet.size == 5

    def test_branch_map_rejects_empty_and_oversized(self):
        with pytest.raises(ValueError):
            ETBranchMapPacket(tsc=1, bits=())
        with pytest.raises(ValueError):
            ETBranchMapPacket(tsc=1, bits=(False,) * (BRANCH_MAP_MAX_BITS + 1))

    def test_branch_map_size_grows_per_byte(self):
        assert ETBranchMapPacket(tsc=1, bits=(True,) * 8).size == 2
        assert ETBranchMapPacket(tsc=1, bits=(True,) * 9).size == 3

    def test_delta_address_size_boundaries(self):
        base = 0x10000
        assert delta_address_size(base + 127, base) == 2
        assert delta_address_size(base - 128, base) == 2
        assert delta_address_size(base + 128, base) == 3
        assert delta_address_size(base + (1 << 15), base) == 5
        assert delta_address_size(base + (1 << 31), base) == 9

    def test_packets_subclass_the_engine_bases(self):
        assert issubclass(ETBranchMapPacket, ConditionalOutcomes)
        assert issubclass(ETAddressPacket, IndirectTarget)
        assert issubclass(ETSyncPacket, IndirectTarget)
        assert issubclass(ETTrapPacket, AsyncEvent)
        assert issubclass(ETEnablePacket, TraceEnable)
        assert issubclass(ETDisablePacket, TraceDisable)
        assert issubclass(ETTimePacket, TimeRef)


class TestEncoder:
    def test_bits_accumulate_to_capacity(self):
        packets = ETraceEncoder().encode(_tnts(BRANCH_MAP_MAX_BITS))
        maps = [p for p in packets if isinstance(p, ETBranchMapPacket)]
        assert len(maps) == 1
        assert len(maps[0].bits) == BRANCH_MAP_MAX_BITS

    def test_thirty_second_bit_opens_new_map(self):
        packets = ETraceEncoder().encode(_tnts(BRANCH_MAP_MAX_BITS + 1))
        maps = [p for p in packets if isinstance(p, ETBranchMapPacket)]
        assert [len(m.bits) for m in maps] == [BRANCH_MAP_MAX_BITS, 1]

    def test_address_flushes_pending_map(self):
        events = _tnts(3) + [TipEvent(tsc=200, target=0x2000)]
        packets = ETraceEncoder().encode(events)
        kinds = [type(p).__name__ for p in packets]
        assert kinds.index("ETBranchMapPacket") < kinds.index("ETSyncPacket")

    def test_first_address_is_sync_then_deltas(self):
        events = [
            TipEvent(tsc=100, target=0x2000),
            TipEvent(tsc=101, target=0x2040),
            TipEvent(tsc=102, target=0x2080),
        ]
        packets = [
            p for p in ETraceEncoder().encode(events)
            if isinstance(p, IndirectTarget)
        ]
        assert isinstance(packets[0], ETSyncPacket)
        assert isinstance(packets[1], ETAddressPacket)
        assert isinstance(packets[2], ETAddressPacket)
        assert packets[1].compressed_size == 2  # |delta| = 0x40

    def test_periodic_sync_resynchronises(self):
        config = ETraceEncoderConfig(sync_interval=2)
        events = [
            TipEvent(tsc=100 + i, target=0x2000 + 8 * i) for i in range(6)
        ]
        packets = [
            p for p in ETraceEncoder(config).encode(events)
            if isinstance(p, IndirectTarget)
        ]
        # sync, delta, delta, sync, delta, delta.
        assert [isinstance(p, ETSyncPacket) for p in packets] == [
            True, False, False, True, False, False,
        ]

    def test_trailing_bits_flushed_at_end(self):
        packets = ETraceEncoder().encode(_tnts(4))
        maps = [p for p in packets if isinstance(p, ETBranchMapPacket)]
        assert len(maps) == 1 and len(maps[0].bits) == 4

    def test_all_event_kinds_encode(self):
        events = [
            EnableEvent(tsc=10, ip=0x1000),
            TntEvent(tsc=11, taken=True),
            TipEvent(tsc=12, target=0x2000),
            FupEvent(tsc=13, ip=0x2004),
            DisableEvent(tsc=14, ip=0x2008),
        ]
        packets = encode_core(events)
        names = {type(p).__name__ for p in packets}
        assert {
            "ETTimePacket", "ETEnablePacket", "ETBranchMapPacket",
            "ETSyncPacket", "ETTrapPacket", "ETDisablePacket",
        } <= names

    def test_stats_count_through_the_bases(self):
        encoder = ETraceEncoder()
        encoder.encode(_tnts(5) + [TipEvent(tsc=200, target=0x2000)])
        assert encoder.stats.tnt_bits == 5
        assert encoder.stats.tips == 1
        assert encoder.stats.packets > 0
        assert encoder.stats.bytes > 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ETraceEncoderConfig(branch_map_capacity=0)
        with pytest.raises(ValueError):
            ETraceEncoderConfig(branch_map_capacity=BRANCH_MAP_MAX_BITS + 1)

    def test_encoders_do_not_share_config(self):
        """Regression: a shared default-argument config instance let one
        encoder's tuning leak into every other default-constructed one."""
        first = ETraceEncoder()
        second = ETraceEncoder()
        assert first.config is not second.config
        first.config.sync_interval = 1
        assert second.config.sync_interval == 64


class TestSerialization:
    def _roundtrip(self, packets):
        stream = [("packet", p) for p in packets]
        assert load_bytes(dump_bytes(stream)) == stream

    def test_all_packet_kinds_round_trip(self):
        self._roundtrip([
            ETTimePacket(tsc=1),
            ETEnablePacket(tsc=2, ip=0x1000),
            ETBranchMapPacket(tsc=3, bits=(True, False, True)),
            ETBranchMapPacket(tsc=4, bits=(False,) * BRANCH_MAP_MAX_BITS),
            ETSyncPacket(tsc=5, target=0xDEAD_BEEF_0000),
            ETAddressPacket(tsc=6, target=0x2040, compressed_size=2),
            ETTrapPacket(tsc=7, ip=0x2050),
            ETDisablePacket(tsc=8, ip=0x2060),
        ])

    def test_encoded_stream_round_trips(self):
        events = _tnts(40) + [
            TipEvent(tsc=500, target=0x2000),
            TipEvent(tsc=501, target=0x2100),
        ]
        self._roundtrip(ETraceEncoder().encode(events))

    def test_invalid_address_size_rejected_on_write(self):
        packet = ETAddressPacket(tsc=1, target=0x2000, compressed_size=4)
        with pytest.raises(TraceFormatError):
            dump_bytes([("packet", packet)])

    def test_invalid_address_size_rejected_on_read(self):
        good = dump_bytes([
            ("packet", ETAddressPacket(tsc=1, target=0x2000, compressed_size=2))
        ])
        # Tag(1) + tsc(8) puts the size byte at offset 4 + 9.
        bad = bytearray(good)
        bad[4 + 9] = 4
        with pytest.raises(TraceFormatError):
            load_bytes(bytes(bad))
        assert 4 not in VALID_ET_ADDRESS_SIZES

    def test_branch_map_count_validated_on_read(self):
        good = dump_bytes([
            ("packet", ETBranchMapPacket(tsc=1, bits=(True, False)))
        ])
        bad = bytearray(good)
        bad[4 + 9] = BRANCH_MAP_MAX_BITS + 1  # count byte after tag + tsc
        with pytest.raises(TraceFormatError):
            load_bytes(bytes(bad))


class TestRegistry:
    def test_frontend_registered(self):
        frontend = get_frontend("etrace")
        assert frontend.name == "etrace"
        assert frontend.make_encoder is ETraceEncoder
        assert frontend.encoder_config_type is ETraceEncoderConfig
        assert "etrace" in frontend_names() and "pt" in frontend_names()

    def test_unknown_frontend_raises(self):
        with pytest.raises(KeyError):
            get_frontend("no-such-frontend")

    def test_shared_engines(self):
        from repro.pt.decoder import PTBatchDecoder, PTDecoder

        frontend = get_frontend("etrace")
        assert frontend.batch_decoder is PTBatchDecoder
        assert frontend.object_decoder is PTDecoder
