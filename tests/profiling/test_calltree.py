"""Unit tests for calling-context-tree profiles."""

from repro.core import JPortal
from repro.jvm.assembler import MethodAssembler
from repro.jvm.model import JClass, JProgram
from repro.jvm.runtime import RuntimeConfig, run_program
from repro.jvm.verifier import verify_program
from repro.profiling.calltree import CallTree

from ..conftest import build_figure2_program, lossless_config


def _nested_program():
    """main -> a -> b, and main -> b directly (two contexts for b)."""
    b = MethodAssembler("T", "b", arg_count=1, returns_value=True)
    b.load(0).const(1).iadd().ireturn()
    a = MethodAssembler("T", "a", arg_count=1, returns_value=True)
    a.load(0).invokestatic("T", "b", 1, True).ireturn()
    main = MethodAssembler("T", "main", arg_count=0, returns_value=True)
    main.const(1).invokestatic("T", "a", 1, True)
    main.const(2).invokestatic("T", "b", 1, True)
    main.iadd().ireturn()
    cls = JClass("T")
    for asm in (b, a, main):
        cls.add_method(asm.build())
    program = JProgram("n")
    program.add_class(cls)
    program.set_entry("T", "main")
    verify_program(program)
    return program


class TestConstruction:
    def test_contexts_distinguished(self):
        program = _nested_program()
        run = run_program(program, RuntimeConfig(cores=1))
        tree = CallTree.from_path(program, run.threads[0].truth)
        # Contexts: main; main>a; main>a>b; main>b  -> 4 nodes.
        assert tree.node_count() == 4
        main_node = tree.root.children["T.main"]
        assert set(main_node.children) == {"T.a", "T.b"}
        assert main_node.children["T.a"].children["T.b"].invocations == 1
        assert main_node.children["T.b"].invocations == 1

    def test_invocation_counts(self):
        program = build_figure2_program(iterations=7)
        run = run_program(program, RuntimeConfig(cores=1))
        tree = CallTree.from_path(program, run.threads[0].truth)
        main_node = tree.root.children["Test.main"]
        assert main_node.invocations == 1
        assert main_node.children["Test.fun"].invocations == 7

    def test_self_plus_children_equals_inclusive(self):
        program = build_figure2_program(iterations=5)
        run = run_program(program, RuntimeConfig(cores=1))
        tree = CallTree.from_path(program, run.threads[0].truth)
        main_node = tree.root.children["Test.main"]
        assert main_node.inclusive_instructions == len(run.threads[0].truth)

    def test_none_entries_tolerated(self):
        program = build_figure2_program(iterations=3)
        run = run_program(program, RuntimeConfig(cores=1))
        path = list(run.threads[0].truth)
        path[10] = None
        tree = CallTree.from_path(program, path)
        assert tree.node_count() >= 2

    def test_render_and_hottest(self):
        program = _nested_program()
        run = run_program(program, RuntimeConfig(cores=1))
        tree = CallTree.from_path(program, run.threads[0].truth)
        rendered = tree.render()
        assert "T.main" in rendered and "T.b" in rendered
        hottest = tree.hottest_contexts(top=2)
        assert hottest
        assert all(count >= 0 for _chain, count in hottest)


class TestFromReconstruction:
    def test_tree_from_reconstructed_flow_matches_truth(self):
        program = build_figure2_program(iterations=25)
        run = run_program(program, RuntimeConfig(cores=1))
        result = JPortal(program).analyze_run(run, lossless_config())
        truth_tree = CallTree.from_path(program, run.threads[0].truth)
        recon_tree = CallTree.from_path(
            program, result.flow_of(0).reconstructed_nodes()
        )
        assert truth_tree.render() == recon_tree.render()
