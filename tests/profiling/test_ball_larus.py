"""Unit tests for Ball-Larus path profiling."""

from collections import Counter

from repro.jvm.assembler import MethodAssembler
from repro.jvm.cfg import CFG
from repro.jvm.jit import JITPolicy
from repro.jvm.model import JClass, JProgram
from repro.jvm.runtime import RuntimeConfig, run_program
from repro.jvm.verifier import verify_program
from repro.profiling.ball_larus import (
    ENTRY,
    EXIT,
    BallLarusNumbering,
    BallLarusProfiler,
    block_executions,
    split_activations,
)

from ..conftest import build_figure2_program


def _diamond_method():
    asm = MethodAssembler("T", "m", arg_count=1, returns_value=True)
    asm.load(0).ifeq("else_")
    asm.const(10).goto("join")
    asm.label("else_")
    asm.const(20)
    asm.label("join")
    asm.ireturn()
    return asm.build()


def _double_diamond():
    asm = MethodAssembler("T", "m", arg_count=2, returns_value=True)
    asm.load(0).ifeq("e1")
    asm.nop().goto("j1")
    asm.label("e1")
    asm.nop()
    asm.label("j1")
    asm.load(1).ifeq("e2")
    asm.nop().goto("j2")
    asm.label("e2")
    asm.nop()
    asm.label("j2")
    asm.const(0).ireturn()
    return asm.build()


def _loop_method():
    asm = MethodAssembler("T", "m", arg_count=1, returns_value=True)
    asm.label("head")
    asm.load(0).ifle("done")
    asm.iinc(0, -1).goto("head")
    asm.label("done")
    asm.const(0).ireturn()
    return asm.build()


class TestNumbering:
    def test_diamond_has_two_paths(self):
        numbering = BallLarusNumbering(CFG(_diamond_method()))
        assert numbering.path_count == 2

    def test_double_diamond_has_four_paths(self):
        numbering = BallLarusNumbering(CFG(_double_diamond()))
        assert numbering.path_count == 4

    def test_straightline_has_one_path(self):
        asm = MethodAssembler("T", "m", arg_count=0, returns_value=True)
        asm.const(1).ireturn()
        numbering = BallLarusNumbering(CFG(asm.build()))
        assert numbering.path_count == 1

    def test_loop_dag_paths(self):
        # DAG transform: entry->head->exit plus pseudo paths.
        numbering = BallLarusNumbering(CFG(_loop_method()))
        assert numbering.path_count >= 2

    def test_path_sums_unique(self):
        """Every distinct ENTRY->EXIT DAG path has a distinct Val-sum in
        [0, NumPaths)."""
        numbering = BallLarusNumbering(CFG(_double_diamond()))
        succ = {}
        for edge in numbering.edges:
            succ.setdefault(edge.src, []).append(edge)

        sums = []

        def walk(node, total):
            if node == EXIT:
                sums.append(total)
                return
            for edge in succ.get(node, ()):
                walk(edge.dst, total + numbering.val.get(edge, 0))

        walk(ENTRY, 0)
        assert sorted(sums) == list(range(numbering.path_count))

    def test_chord_sums_equal_val_sums(self):
        """The spanning-tree increment placement preserves path ids."""
        for method in (_diamond_method(), _double_diamond(), _loop_method()):
            numbering = BallLarusNumbering(CFG(method))
            succ = {}
            for edge in numbering.edges:
                succ.setdefault(edge.src, []).append(edge)

            def walk(node, val_total, chord_total):
                if node == EXIT:
                    # Register-style accumulation equals the Val path sum.
                    assert (
                        numbering.initial_register + chord_total == val_total
                    )
                    return
                for edge in succ.get(node, ()):
                    walk(
                        edge.dst,
                        val_total + numbering.val.get(edge, 0),
                        chord_total + numbering.inc.get(edge, 0),
                    )

            walk(ENTRY, 0, 0)

    def test_regenerate_inverts_numbering(self):
        numbering = BallLarusNumbering(CFG(_double_diamond()))
        seen = set()
        for path_id in range(numbering.path_count):
            blocks = numbering.regenerate(path_id)
            assert blocks[0] == 0
            assert tuple(blocks) not in seen
            seen.add(tuple(blocks))


class TestPathEvents:
    def test_diamond_events(self):
        method = _diamond_method()
        numbering = BallLarusNumbering(CFG(method))
        cfg = CFG(method)
        then_path = [0, cfg.block_of(2).block_id, cfg.block_of(5).block_id]
        else_path = [0, cfg.block_of(4).block_id, cfg.block_of(5).block_id]
        counts_then, probes1, _t1 = numbering.path_events(then_path)
        counts_else, probes2, _t2 = numbering.path_events(else_path)
        assert sum(counts_then.values()) == 1
        assert sum(counts_else.values()) == 1
        assert set(counts_then) != set(counts_else)

    def test_loop_iterations_counted_per_back_edge(self):
        method = _loop_method()
        numbering = BallLarusNumbering(CFG(method))
        cfg = CFG(method)
        head = cfg.block_of(0).block_id
        latch = cfg.block_of(2).block_id
        done = cfg.block_of(4).block_id
        blocks = [head, latch, head, latch, head, done]  # two iterations
        counts, _probes, truncated = numbering.path_events(blocks)
        assert sum(counts.values()) == 3  # 2 back-edge paths + final
        assert truncated == 0

    def test_empty_sequence(self):
        numbering = BallLarusNumbering(CFG(_diamond_method()))
        counts, probes, truncated = numbering.path_events([])
        assert sum(counts.values()) == 0 and probes == 0


class TestActivationSplitting:
    def test_call_pushes_and_return_pops(self):
        program = build_figure2_program(iterations=3)
        run = run_program(program, RuntimeConfig(cores=1))
        truth = run.threads[0].truth
        activations = split_activations(program, truth)
        assert set(activations) == {"Test.main", "Test.fun"}
        assert len(activations["Test.fun"]) == 3  # one per call
        assert len(activations["Test.main"]) == 1

    def test_block_sequences_start_at_entry_block(self):
        program = build_figure2_program(iterations=3)
        run = run_program(program, RuntimeConfig(cores=1))
        activations = split_activations(program, run.threads[0].truth)
        for runs in activations.values():
            for blocks in runs:
                assert blocks[0] == 0

    def test_recursion_counted_per_activation(self):
        fib = MethodAssembler("T", "fib", arg_count=1, returns_value=True)
        fib.load(0).const(2).if_icmpge("rec")
        fib.load(0).ireturn()
        fib.label("rec")
        fib.load(0).const(1).isub().invokestatic("T", "fib", 1, True)
        fib.load(0).const(2).isub().invokestatic("T", "fib", 1, True)
        fib.iadd().ireturn()
        main = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        main.const(6).invokestatic("T", "fib", 1, True).ireturn()
        cls = JClass("T")
        cls.add_method(fib.build())
        cls.add_method(main.build())
        program = JProgram("p")
        program.add_class(cls)
        program.set_entry("T", "main")
        verify_program(program)
        run = run_program(program, RuntimeConfig(cores=1))
        activations = split_activations(program, run.threads[0].truth)
        # fib(6) makes 25 calls in total.
        assert len(activations["T.fib"]) == 25


class TestProfiler:
    def test_profile_totals(self):
        program = build_figure2_program(iterations=20)
        run = run_program(program, RuntimeConfig(cores=1))
        profiler = BallLarusProfiler(program)
        profile = profiler.profile([run.threads[0].truth])
        # fun: 20 activations -> 20 complete paths; main: loop paths.
        assert sum(profile.per_method["Test.fun"].values()) == 20
        assert profile.probe_executions > 0

    def test_profile_mode_independent(self):
        """BL profiles replayed from truth are tier-independent."""
        program = build_figure2_program(iterations=20)
        profiles = []
        for threshold in (3, 10**9):
            run = run_program(
                program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=threshold))
            )
            profiler = BallLarusProfiler(program)
            profiles.append(profiler.profile([run.threads[0].truth]).per_method)
        assert profiles[0] == profiles[1]

    def test_block_executions_positive(self):
        program = build_figure2_program(iterations=10)
        run = run_program(program, RuntimeConfig(cores=1))
        blocks = block_executions(program, [run.threads[0].truth])
        assert blocks > 10
