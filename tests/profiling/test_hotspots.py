"""Unit tests for timestamp-based hot-spot detection."""

from repro.core import JPortal
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import RuntimeConfig, run_program
from repro.profiling.hotspots import (
    hottest_window,
    invocation_hot_spots,
    thread_hot_windows,
)

from ..conftest import build_figure2_program, lossless_config


def _result(iterations=200, threshold=8):
    program = build_figure2_program(iterations=iterations)
    run = run_program(
        program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=threshold))
    )
    return run, JPortal(program).analyze_run(run, lossless_config())


class TestWindows:
    def test_windows_cover_execution(self):
        run, result = _result()
        windows = thread_hot_windows(result, 0, window=5_000)
        assert windows
        total = sum(w.instructions for w in windows)
        assert total == len(result.flow_of(0).observed.steps())
        # Windows are ordered and non-overlapping.
        for left, right in zip(windows, windows[1:]):
            assert left.end_tsc <= right.start_tsc

    def test_dominant_method_identified(self):
        _run, result = _result()
        windows = thread_hot_windows(result, 0, window=10_000)
        named = [w for w in windows if w.dominant_method is not None]
        assert named
        for window in named:
            assert window.dominant_method in ("Test.main", "Test.fun")
            assert 0 < window.dominant_share <= 1.0

    def test_hottest_window_is_max(self):
        _run, result = _result()
        windows = thread_hot_windows(result, 0, window=5_000)
        hottest = hottest_window(result, 0, window=5_000)
        assert hottest is not None
        assert hottest.instructions == max(w.instructions for w in windows)

    def test_compiled_phase_is_hotter(self):
        """Once fun is compiled, more instructions land per TSC window, so
        the hottest window falls in the compiled phase (later in time)."""
        _run, result = _result(iterations=300, threshold=10)
        windows = thread_hot_windows(result, 0, window=5_000)
        hottest = max(windows, key=lambda w: w.instructions)
        first = windows[0]
        assert hottest.instructions > first.instructions
        assert hottest.start_tsc > first.start_tsc

    def test_empty_thread(self):
        _run, result = _result(iterations=1)
        assert thread_hot_windows(result, 0, window=10**9)

    def test_invocation_hot_spots_ranked(self):
        _run, result = _result()
        spots = invocation_hot_spots(result, window=5_000, top=3)
        assert len(spots) <= 3
        counts = [hot.instructions for _tid, hot in spots]
        assert counts == sorted(counts, reverse=True)
