"""Unit tests for sampling profilers and hot-method detection."""

from repro.core import JPortal
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import RuntimeConfig, run_program
from repro.profiling.hotmethods import jportal_hot_methods
from repro.profiling.sampling import (
    JProfilerSampler,
    XProfSampler,
    ground_truth_hot_methods,
)
from repro.workloads import build_subject

from ..conftest import build_figure2_program, lossless_config


def _sampled_run(interval=300):
    program = build_figure2_program(iterations=120)
    config = RuntimeConfig(
        cores=1, sample_interval=interval, jit=JITPolicy(hot_threshold=8)
    )
    return run_program(program, config)


class TestGroundTruth:
    def test_excludes_pseudo_methods(self):
        run = _sampled_run()
        hot = ground_truth_hot_methods(run)
        assert all(not name.startswith("<") for name in hot)

    def test_ranked_by_self_cost(self):
        run = _sampled_run()
        hot = ground_truth_hot_methods(run, top=2)
        costs = [run.method_self_cost[name] for name in hot]
        assert costs == sorted(costs, reverse=True)


class TestSamplers:
    def test_xprof_profile_subset_of_samples(self):
        run = _sampled_run()
        profile = XProfSampler(keep_fraction=0.7).profile(run)
        assert 0 < profile.sample_count() <= len(run.samples)

    def test_xprof_keep_fraction_one_keeps_all(self):
        run = _sampled_run()
        profile = XProfSampler(keep_fraction=1.0).profile(run)
        assert profile.sample_count() == len(run.samples)

    def test_jprofiler_stride(self):
        run = _sampled_run()
        full = JProfilerSampler(stride=1).profile(run)
        half = JProfilerSampler(stride=2).profile(run)
        assert half.sample_count() <= full.sample_count()
        assert full.sample_count() == len(run.samples)

    def test_hot_methods_from_enough_samples(self):
        run = _sampled_run(interval=100)
        profile = JProfilerSampler(stride=1).profile(run)
        truth = ground_truth_hot_methods(run, top=2)
        estimated = profile.hot_methods(top=2)
        # With dense sampling on a 2-method program the top set matches.
        assert set(estimated) == set(truth)

    def test_deterministic(self):
        run = _sampled_run()
        first = XProfSampler(seed=3).profile(run).counts
        second = XProfSampler(seed=3).profile(run).counts
        assert first == second


class TestJPortalHotMethods:
    def test_matches_ground_truth_on_lossless_trace(self):
        subject = build_subject("batik")
        run = subject.run()
        result = JPortal(subject.program).analyze_run(run, lossless_config())
        truth = ground_truth_hot_methods(run, top=3)
        estimated = jportal_hot_methods(
            result, top=3, mode_costs={"interp": 10.0, "jit": 1.0}
        )
        assert set(estimated) & set(truth)

    def test_unweighted_counts(self):
        program = build_figure2_program(iterations=30)
        run = run_program(program, RuntimeConfig(cores=1))
        result = JPortal(program).analyze_run(run, lossless_config())
        hot = jportal_hot_methods(result, top=2)
        assert set(hot) == {"Test.main", "Test.fun"}
