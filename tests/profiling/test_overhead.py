"""Unit tests for the Table 2 overhead model."""

import pytest

from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import RuntimeConfig, run_program
from repro.profiling.overhead import OverheadModel, compute_slowdowns

from ..conftest import build_figure2_program


def _row(iterations=100, trace_bytes=5_000, metadata_bytes=2_000):
    program = build_figure2_program(iterations=iterations)
    run = run_program(
        program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=8))
    )
    return compute_slowdowns(
        "figure2",
        run,
        trace_bytes=trace_bytes,
        metadata_bytes=metadata_bytes,
        sample_counts=(50, 50),
    )


class TestSlowdowns:
    def test_all_slowdowns_at_least_one(self):
        row = _row()
        for value in row.as_tuple():
            assert value >= 1.0

    def test_expected_ordering(self):
        """The paper's shape: JPortal cheapest, CF tracing most expensive
        among instrumentation, PF >= SC."""
        row = _row()
        assert row.jportal < row.statement_coverage
        assert row.statement_coverage <= row.path_frequency
        assert row.path_frequency < row.control_flow
        assert row.jportal < row.xprof * 2  # both lightweight

    def test_jportal_scales_with_trace_volume(self):
        small = _row(trace_bytes=1_000)
        large = _row(trace_bytes=100_000)
        assert large.jportal > small.jportal

    def test_zero_cost_run_rejected(self):
        program = build_figure2_program(iterations=1)
        run = run_program(program, RuntimeConfig(cores=1))
        run.total_cost = 0
        with pytest.raises(ValueError):
            compute_slowdowns("x", run, 0, 0)

    def test_custom_model_constants(self):
        program = build_figure2_program(iterations=50)
        run = run_program(program, RuntimeConfig(cores=1))
        cheap = compute_slowdowns(
            "x", run, 1000, 100, model=OverheadModel(cf_per_block=1.0)
        )
        expensive = compute_slowdowns(
            "x", run, 1000, 100, model=OverheadModel(cf_per_block=500.0)
        )
        assert expensive.control_flow > cheap.control_flow

    def test_row_tuple_order(self):
        row = _row()
        assert row.as_tuple() == (
            row.jportal,
            row.statement_coverage,
            row.path_frequency,
            row.control_flow,
            row.hot_methods,
            row.xprof,
            row.jprofiler,
        )
