"""Unit tests for control-flow profiles."""

from repro.jvm.runtime import RuntimeConfig, run_program
from repro.profiling.profiles import ControlFlowProfile

from ..conftest import build_figure2_program


def _profile(iterations=20):
    program = build_figure2_program(iterations=iterations)
    run = run_program(program, RuntimeConfig(cores=1))
    return program, run, ControlFlowProfile.from_truth(run)


class TestConstruction:
    def test_total_instructions_match_truth(self):
        _program, run, profile = _profile()
        assert profile.total_instructions == len(run.threads[0].truth)

    def test_node_counts_sum(self):
        _program, run, profile = _profile()
        assert sum(profile.node_counts.values()) == len(run.threads[0].truth)

    def test_invocations_counted_at_entry_nodes(self):
        _program, _run, profile = _profile(iterations=20)
        assert profile.invocation_counts["Test.fun"] == 20
        assert profile.invocation_counts["Test.main"] == 1

    def test_none_entries_break_edges(self):
        program, _run, _profile_obj = _profile()
        paths = [[("Test.fun", 0), None, ("Test.fun", 2)]]
        profile = ControlFlowProfile.from_paths(program, paths)
        assert profile.total_instructions == 2
        assert not profile.edge_counts


class TestCoverage:
    def test_both_arms_of_fun_covered(self):
        # 20 iterations alternate a; both arms of fun execute, but the
        # false-return tail (fun is always even here) never does: 17/19.
        _program, _run, profile = _profile(iterations=20)
        coverage = profile.statement_coverage()
        assert coverage["Test.fun"] == 17 / 19
        assert coverage["Test.main"] == 1.0

    def test_partial_coverage_detected(self):
        program, _run, _ = _profile()
        # Only the else-arm executed:
        path = [("Test.fun", bci) for bci in (0, 1, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)]
        profile = ControlFlowProfile.from_paths(program, [path])
        coverage = profile.statement_coverage()
        assert 0 < coverage["Test.fun"] < 1.0
        assert coverage["Test.main"] == 0.0

    def test_overall_coverage_bounds(self):
        _program, _run, profile = _profile()
        assert 0 < profile.overall_coverage() <= 1.0


class TestEdgesAndHotMethods:
    def test_edge_frequency_of_loop_backedge(self):
        _program, _run, profile = _profile(iterations=20)
        # main@16 (goto) -> main@4 executes once per iteration after the first.
        assert profile.edge_frequency(("Test.main", 16), ("Test.main", 4)) == 20

    def test_call_edge_counted(self):
        _program, _run, profile = _profile(iterations=20)
        assert profile.edge_frequency(("Test.main", 11), ("Test.fun", 0)) == 20

    def test_hot_methods_ranked(self):
        _program, _run, profile = _profile(iterations=20)
        hot = profile.hot_methods(top=2)
        assert set(hot) == {"Test.main", "Test.fun"}
        counts = profile.method_instruction_counts()
        assert counts[hot[0]] >= counts[hot[1]]

    def test_executed_methods(self):
        _program, _run, profile = _profile()
        assert profile.executed_methods() == ["Test.fun", "Test.main"]
