"""Unit tests for accuracy metrics."""

import pytest

from repro.core import JPortal
from repro.core.recovery import RecoveryConfig
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import RuntimeConfig, run_program
from repro.profiling.accuracy import (
    hot_method_intersection,
    run_accuracy,
    sequence_similarity,
    thread_accuracy,
)

from ..conftest import build_figure2_program, lossless_config, lossy_config

A = ("M.a", 0)
B = ("M.a", 1)
C = ("M.a", 2)
D = ("M.a", 3)


class TestSequenceSimilarity:
    def test_identical_is_one(self):
        assert sequence_similarity([A, B, C], [A, B, C]) == 1.0

    def test_disjoint_is_zero(self):
        assert sequence_similarity([A, A], [B, B]) == 0.0

    def test_empty_cases(self):
        assert sequence_similarity([], []) == 1.0
        assert sequence_similarity([A], []) == 0.0
        assert sequence_similarity([], [A]) == 0.0

    def test_partial_overlap(self):
        value = sequence_similarity([A, B, C, D], [A, B, D])
        assert 0.5 < value < 1.0

    def test_symmetric_in_length_penalty(self):
        # Extra garbage lowers the score.
        clean = sequence_similarity([A, B, C], [A, B, C])
        noisy = sequence_similarity([A, B, C], [A, B, C, D, D, D])
        assert noisy < clean

    def test_handles_none_entries(self):
        value = sequence_similarity([A, B, C], [A, None, C])
        assert 0 < value < 1


class TestEndToEndAccuracy:
    def test_lossless_accuracy_is_perfect(self):
        program = build_figure2_program(iterations=60)
        run = run_program(
            program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=8))
        )
        result = JPortal(program).analyze_run(run, lossless_config())
        accuracy = run_accuracy(run, result)
        assert accuracy.overall == pytest.approx(1.0)
        assert accuracy.percent_missing_data == 0.0
        assert accuracy.decoding_accuracy == pytest.approx(1.0)
        assert accuracy.percent_decoded == pytest.approx(1.0)
        assert accuracy.percent_recovered == 0.0

    def test_lossy_accuracy_breakdown_consistent(self):
        program = build_figure2_program(iterations=400)
        run = run_program(
            program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=10))
        )
        jportal = JPortal(program, recovery=RecoveryConfig(cost_per_instruction=1.0))
        result = jportal.analyze_run(run, lossy_config())
        accuracy = run_accuracy(run, result)
        assert 0 < accuracy.percent_missing_data < 1
        assert 0 < accuracy.overall < 1
        thread = accuracy.threads[0]
        assert thread.decoded_correct <= thread.decoded_entries
        assert thread.recovered_correct <= thread.recovered_entries
        assert 0 <= thread.decoding_accuracy <= 1
        assert 0 <= thread.recovery_accuracy <= 1
        # Decoding is the high-confidence component (paper: DA ~ 82%).
        assert thread.decoding_accuracy > 0.5

    def test_smaller_buffer_lowers_accuracy(self):
        program = build_figure2_program(iterations=400)
        run = run_program(
            program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=10))
        )
        jportal = JPortal(program, recovery=RecoveryConfig(cost_per_instruction=1.0))
        small = run_accuracy(run, jportal.analyze_run(run, lossy_config(capacity=500)))
        large = run_accuracy(run, jportal.analyze_run(run, lossy_config(capacity=2500)))
        assert small.percent_missing_data >= large.percent_missing_data
        assert small.overall <= large.overall + 0.05


class TestHotMethodIntersection:
    def test_counts_overlap(self):
        truth = ["a", "b", "c"]
        assert hot_method_intersection(truth, ["c", "a", "x"]) == 2
        assert hot_method_intersection(truth, []) == 0
        assert hot_method_intersection(truth, truth) == 3
