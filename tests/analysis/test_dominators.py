"""Property tests for the dominator / post-dominator trees.

The iterative Cooper-Harvey-Kennedy result is checked against the
brute-force definition on CFGs of generated programs: *a* dominates *b*
iff deleting *a* disconnects *b* from the entry (and dually for
post-dominators and the exits).  The generator sweep covers >= 200 seeds.
"""

import pytest

from repro.analysis import (
    VIRTUAL_EXIT,
    DominatorTree,
    PostDominatorTree,
    infer_node_coverage,
)
from repro.jvm.assembler import MethodAssembler
from repro.jvm.cfg import CFG
from repro.workloads.generator import GeneratorConfig, generate_program


def _reachable_from(cfg, source, removed=None):
    seen = {source}
    work = [source]
    while work:
        current = work.pop()
        for succ in cfg.successor_ids(current):
            if succ == removed or succ in seen:
                continue
            seen.add(succ)
            work.append(succ)
    return seen


def _brute_dominates(cfg, a, b):
    """a dom b: every entry-to-b path passes through a."""
    if a == b:
        return True
    if a == 0:
        return True
    reachable = _reachable_from(cfg, 0, removed=a)
    return b not in reachable


def _brute_post_dominates(cfg, a, b, exits):
    """a pdom b: every b-to-exit path passes through a."""
    if a == b:
        return True
    # Can b reach any exit while avoiding a?
    seen = {b}
    work = [b]
    while work:
        current = work.pop()
        if current in exits:
            return False
        for succ in cfg.successor_ids(current):
            if succ == a or succ in seen:
                continue
            seen.add(succ)
            work.append(succ)
    return True


def _check_method(method):
    cfg = CFG(method)
    tree = DominatorTree(cfg)
    reachable = _reachable_from(cfg, 0)
    blocks = [block.block_id for block in cfg.blocks]
    for a in blocks:
        for b in blocks:
            if b not in reachable:
                assert not tree.dominates(a, b)
                continue
            if a not in reachable:
                assert not tree.dominates(a, b)
                continue
            expected = _brute_dominates(cfg, a, b)
            assert tree.dominates(a, b) == expected, (
                "%s: dom(%d, %d) = %s, brute force says %s"
                % (method.qualified_name, a, b, tree.dominates(a, b), expected)
            )
    ptree = PostDominatorTree(cfg)
    exits = {
        block.block_id for block in cfg.blocks if not cfg.successor_ids(block.block_id)
    }
    for a in blocks:
        for b in blocks:
            if b not in ptree.idom or a not in ptree.idom:
                continue
            expected = _brute_post_dominates(cfg, a, b, exits)
            assert ptree.post_dominates(a, b) == expected, (
                "%s: pdom(%d, %d) = %s, brute force says %s"
                % (
                    method.qualified_name,
                    a,
                    b,
                    ptree.post_dominates(a, b),
                    expected,
                )
            )


class TestAgainstBruteForce:
    @pytest.mark.parametrize("chunk", range(8))
    def test_generated_cfgs_match_brute_force(self, chunk):
        """25 seeds per chunk x 8 chunks = 200 seeds, every method."""
        config = GeneratorConfig(
            methods=3, switch_probability=0.3, throw_probability=0.2
        )
        for seed in range(chunk * 25, (chunk + 1) * 25):
            program = generate_program(seed, config)
            for method in program.methods():
                _check_method(method)


class TestStructure:
    def _diamond(self):
        asm = MethodAssembler("T", "d", arg_count=1, returns_value=True)
        asm.load(0).ifeq("right")
        asm.iinc(0, 1)
        asm.goto("join")
        asm.label("right")
        asm.iinc(0, 2)
        asm.label("join")
        asm.load(0).ireturn()
        return CFG(asm.build())

    def test_diamond_idoms(self):
        cfg = self._diamond()
        tree = DominatorTree(cfg)
        join = cfg.block_of(cfg.method.code[-1].bci).block_id
        left, right = sorted(
            block
            for block in (edge.dst for edge in cfg.entry.successors)
        )
        # Both arms are idominated by the entry; the join too (neither
        # arm dominates it).
        assert tree.immediate_dominator(left) == 0
        assert tree.immediate_dominator(right) == 0
        assert tree.immediate_dominator(join) == 0

    def test_diamond_post_idoms(self):
        cfg = self._diamond()
        ptree = PostDominatorTree(cfg)
        join = cfg.block_of(cfg.method.code[-1].bci).block_id
        for edge in cfg.entry.successors:
            assert ptree.immediate_post_dominator(edge.dst) == join
        assert ptree.post_dominates(join, 0)
        assert ptree.immediate_post_dominator(join) == VIRTUAL_EXIT

    def test_entry_dominates_everything_reachable(self):
        cfg = self._diamond()
        tree = DominatorTree(cfg)
        for block in cfg.blocks:
            assert tree.dominates(0, block.block_id)


class TestCoverageInference:
    def test_observed_blocks_lift_to_dominators(self):
        asm = MethodAssembler("T", "d", arg_count=1, returns_value=True)
        asm.load(0).ifeq("right")
        asm.iinc(0, 1)
        asm.goto("join")
        asm.label("right")
        asm.iinc(0, 2)
        asm.label("join")
        asm.load(0).ireturn()
        cfg = CFG(asm.build())
        tree = DominatorTree(cfg)
        join = cfg.block_of(cfg.method.code[-1].bci).block_id
        covered = infer_node_coverage(cfg, tree, {join})
        # Observing the join proves the entry ran, but neither arm.
        assert 0 in covered and join in covered
        arms = {edge.dst for edge in cfg.entry.successors}
        assert not arms & covered

    def test_empty_observation_covers_nothing(self):
        cfg = self._simple()
        tree = DominatorTree(cfg)
        assert infer_node_coverage(cfg, tree, set()) == set()

    @staticmethod
    def _simple():
        asm = MethodAssembler("T", "s", arg_count=1, returns_value=True)
        asm.load(0).ireturn()
        return CFG(asm.build())
