"""Tests for the packet-projection decodability check."""

import random

import pytest

from repro.analysis import check, check_program, dispatch_collisions
from repro.analysis.ambiguity import _observable_prefix, program_resolver
from repro.jvm.assembler import MethodAssembler
from repro.jvm.model import JClass, JProgram
from repro.workloads import SUBJECT_NAMES, build_subject
from repro.workloads.generator import (
    GeneratorConfig,
    _MethodGenerator,
    _method_seed,
)


def _identical_arm_switch(name="amb"):
    """The shape PR 3 papered over with NOP padding: a tableswitch whose
    arms carry identical opcode sequences -- indistinguishable in a
    lossless interpreted trace (no TNT for switches, templates reveal
    opcodes only)."""
    asm = MethodAssembler("T", name, arg_count=1, returns_value=True)
    asm.load(0).const(3).irem()
    asm.tableswitch({0: "c0", 1: "c1"}, "dflt")
    for label in ("c0", "c1"):
        asm.label(label)
        asm.load(0).const(5).iadd().store(0)
        asm.goto("join")
    asm.label("dflt")
    asm.iinc(0, 1)
    asm.label("join")
    asm.load(0).ireturn()
    return asm.build()


def _distinct_arm_switch():
    asm = MethodAssembler("T", "ok", arg_count=1, returns_value=True)
    asm.load(0).const(3).irem()
    asm.tableswitch({0: "c0", 1: "c1"}, "dflt")
    asm.label("c0")
    asm.load(0).const(5).iadd().store(0)
    asm.goto("join")
    asm.label("c1")
    asm.iinc(0, 2)
    asm.goto("join")
    asm.label("dflt")
    asm.iinc(0, 1)
    asm.label("join")
    asm.load(0).ireturn()
    return asm.build()


class TestDefiniteAmbiguity:
    def test_identical_arms_flagged_with_witness(self):
        result = check(_identical_arm_switch())
        assert not result.decodable
        witness = result.witness
        assert witness is not None
        assert len(witness.path_a) == len(witness.path_b)
        assert witness.path_a != witness.path_b
        # Diverge at the same state, rejoin at the same state.
        assert witness.path_a[0] == witness.path_b[0]
        assert witness.path_a[-1] == witness.path_b[-1]
        assert len(witness.labels) == len(witness.path_a) - 1

    def test_witness_paths_are_real_nfa_paths(self):
        from repro.analysis import projection_nfa

        method = _identical_arm_switch()
        result = check(method)
        nfa = projection_nfa(method)
        for path in (result.witness.path_a, result.witness.path_b):
            for src, label, dst in zip(
                path, result.witness.labels, path[1:]
            ):
                assert (label, dst) in nfa.transitions.get(src, []), (
                    "witness step %r -%r-> %r is not an NFA transition"
                    % (src, label, dst)
                )

    def test_distinct_arms_decodable(self):
        result = check(_distinct_arm_switch())
        assert result.decodable
        assert result.witness is None

    def test_conditionals_never_ambiguous(self):
        # TNT bits distinguish both arms even with identical bodies.
        asm = MethodAssembler("T", "iff", arg_count=1, returns_value=True)
        asm.load(0).ifeq("else")
        asm.load(0).const(5).iadd().store(0)
        asm.goto("join")
        asm.label("else")
        asm.load(0).const(5).iadd().store(0)
        asm.label("join")
        asm.load(0).ireturn()
        assert check(asm.build()).decodable


class TestCallPrefixes:
    def _program(self, body_a, body_b):
        """Two callees with the given straight-line bodies plus a caller
        switching between them on identical-arm call sites."""
        cls = JClass("T")
        for name, body in (("ca", body_a), ("cb", body_b)):
            asm = MethodAssembler("T", name, arg_count=1, returns_value=True)
            body(asm)
            asm.load(0).ireturn()
            cls.add_method(asm.build())
        asm = MethodAssembler("T", "disp", arg_count=1, returns_value=True)
        asm.load(0).const(2).irem()
        asm.tableswitch({0: "a", 1: "b"}, "dflt")
        asm.label("a")
        asm.load(0).invokestatic("T", "ca", 1, True).store(0)
        asm.goto("join")
        asm.label("b")
        asm.load(0).invokestatic("T", "cb", 1, True).store(0)
        asm.goto("join")
        asm.label("dflt")
        asm.iinc(0, 1)
        asm.label("join")
        asm.load(0).ireturn()
        cls.add_method(asm.build())
        program = JProgram("prefix-test")
        program.add_class(cls)
        program.set_entry("T", "disp")
        return program

    def test_distinct_callee_prefixes_disambiguate_arms(self):
        # The arms' intra-method opcodes are identical (load, call,
        # store, goto); only the callees' opening opcodes differ.  The
        # call-edge labels embed those prefixes, so the switch resolves.
        program = self._program(
            lambda asm: asm.load(0).const(5).iadd().store(0),
            lambda asm: asm.iinc(0, 7),
        )
        checks = check_program(program)
        assert checks["T.disp"].decodable

    def test_identical_callee_prefixes_keep_arms_ambiguous(self):
        program = self._program(
            lambda asm: asm.load(0).const(5).iadd().store(0),
            lambda asm: asm.load(0).const(5).iadd().store(0),
        )
        checks = check_program(program)
        assert not checks["T.disp"].decodable

    def test_observable_prefix_stops_at_branches(self):
        program = self._program(
            lambda asm: asm.load(0).const(5).iadd().store(0),
            lambda asm: asm.iinc(0, 7),
        )
        prefix = _observable_prefix(
            program.method("T", "ca"), program_resolver(program)
        )
        # The straight-line body plus the return; nothing past it.
        from repro.jvm.opcodes import Op

        assert prefix[-1] is Op.IRETURN


class TestSubjects:
    @pytest.mark.parametrize("name", SUBJECT_NAMES)
    def test_all_dacapo_subjects_fully_decodable(self, name):
        subject = build_subject(name)
        checks = check_program(subject.program)
        ambiguous = [q for q, c in checks.items() if not c.decodable]
        assert ambiguous == [], "%s has ambiguous methods %r" % (name, ambiguous)

    def test_dispatch_collisions_reported_not_fatal(self):
        for name in SUBJECT_NAMES:
            subject = build_subject(name)
            for caller, bci, a, b in dispatch_collisions(subject.program):
                assert a != b
                assert isinstance(bci, int)


class TestGeneratorShapes:
    def test_raw_generator_output_gets_flagged_and_regenerated(self):
        """The legacy failure class (seed-2416-style): without the
        analyzer gate, some first-attempt switch bodies collide.  Find a
        real first-attempt candidate the checker rejects, confirm the
        witness, and confirm the shipped generator regenerates it away."""
        from repro.analysis import check_program as check_all
        from repro.workloads.generator import generate_program

        config = GeneratorConfig(methods=4, switch_probability=0.9, max_depth=2)
        flagged = None
        for seed in range(400):
            for index in range(config.methods):
                rng = random.Random(_method_seed(seed, index, 0))
                candidate = _MethodGenerator(rng, config, index).build()
                result = check(candidate)
                if not result.decodable:
                    flagged = (seed, result)
                    break
            if flagged:
                break
        assert flagged is not None, "no ambiguous raw candidate in 400 seeds"
        seed, result = flagged
        assert result.witness is not None
        assert result.witness.path_a != result.witness.path_b
        # The shipped generator must deliver a fully decodable program
        # for that same seed (regeneration kicked in).
        checks = check_all(generate_program(seed, config))
        assert all(c.decodable for c in checks.values())
