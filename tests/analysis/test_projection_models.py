"""Property tests: static observability vs the real encoder round trip.

The frontend-parametric claim of the analysis layer is checkable against
the frontends themselves: an edge classified as *observed* under a
frontend's ProjectionModel must be discriminated by the packets the real
encoder produces for it (and, for dispatch-observed edges, by what the
real decoder makes of them), and a SILENT edge must be byte-for-byte
indistinguishable from the sibling it collides with.  We drive this over
200 generated programs per frontend, reusing the workload generator the
rest of ``tests/analysis`` draws subjects from.
"""

import pytest

from repro.analysis import EdgeObservability, ObservabilityMap
from repro.core.metadata import CodeDatabase
from repro.jvm.icfg import ICFG
from repro.jvm.machine import TipEvent, TntEvent
from repro.jvm.opcodes import Kind, Op
from repro.jvm.templates import TemplateTable
from repro.tracesource import ProjectionModel, get_frontend, get_projection_model
from repro.workloads.generator import GeneratorConfig, generate_program

SEEDS = range(200)
FRONTENDS = ("pt", "etrace")

_CONFIG = GeneratorConfig(methods=2, max_depth=2)
_TEMPLATES = TemplateTable()
#: An arbitrary fixed dispatch preceding each edge's own events, so the
#: encoder's IP-compression state is identical across the streams being
#: compared.
_ANCHOR = _TEMPLATES.entry(Op.NOP)


def _edge_packets(frontend, model, icfg, edge):
    """The packet stream that 'execution took *edge*' projects to."""
    src_inst = icfg.instruction(edge.src)
    events = [TipEvent(tsc=0, target=_ANCHOR)]
    if src_inst.kind is Kind.COND and model.observes_conditionals:
        taken = edge.dst == (edge.src[0], src_inst.target)
        events.append(TntEvent(tsc=1, taken=taken))
    else:
        dst_inst = icfg.instruction(edge.dst)
        events.append(TipEvent(tsc=1, target=_TEMPLATES.entry(dst_inst.symbol())))
    return tuple(repr(p) for p in frontend.encode_core(events))


def _check_node(frontend, model, observability, icfg, node):
    out = icfg.out_edges(node)
    if len(out) < 2:
        return 0
    src_kind = icfg.instruction(node).kind
    streams = {
        edge.edge_id: _edge_packets(frontend, model, icfg, edge)
        for edge in out
    }
    checked = 0
    for edge in out:
        verdict = observability.of(edge)
        siblings = [
            streams[other.edge_id]
            for other in out
            if other.edge_id != edge.edge_id
        ]
        if verdict is EdgeObservability.SILENT:
            assert any(
                stream == streams[edge.edge_id] for stream in siblings
            ), "SILENT edge %s has no indistinguishable sibling (%s)" % (
                edge,
                frontend.name,
            )
        else:
            assert all(
                stream != streams[edge.edge_id] for stream in siblings
            ), "observed edge %s not discriminated by %s packets" % (
                edge,
                frontend.name,
            )
        checked += 1
    # For dispatch-discriminated sources, the decoder must also tell the
    # streams apart (template TIPs map back to distinct interpreter
    # dispatches); conditional outcomes are discriminated at the packet
    # level (the TNT/branch-map bit) before any dispatch mapping.
    if src_kind is not Kind.COND or not model.observes_conditionals:
        database = CodeDatabase(
            _TEMPLATES.metadata(), [], _TEMPLATES.address_space
        )
        items = {}
        for edge in out:
            decoder = frontend.object_decoder(database)
            raw = _edge_raw_packets(frontend, model, icfg, edge)
            items[edge.edge_id] = tuple(
                repr(item)
                for item in decoder.decode([("packet", p) for p in raw])
            )
        for edge in out:
            verdict = observability.of(edge)
            siblings = [
                items[other.edge_id]
                for other in out
                if other.edge_id != edge.edge_id
            ]
            if verdict is EdgeObservability.SILENT:
                assert any(s == items[edge.edge_id] for s in siblings)
            else:
                assert all(s != items[edge.edge_id] for s in siblings), (
                    "observed edge %s not discriminated by %s decode"
                    % (edge, frontend.name)
                )
    return checked


def _edge_raw_packets(frontend, model, icfg, edge):
    """Like :func:`_edge_packets` but returning the packet objects."""
    src_inst = icfg.instruction(edge.src)
    events = [TipEvent(tsc=0, target=_ANCHOR)]
    if src_inst.kind is Kind.COND and model.observes_conditionals:
        taken = edge.dst == (edge.src[0], src_inst.target)
        events.append(TntEvent(tsc=1, taken=taken))
    else:
        dst_inst = icfg.instruction(edge.dst)
        events.append(TipEvent(tsc=1, target=_TEMPLATES.entry(dst_inst.symbol())))
    return frontend.encode_core(events)


@pytest.mark.parametrize("frontend_name", FRONTENDS)
def test_observability_matches_encoder_round_trip(frontend_name):
    frontend = get_frontend(frontend_name)
    model = get_projection_model(frontend_name)
    checked = 0
    for seed in SEEDS:
        program = generate_program(seed, _CONFIG)
        icfg = ICFG(program)
        observability = ObservabilityMap(
            icfg, template_table=_TEMPLATES, model=model
        )
        for node in icfg.nodes():
            checked += _check_node(frontend, model, observability, icfg, node)
    # The generator must actually have exercised the property.
    assert checked > 1000, "too few sibling edges checked (%d)" % checked


class TestDegenerateModels:
    """Parametricity is real: a weaker projection weakens the verdicts."""

    def _icfg(self, seed=7):
        program = generate_program(seed, _CONFIG)
        return ICFG(program)

    def test_outcome_blind_model_silences_conditional_arms(self):
        icfg = self._icfg()
        blind = ProjectionModel(
            name="outcome-blind", version=0, observes_conditionals=False
        )
        full = ObservabilityMap(icfg, template_table=_TEMPLATES)
        weak = ObservabilityMap(icfg, template_table=_TEMPLATES, model=blind)
        flipped = 0
        for node in icfg.nodes():
            if icfg.instruction(node).kind is not Kind.COND:
                continue
            out = icfg.out_edges(node)
            if len(out) < 2:
                continue
            for edge in out:
                assert full.of(edge) is EdgeObservability.TNT_OBSERVED
                # Both arms dispatch their targets; whether the weak
                # model still tells them apart depends on the target
                # opcodes, exactly like a switch.
                if weak.of(edge) is EdgeObservability.SILENT:
                    flipped += 1
        assert weak.summary()["tnt"] == 0

    def test_target_blind_model_silences_every_choice(self):
        icfg = self._icfg()
        blind = ProjectionModel(
            name="target-blind",
            version=0,
            observes_conditionals=True,
            observes_targets=False,
        )
        weak = ObservabilityMap(icfg, template_table=_TEMPLATES, model=blind)
        for node in icfg.nodes():
            out = icfg.out_edges(node)
            if len(out) < 2:
                continue
            if icfg.instruction(node).kind is Kind.COND:
                for edge in out:
                    assert weak.of(edge) is EdgeObservability.TNT_OBSERVED
            else:
                for edge in out:
                    assert weak.of(edge) is EdgeObservability.SILENT

    def test_frontends_agree_on_full_projections(self):
        """PT and E-Trace both observe outcomes and targets, so their
        observability classes coincide -- the formats differ in cost,
        not information (which the cross-format bench pins dynamically)."""
        icfg = self._icfg()
        pt = ObservabilityMap(
            icfg, template_table=_TEMPLATES, model=get_projection_model("pt")
        )
        et = ObservabilityMap(
            icfg,
            template_table=_TEMPLATES,
            model=get_projection_model("etrace"),
        )
        for node in icfg.nodes():
            for edge in icfg.out_edges(node):
                assert pt.of(edge) is et.of(edge)
