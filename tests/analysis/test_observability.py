"""Tests for the per-edge observability classification."""

from repro.analysis import EdgeObservability, ObservabilityMap
from repro.jvm.assembler import MethodAssembler
from repro.jvm.icfg import ICFG
from repro.jvm.model import JClass, JProgram
from repro.jvm.opcodes import Kind
from repro.jvm.templates import TemplateTable


def _program_of(*methods):
    cls = JClass("T")
    for method in methods:
        cls.add_method(method)
    program = JProgram("obs-test")
    program.add_class(cls)
    program.set_entry("T", methods[0].name)
    return program


def _cond_method():
    asm = MethodAssembler("T", "cond", arg_count=1, returns_value=True)
    asm.load(0).ifeq("zero")
    asm.iinc(0, 1)
    asm.goto("out")
    asm.label("zero")
    asm.load(0).const(1).iadd().store(0)
    asm.label("out")
    asm.load(0).ireturn()
    return asm.build()


def _identical_arm_switch():
    asm = MethodAssembler("T", "sw", arg_count=1, returns_value=True)
    asm.load(0).const(3).irem()
    asm.tableswitch({0: "c0", 1: "c1"}, "dflt")
    for label in ("c0", "c1"):
        asm.label(label)
        asm.load(0).const(5).iadd().store(0)
        asm.goto("join")
    asm.label("dflt")
    asm.iinc(0, 1)
    asm.label("join")
    asm.load(0).ireturn()
    return asm.build()


class TestClassification:
    def test_conditional_arms_are_tnt_observed(self):
        program = _program_of(_cond_method())
        icfg = ICFG(program)
        obs = ObservabilityMap(icfg)
        cond_bci = next(
            inst.bci
            for inst in program.method("T", "cond").code
            if inst.kind is Kind.COND
        )
        for edge in icfg.out_edges(("T.cond", cond_bci)):
            assert obs.of(edge) is EdgeObservability.TNT_OBSERVED

    def test_identical_switch_arms_are_silent(self):
        program = _program_of(_identical_arm_switch())
        icfg = ICFG(program)
        obs = ObservabilityMap(icfg)
        switch_bci = next(
            inst.bci
            for inst in program.method("T", "sw").code
            if inst.kind is Kind.SWITCH
        )
        verdicts = [obs.of(e) for e in icfg.out_edges(("T.sw", switch_bci))]
        # Two arms open with ILOAD_0 (silent pair); the default arm opens
        # with IINC and is discriminated by its dispatch TIP.
        assert verdicts.count(EdgeObservability.SILENT) == 2
        assert verdicts.count(EdgeObservability.TIP_OBSERVED) == 1

    def test_straight_line_edges_are_tip_observed(self):
        program = _program_of(_cond_method())
        icfg = ICFG(program)
        obs = ObservabilityMap(icfg)
        for edge in icfg.edges():
            if len(icfg.out_edges(edge.src)) == 1:
                assert obs.of(edge) is EdgeObservability.TIP_OBSERVED

    def test_summary_counts_every_edge(self):
        program = _program_of(_identical_arm_switch())
        icfg = ICFG(program)
        obs = ObservabilityMap(icfg)
        assert sum(obs.summary().values()) == len(obs) == len(icfg.edges())

    def test_template_table_tokens_accepted(self):
        program = _program_of(_identical_arm_switch())
        icfg = ICFG(program)
        obs = ObservabilityMap(icfg, template_table=TemplateTable())
        # Distinct opcodes dispatch through disjoint template ranges in
        # our layout, so the verdicts match the opcode-token ones.
        assert obs.summary() == ObservabilityMap(icfg).summary()


class TestNodeScores:
    def test_silent_out_edges_lower_the_score(self):
        program = _program_of(_identical_arm_switch())
        icfg = ICFG(program)
        obs = ObservabilityMap(icfg)
        switch_bci = next(
            inst.bci
            for inst in program.method("T", "sw").code
            if inst.kind is Kind.SWITCH
        )
        assert obs.node_score(("T.sw", switch_bci)) < 1.0

    def test_fully_observable_nodes_score_one(self):
        program = _program_of(_cond_method())
        icfg = ICFG(program)
        obs = ObservabilityMap(icfg)
        for node in icfg.nodes():
            assert obs.node_score(node) == 1.0

    def test_silent_by_method_attribution(self):
        program = _program_of(_identical_arm_switch())
        obs = ObservabilityMap(ICFG(program))
        assert obs.silent_by_method() == {"T.sw": 2}
        assert len(obs.silent_edges()) == 2
