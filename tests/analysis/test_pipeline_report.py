"""The pipeline surfaces an analysis report on every run, and the CLI works."""

import subprocess
import sys

from repro.core import JPortal, ParallelPipeline
from repro.workloads import SUBJECT_NAMES, build_subject, default_config

from ..conftest import lossless_config


def _analyse(name="avrora", **kwargs):
    subject = build_subject(name)
    jportal = JPortal(subject.program, opaque_call_sites=subject.opaque_call_sites)
    run = subject.run(default_config())
    return jportal, jportal.analyze_run(run, lossless_config(), **kwargs)


class TestReportOnResult:
    def test_serial_result_carries_report(self):
        _jportal, result = _analyse()
        report = result.analysis_report
        assert report is not None
        assert report.decodable()
        assert not report.lint.has_errors
        assert len(report.checks) == len(list(result.program.methods()))

    def test_parallel_result_carries_same_verdicts(self):
        jportal, serial = _analyse()
        parallel = ParallelPipeline(jportal, max_workers=3).analyze_trace(
            serial.trace, serial.database
        )
        assert parallel.analysis_report is not None
        assert (
            parallel.analysis_report.ambiguous_methods()
            == serial.analysis_report.ambiguous_methods()
        )

    def test_database_lint_merged_per_run(self):
        jportal, result = _analyse()
        # The static report (no database) has strictly fewer or equal
        # findings than the per-run merged one.
        assert len(result.analysis_report.lint) >= len(jportal.analysis_report.lint)

    def test_analysis_seconds_reported_outside_total(self):
        _jportal, result = _analyse()
        timings = result.timings
        assert timings.analysis_seconds > 0.0
        assert timings.total_seconds == (
            timings.decode_seconds
            + timings.reconstruct_seconds
            + timings.recovery_seconds
        )

    def test_projection_confidence_clean_program(self):
        _jportal, result = _analyse()
        for flow in result.flows.values():
            assert flow.projection.ambiguous_steps == 0
            assert flow.projection.confidence == 1.0


class TestFrontendSelection:
    def test_default_report_is_pt(self):
        jportal, result = _analyse()
        assert jportal.analysis_report.frontend == "pt"
        assert result.analysis_report.frontend == "pt"
        assert result.analysis_report.summary()["frontend"] == "pt"

    def test_etrace_trace_gets_etrace_report(self):
        """A run collected through the E-Trace frontend is analysed under
        the E-Trace projection model, not the default."""
        from repro.core.metadata import collect_metadata
        from repro.pt.perf import PTConfig, collect

        subject = build_subject("avrora")
        jportal = JPortal(
            subject.program, opaque_call_sites=subject.opaque_call_sites
        )
        run = subject.run(default_config())
        trace = collect(
            run, PTConfig(buffer=lossless_config().buffer, frontend="etrace")
        )
        result = jportal.analyze_trace(trace, collect_metadata(run))
        assert result.analysis_report.frontend == "etrace"
        # The pipeline's default static report is untouched.
        assert jportal.analysis_report.frontend == "pt"

    def test_analysis_frontend_constructor_override(self):
        subject = build_subject("batik")
        jportal = JPortal(subject.program, analysis_frontend="etrace")
        assert jportal.analysis_report.frontend == "etrace"
        # Both frontends observe outcomes and targets, so verdicts agree.
        assert (
            jportal.analysis_report.ambiguous_methods()
            == jportal.analysis_report_for("pt").ambiguous_methods()
        )


class TestObservabilityFeedsRecovery:
    def test_engine_receives_observability(self):
        jportal, _result = _analyse()
        assert jportal.recovery_engine.observability is not None
        some_node = next(iter(jportal.icfg.nodes()))
        score = jportal.recovery_engine.observability.node_score(some_node)
        assert 0.0 <= score <= 1.0


class TestCLI:
    def test_cli_single_subject(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "batik", "--static-only"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "batik" in proc.stdout
        assert "fully decodable" in proc.stdout

    def test_cli_generated_seed(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--generated", "2416"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "generated seed 2416" in proc.stdout

    def test_cli_fail_on_error_passes_on_clean_subject(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                "luindex",
                "--static-only",
                "--fail-on-error",
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src"},
        )
        assert proc.returncode == 0, proc.stderr


def test_every_subject_report_reusable():
    """JPortal computes the static report once; repeated runs reuse it."""
    subject = build_subject("h2")
    jportal = JPortal(subject.program)
    first = jportal.analyze_run(subject.run(default_config()), lossless_config())
    second = jportal.analyze_run(subject.run(default_config()), lossless_config())
    assert (
        first.analysis_report.ambiguous_methods()
        == second.analysis_report.ambiguous_methods()
    )
    assert first.analysis_report.static_seconds == jportal.analysis_report.static_seconds


def test_all_subjects_decodable_through_pipeline():
    for name in SUBJECT_NAMES:
        subject = build_subject(name)
        jportal = JPortal(subject.program, opaque_call_sites=subject.opaque_call_sites)
        assert jportal.analysis_report.decodable(), name
