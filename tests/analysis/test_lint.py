"""Tests for the metadata / program well-formedness lints."""

import copy

from repro.analysis import (
    Severity,
    lint_database,
    lint_program,
    lint_templates,
    unreachable_blocks,
    unreachable_nodes,
)
from repro.core.metadata import collect_metadata
from repro.jvm.assembler import MethodAssembler
from repro.jvm.model import JClass, JProgram
from repro.workloads import build_subject, default_config


def _fixture():
    subject = build_subject("avrora")
    run = subject.run(default_config())
    return subject.program, collect_metadata(run)


class TestTemplates:
    def test_real_table_is_clean(self):
        _program, database = _fixture()
        assert lint_templates(database.template_metadata) == []

    def test_unknown_mnemonic_is_error(self):
        findings = lint_templates({"frobnicate": ((0x100, 0x160),)})
        assert any(
            f.check == "template-unknown-mnemonic" and f.severity is Severity.ERROR
            for f in findings
        )

    def test_empty_range_is_error(self):
        findings = lint_templates({"nop": ((0x200, 0x200),)})
        assert any(f.check == "template-empty-range" for f in findings)

    def test_overlapping_ranges_are_error(self):
        findings = lint_templates(
            {"nop": ((0x100, 0x180),), "iadd": ((0x150, 0x1B0),)}
        )
        assert any(f.check == "template-overlap" for f in findings)

    def test_missing_opcode_is_warning_only(self):
        findings = lint_templates({"nop": ((0x100, 0x160),)})
        assert all(
            f.severity is not Severity.ERROR
            for f in findings
            if f.check == "template-missing-op"
        )


class TestDatabase:
    def test_clean_database_has_no_errors(self):
        program, database = _fixture()
        errors = [
            f
            for f in lint_database(database, program)
            if f.severity is Severity.ERROR
        ]
        assert errors == []

    def test_deleted_debug_record_detected_by_count(self):
        program, database = _fixture()
        mutated = copy.deepcopy(database)
        dump = next(d for d in mutated.code_dumps if d.debug)
        del dump.debug[sorted(dump.debug)[0]]
        findings = lint_database(mutated, program)
        assert any(f.check == "debug-count-mismatch" for f in findings)

    def test_bogus_qname_detected(self):
        program, database = _fixture()
        mutated = copy.deepcopy(database)
        dump = next(d for d in mutated.code_dumps if d.debug)
        dump.debug[sorted(dump.debug)[0]] = (("lost", -1),)
        findings = lint_database(mutated, program)
        assert any(f.check == "debug-unresolvable" for f in findings)

    def test_unknown_method_detected(self):
        program, database = _fixture()
        mutated = copy.deepcopy(database)
        dump = next(d for d in mutated.code_dumps if d.debug)
        dump.debug[sorted(dump.debug)[0]] = (("no.such.Klass.method", 0),)
        findings = lint_database(mutated, program)
        assert any(f.check == "debug-unresolvable" for f in findings)

    def test_out_of_range_bci_detected(self):
        program, database = _fixture()
        mutated = copy.deepcopy(database)
        dump = next(d for d in mutated.code_dumps if d.debug)
        address = sorted(dump.debug)[0]
        frames = dump.debug[address]
        qname, _bci = frames[-1]
        dump.debug[address] = frames[:-1] + ((qname, 10_000_000),)
        findings = lint_database(mutated, program)
        assert any(
            f.check == "debug-unresolvable" and f.address == address
            for f in findings
        )

    def test_inverted_dump_range_detected(self):
        program, database = _fixture()
        mutated = copy.deepcopy(database)
        dump = mutated.code_dumps[0]
        dump.limit = dump.entry
        findings = lint_database(mutated, program)
        assert any(f.check == "dump-empty-range" for f in findings)

    def test_concurrently_live_overlapping_dumps_detected(self):
        program, database = _fixture()
        mutated = copy.deepcopy(database)
        if len(mutated.code_dumps) < 2:
            return  # nothing to overlap in this fixture
        a, b = mutated.code_dumps[0], mutated.code_dumps[1]
        b.entry = a.entry
        b.limit = a.limit
        a.unload_tsc = None
        b.unload_tsc = None
        findings = lint_database(mutated, program)
        assert any(f.check == "dump-pc-overlap" for f in findings)


class TestProgram:
    def test_subject_programs_are_clean(self):
        program, _database = _fixture()
        errors = [
            f for f in lint_program(program) if f.severity is Severity.ERROR
        ]
        assert errors == []

    def test_unreachable_block_is_warned(self):
        asm = MethodAssembler("T", "dead", arg_count=1, returns_value=True)
        asm.load(0).ireturn()
        asm.label("island")
        asm.iinc(0, 1)
        asm.goto("island")
        method = asm.build()
        cls = JClass("T")
        cls.add_method(method)
        program = JProgram("dead-test")
        program.add_class(cls)
        program.set_entry("T", "dead")
        assert "T.dead" in unreachable_blocks(program)
        nodes = unreachable_nodes(program)
        assert all(qname == "T.dead" for qname, _bci in nodes)
        findings = lint_program(program)
        assert any(f.check == "unreachable-block" for f in findings)

    def test_call_edges_have_return_edges(self):
        program, _database = _fixture()
        assert not any(
            f.check == "call-missing-return-edge" for f in lint_program(program)
        )
