"""Tests for the trace-plan advisor and its dynamic soundness oracle."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import (
    BYTES_PER_BRANCH_RTOL,
    estimate_dispatch_ratio,
    plan_trace,
    verify_against_measurement,
)
from repro.jvm.assembler import MethodAssembler
from repro.jvm.model import JClass, JProgram
from repro.jvm.templates import TemplateTable
from repro.workloads import SUBJECT_NAMES, build_subject

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
_BENCH_FILE = os.path.join(_REPO_ROOT, "BENCH_2026-08-08.json")


def _committed_cross_format():
    with open(_BENCH_FILE, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return document["runs"]["post"]["cross_format"]


def _ambiguous_program():
    """A tableswitch with identical-opcode arms: ambiguous under any
    frontend that reveals opcodes but no switch outcome."""
    asm = MethodAssembler("T", "amb", arg_count=1, returns_value=True)
    asm.load(0).const(3).irem()
    asm.tableswitch({0: "c0", 1: "c1"}, "dflt")
    for label in ("c0", "c1"):
        asm.label(label)
        asm.load(0).const(5).iadd().store(0)
        asm.goto("join")
    asm.label("dflt")
    asm.iinc(0, 1)
    asm.label("join")
    asm.load(0).ireturn()
    cls = JClass("T")
    cls.add_method(asm.build())
    program = JProgram("amb-test")
    program.add_class(cls)
    program.set_entry("T", "amb")
    return program


class TestDispatchEstimate:
    @pytest.mark.parametrize("name", SUBJECT_NAMES)
    def test_regimes_ordered(self, name):
        estimate = estimate_dispatch_ratio(build_subject(name).program)
        assert 0 < estimate.low <= estimate.point <= estimate.high
        assert estimate.cond_sites > 0


class TestTracePlan:
    def test_golden_subjects_all_decodable_under_both_frontends(self):
        for name in SUBJECT_NAMES:
            subject = build_subject(name)
            plan = plan_trace(
                subject.program,
                template_table=TemplateTable(),
                subject=name,
                opaque_call_sites=subject.opaque_call_sites,
            )
            assert {p.frontend for p in plan.plans} == {"pt", "etrace"}
            for row in plan.plans:
                assert row.decodable, (name, row.frontend)
                assert row.ambiguous_methods == ()
                assert (
                    row.bytes_per_branch_low
                    <= row.bytes_per_branch_estimate
                    <= row.bytes_per_branch_high
                )

    def test_recommends_pt_on_sunflow(self):
        """PT is the denser format on the golden cross-format subject
        (the committed bench measures compression_ratio < 1), and the
        static plan must agree."""
        subject = build_subject("sunflow")
        plan = plan_trace(
            subject.program, template_table=TemplateTable(), subject="sunflow"
        )
        assert plan.recommended.frontend == "pt"

    def test_ambiguous_program_ranks_with_ambiguity_first_key(self):
        plan = plan_trace(
            _ambiguous_program(), template_table=TemplateTable(), subject="amb"
        )
        for row in plan.plans:
            assert not row.decodable
            assert row.ambiguous_methods == ("T.amb",)

    def test_render_and_json_round_trip(self):
        subject = build_subject("avrora")
        plan = plan_trace(
            subject.program, template_table=TemplateTable(), subject="avrora"
        )
        text = plan.render()
        assert "recommendation:" in text
        assert "avrora" in text
        document = json.loads(plan.to_json())
        assert document["recommended"] == plan.recommended.frontend
        assert len(document["frontends"]) == 2


class TestSoundnessOracle:
    """The acceptance-criteria cross-check against the committed bench."""

    def test_static_plan_sound_against_committed_measurement(self):
        cross_format = _committed_cross_format()
        subject = build_subject(cross_format["subject"])
        plan = plan_trace(
            subject.program,
            template_table=TemplateTable(),
            subject=cross_format["subject"],
            opaque_call_sites=subject.opaque_call_sites,
        )
        problems = verify_against_measurement(plan, cross_format)
        assert problems == []

    def test_committed_measurements_inside_static_bounds(self):
        cross_format = _committed_cross_format()
        subject = build_subject(cross_format["subject"])
        plan = plan_trace(
            subject.program,
            template_table=TemplateTable(),
            subject=cross_format["subject"],
        )
        for name, entry in cross_format["formats"].items():
            row = plan.plan_for(name)
            measured = entry["bytes_per_branch"]
            assert row.bytes_per_branch_low <= measured <= row.bytes_per_branch_high
            rel_error = abs(row.bytes_per_branch_estimate - measured) / measured
            assert rel_error <= BYTES_PER_BRANCH_RTOL

    def test_static_ambiguity_agrees_with_dynamic_transients(self):
        """Golden subjects are statically decodable under both frontends
        and dynamically every matched step is unambiguous -- the two
        sides of the acceptance criterion."""
        from repro.core import JPortal
        from repro.core.metadata import collect_metadata
        from repro.pt.buffer import RingBufferConfig
        from repro.pt.perf import PTConfig, collect
        from repro.workloads import default_config

        subject = build_subject("avrora")
        plan = plan_trace(
            subject.program,
            template_table=TemplateTable(),
            subject="avrora",
            opaque_call_sites=subject.opaque_call_sites,
        )
        jportal = JPortal(
            subject.program, opaque_call_sites=subject.opaque_call_sites
        )
        run = subject.run(default_config())
        database = collect_metadata(run)
        lossless = RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1e9)
        for frontend in ("pt", "etrace"):
            row = plan.plan_for(frontend)
            trace = collect(
                run, PTConfig(buffer=lossless, frontend=frontend)
            )
            result = jportal.analyze_trace(trace, database)
            dynamic_ambiguous = sum(
                flow.projection.ambiguous_steps
                for flow in result.flows.values()
            )
            # statically clean <=> dynamically no ambiguous matched steps
            assert (len(row.ambiguous_methods) == 0) == (dynamic_ambiguous == 0)
            assert result.analysis_report.frontend == frontend


class TestPlanCLI:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", "plan"] + list(argv),
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src"},
            cwd=_REPO_ROOT,
        )

    def test_plan_expect_best_passes(self):
        proc = self._run("sunflow", "--expect-best", "pt")
        assert proc.returncode == 0, proc.stderr
        assert "recommendation: pt" in proc.stdout

    def test_plan_expect_best_fails_on_wrong_frontend(self):
        proc = self._run("sunflow", "--expect-best", "etrace")
        assert proc.returncode == 1
        assert "FAIL" in proc.stderr

    def test_plan_json(self):
        proc = self._run("sunflow", "--json")
        assert proc.returncode == 0, proc.stderr
        document = json.loads(proc.stdout)
        assert document[0]["subject"] == "sunflow"
        assert document[0]["recommended"] == "pt"
