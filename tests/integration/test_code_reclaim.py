"""Code-cache reclamation: export-before-GC and address reuse (paper §3.2).

"Different from the interpreter's code template that is persistent
throughout execution, the JITed code is subject to garbage collection and
hence can be removed. As such, JPortal exports (1) the compiled code of a
method and (2) its address range before it is reclaimed by GC."

These tests reclaim a hot method's code after a traced run, compile a
*different* method into the reused address range, and check that decoding
the earlier trace still resolves the shared addresses to the code that
occupied them at trace time (epoch resolution by load/unload timestamps).
"""

from repro.core import JPortal
from repro.core.metadata import collect_metadata
from repro.jvm.assembler import MethodAssembler
from repro.jvm.jit import JITPolicy
from repro.jvm.model import JClass, JProgram
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.jvm.verifier import verify_program

from ..conftest import lossless_config


def _program():
    a = MethodAssembler("T", "a", arg_count=1, returns_value=True)
    a.load(0).const(3).imul().const(0x7FFFFFFF).iand().ireturn()
    b = MethodAssembler("T", "b", arg_count=1, returns_value=True)
    b.load(0).const(7).iadd().ireturn()
    main = MethodAssembler("T", "main", arg_count=0, returns_value=True)
    main.const(0).store(0)
    main.const(0).store(1)
    main.label("head")
    main.load(0).const(60).if_icmpge("done")
    main.load(0).invokestatic("T", "a", 1, True)
    main.load(1).iadd().const(0x7FFFFFFF).iand().store(1)
    main.iinc(0, 1).goto("head")
    main.label("done")
    main.load(1).ireturn()
    cls = JClass("T")
    for asm in (a, b, main):
        cls.add_method(asm.build())
    program = JProgram("reclaim")
    program.add_class(cls)
    program.set_entry("T", "main")
    verify_program(program)
    return program


class TestAddressReuse:
    def test_reclaimed_space_is_reused(self):
        program = _program()
        runtime = JVMRuntime(
            program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=5))
        )
        runtime.add_thread(name="main")
        runtime.run()
        code_a = runtime.code_cache.lookup("T.a")
        assert code_a is not None
        entry_a = code_a.entry
        runtime.code_cache.evict("T.a", tsc=runtime.tsc)
        code_b = runtime.compiler.compile(program.method("T", "b"), tsc=runtime.tsc)
        # b is smaller than a: it reuses the reclaimed region.
        assert code_b.entry == entry_a
        assert code_a.unload_tsc is not None
        assert code_b.load_tsc >= code_a.unload_tsc

    def test_trace_decodes_against_pre_reclaim_epoch(self):
        program = _program()
        runtime = JVMRuntime(
            program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=5))
        )
        runtime.add_thread(name="main")
        run = runtime.run()
        truth = run.threads[0].truth

        # GC reclaims a's code after the run; b's code moves in on top.
        runtime.code_cache.evict("T.a", tsc=runtime.tsc)
        code_b = runtime.compiler.compile(program.method("T", "b"), tsc=runtime.tsc)
        code_a_dumps = [
            dump for dump in collect_metadata(run).code_dumps if dump.qname == "T.a"
        ]
        assert code_a_dumps[0].unload_tsc is not None
        assert any(
            dump.qname == "T.b" and dump.entry == code_a_dumps[0].entry
            for dump in collect_metadata(run).code_dumps
        )

        # The old trace must still reconstruct exactly: its timestamps
        # predate the reclamation, so the database resolves the shared
        # addresses to a's code, not b's.
        result = JPortal(program).analyze_run(run, lossless_config())
        assert result.flow_of(0).reconstructed_nodes() == truth

    def test_free_list_splits_large_regions(self):
        from repro.jvm.jit import CodeCache

        cache = CodeCache()
        base = cache.allocate(1000)
        # Simulate evict bookkeeping directly.
        cache._free.append((base, 1000))
        small = cache.allocate(100)
        assert small == base
        second = cache.allocate(100)
        assert base < second < base + 1000
