"""Archive-level fault-injection suite: salvage decode never crashes.

The invariant under test (ISSUE 5's tentpole): **no disk-level fault
ever raises** -- :meth:`~repro.core.pipeline.JPortal.analyze_archive`
completes on every corrupted file, reports the injected fault in its
salvage stats / ``anomalies_by_kind``, and still decodes every segment
the fault did not touch.  Faults come from the same seeded
:class:`~repro.pt.faults.FaultInjector` the stream-level suite uses, at
its new disk layer (truncate-at-byte, bit flips, dropped/duplicated
segment records, stale metadata snapshots).

``TestArchiveFuzz`` is the seed sweep the CI ``archive-fuzz`` job runs
on every push (see .github/workflows/ci.yml).
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JPortal, ParallelPipeline
from repro.core.metadata import collect_metadata
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.pt.archive import read_archive, write_archive
from repro.pt.faults import ARCHIVE_FAULT_KINDS, FaultInjector, FaultKind
from repro.pt.perf import collect

from ..conftest import build_figure2_program, lossy_config

#: What a single injected disk fault may legitimately surface as.  Keys
#: are fault kinds; values are the salvage-kind sets of which at least
#: one must appear in ``SalvageStats.by_kind()``.  (A truncation can land
#: mid-record or exactly on a boundary; a bit flip can hit framing,
#: header, payload, or the seal -- each lands in a different bucket.)
EXPECTED_KINDS = {
    FaultKind.TRUNCATE_ARCHIVE: {
        "segment_torn", "archive_unsealed", "archive_malformed",
    },
    FaultKind.BIT_FLIP: {
        "segment_crc_mismatch", "segment_torn", "segment_gap",
        "segment_duplicate", "archive_malformed", "archive_unsealed",
    },
    FaultKind.DROP_SEGMENT: {"segment_gap"},
    FaultKind.DUPLICATE_SEGMENT: {"segment_duplicate"},
    FaultKind.STALE_SNAPSHOT: {"metadata_snapshot_missing"},
}


@pytest.fixture(scope="module")
def fixture(tmp_path_factory):
    """One deterministic lossy 3-thread run, archived to disk."""
    program = build_figure2_program(iterations=40)
    config = RuntimeConfig(cores=2, quantum=50, jit=JITPolicy(hot_threshold=8))
    runtime = JVMRuntime(program, config)
    runtime.add_thread(name="main")
    for _ in range(2):
        runtime.add_thread("Test", "main", ())
    run = runtime.run()
    trace = collect(run, lossy_config(capacity=600, bandwidth=0.1))
    database = collect_metadata(run)
    base = tmp_path_factory.mktemp("archives")
    path = base / "trace.rpt2"
    write_archive(trace, database, path, segment_packets=48)
    return {
        "program": program,
        "trace": trace,
        "database": database,
        "jportal": JPortal(program),
        "path": str(path),
        "snapshot": str(path) + ".meta",
        "bytes": open(path, "rb").read(),
        "workdir": str(base),
    }


def salvage_contract(stats, mutated_size, note=""):
    """The byte-accounting invariant every salvage must satisfy."""
    accounted = (
        stats.bytes_salvaged + stats.bytes_dropped + stats.bytes_converted_to_loss
    )
    assert accounted == stats.file_size == mutated_size, note


def run_one_seed(fixture, seed, analyze=False):
    """Inject one disk fault, salvage, assert the contract; returns the
    (faults, stats) pair for kind-coverage bookkeeping."""
    injector = FaultInjector(seed=seed)
    mutated, faults = injector.corrupt_archive(fixture["bytes"], faults=1)
    target = os.path.join(fixture["workdir"], "fuzz_%d.rpt2" % seed)
    with open(target, "wb") as sink:
        sink.write(mutated)
    note = "seed=%d faults=%r" % (seed, faults)
    contents = read_archive(target, snapshot_path=fixture["snapshot"])
    stats = contents.stats
    salvage_contract(stats, len(mutated), note)
    kinds = set(stats.by_kind())
    for fault in faults:
        assert kinds & EXPECTED_KINDS[fault.kind], (
            "%s: fault not visible in salvage kinds %s" % (note, sorted(kinds))
        )
    if analyze:
        result = fixture["jportal"].analyze_archive(
            target, snapshot_path=fixture["snapshot"]
        )
        assert result.salvage is not None
        for kind in stats.by_kind():
            assert result.anomalies_by_kind.get(kind, 0) >= 1, (note, kind)
    os.unlink(target)
    return faults, stats


class TestArchiveContract:
    """Directed single-fault tests: each disk fault kind is (a) survived
    and (b) visible in the salvage report."""

    def test_undamaged_roundtrip_bit_identical(self, fixture):
        reference = fixture["jportal"].analyze_trace(
            fixture["trace"], fixture["database"]
        )
        from_disk = fixture["jportal"].analyze_archive(fixture["path"])
        assert sorted(reference.flows) == sorted(from_disk.flows)
        for tid, flow in reference.flows.items():
            disk_flow = from_disk.flows[tid]
            assert disk_flow.flow.entries == flow.flow.entries, tid
            assert disk_flow.observed.items == flow.observed.items, tid
        assert from_disk.salvage.clean

    def test_parallel_archive_matches_serial(self, fixture):
        serial = fixture["jportal"].analyze_archive(fixture["path"])
        parallel = ParallelPipeline(
            fixture["jportal"], max_workers=4
        ).analyze_archive(fixture["path"])
        for tid, flow in serial.flows.items():
            assert parallel.flows[tid].flow.entries == flow.flow.entries, tid

    @pytest.mark.parametrize(
        "kind",
        [
            FaultKind.TRUNCATE_ARCHIVE,
            FaultKind.BIT_FLIP,
            FaultKind.DROP_SEGMENT,
            FaultKind.DUPLICATE_SEGMENT,
        ],
    )
    def test_each_fault_kind_survives_and_reports(self, fixture, kind):
        injected = 0
        for seed in range(12):
            injector = FaultInjector(seed=seed)
            mutated, faults = injector.corrupt_archive(
                fixture["bytes"], kinds=[kind], faults=1
            )
            if not faults:
                continue
            injected += 1
            target = os.path.join(
                fixture["workdir"], "directed_%s_%d.rpt2" % (kind.value, seed)
            )
            with open(target, "wb") as sink:
                sink.write(mutated)
            result = fixture["jportal"].analyze_archive(
                target, snapshot_path=fixture["snapshot"]
            )
            kinds = set(result.salvage.by_kind())
            assert kinds & EXPECTED_KINDS[kind], (kind, seed, sorted(kinds))
            assert any(
                result.anomalies_by_kind.get(k, 0) for k in EXPECTED_KINDS[kind]
            ), (kind, seed)
            os.unlink(target)
        assert injected > 0, "no seed injected %s" % kind.value

    def test_stale_snapshot_reports_and_degrades(self, fixture, tmp_path):
        import shutil

        path = tmp_path / "trace.rpt2"
        shutil.copy(fixture["path"], path)
        shutil.copy(fixture["snapshot"], str(path) + ".meta")
        fault = FaultInjector(seed=3).corrupt_snapshot(str(path) + ".meta")
        assert fault is not None and fault.kind is FaultKind.STALE_SNAPSHOT
        result = fixture["jportal"].analyze_archive(path)
        assert result.salvage.metadata_snapshots_missing == 1
        assert result.anomalies_by_kind.get("metadata_snapshot_missing") == 1

    def test_missing_snapshot_with_explicit_database_is_lossless(
        self, fixture, tmp_path
    ):
        """Losing the sidecar costs nothing when metadata arrives through
        another channel: flows match the in-memory analysis exactly."""
        import shutil

        path = tmp_path / "trace.rpt2"
        shutil.copy(fixture["path"], path)  # no .meta copied
        result = fixture["jportal"].analyze_archive(
            path, database=fixture["database"]
        )
        reference = fixture["jportal"].analyze_trace(
            fixture["trace"], fixture["database"]
        )
        for tid, flow in reference.flows.items():
            assert result.flows[tid].flow.entries == flow.flow.entries, tid
        assert result.salvage.metadata_snapshots_missing == 1

    def test_multi_fault_archives_survive(self, fixture):
        """Several simultaneous disk faults still salvage and account."""
        for seed in range(20):
            injector = FaultInjector(seed=1000 + seed)
            mutated, faults = injector.corrupt_archive(fixture["bytes"], faults=3)
            if not faults:
                continue
            target = os.path.join(fixture["workdir"], "multi_%d.rpt2" % seed)
            with open(target, "wb") as sink:
                sink.write(mutated)
            contents = read_archive(target, snapshot_path=fixture["snapshot"])
            salvage_contract(contents.stats, len(mutated), "seed=%d" % seed)
            os.unlink(target)


class TestArchiveFuzz:
    """The CI ``archive-fuzz`` sweep: 200 seeds through the salvage
    reader (every one byte-accounted and kind-covered), a subset through
    the full pipeline."""

    def test_fuzz_salvage_200_seeds(self, fixture):
        seen_kinds = set()
        for seed in range(200):
            faults, _stats = run_one_seed(fixture, seed, analyze=(seed % 20 == 0))
            seen_kinds.update(fault.kind for fault in faults)
        assert seen_kinds == set(ARCHIVE_FAULT_KINDS), sorted(
            kind.value for kind in seen_kinds
        )

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_salvage_property(self, fixture, seed):
        """Property form: any single seeded disk fault salvages with
        exact byte accounting and a visible report."""
        run_one_seed(fixture, seed)
