"""Fault-injection fuzz suite: the decode pipeline never crashes.

The invariant under test (ISSUE 3's tentpole): **no corrupted stream ever
raises** -- it degrades to anomalies + holes -- and serial/parallel
pipeline outputs stay bit-identical under every injected fault.  A
seeded :class:`~repro.pt.faults.FaultInjector` mutates real collected
traces (truncations, loss-record corruption, unmapped TIPs, TNT
split/merge, tie reordering, stale debug info); 1000 decoder-level seeds
plus a pipeline-level sweep cover every fault kind and every
:class:`~repro.pt.decoder.DegradationPolicy` variant.

``TestFaultSmoke`` is the fixed 50-seed subset the CI fault-smoke job
runs on every push (see .github/workflows/ci.yml).
"""

import pickle

import pytest

from repro.core import JPortal, ParallelPipeline
from repro.core.metadata import collect_metadata
from repro.core.multicore import split_by_thread
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.pt.decoder import (
    AnomalyKind,
    DegradationPolicy,
    DecodeAnomaly,
    InterpDispatch,
    InterpReturnStub,
    JitSpan,
    PTDecoder,
    TraceLoss,
)
from repro.pt.faults import FaultInjector, FaultKind, STREAM_FAULT_KINDS
from repro.pt.perf import collect

from ..conftest import build_figure2_program, lossy_config

#: Policy variants cycled through the fuzz loop (seed % 4).
POLICIES = (
    DegradationPolicy(),
    DegradationPolicy(max_anomalies_per_segment=4),
    DegradationPolicy(resync=False),
    DegradationPolicy(max_anomalies_per_segment=None),
)


@pytest.fixture(scope="module")
def fixture():
    """One deterministic lossy 3-thread run: program, trace, database,
    per-thread streams, and a pre-built analyser."""
    program = build_figure2_program(iterations=40)
    config = RuntimeConfig(cores=2, quantum=50, jit=JITPolicy(hot_threshold=8))
    runtime = JVMRuntime(program, config)
    runtime.add_thread(name="main")
    for _ in range(2):
        runtime.add_thread("Test", "main", ())
    run = runtime.run()
    trace = collect(run, lossy_config(capacity=600, bandwidth=0.1))
    database = collect_metadata(run)
    streams = {
        tid: thread.stream for tid, thread in split_by_thread(trace).items()
    }
    return {
        "program": program,
        "run": run,
        "trace": trace,
        "database": database,
        "streams": streams,
        "jportal": JPortal(program),
    }


def _check_decoder_invariants(decoder, items, seed):
    """The degradation contract, checked on every fuzzed decode."""
    stats = decoder.stats
    anomaly_items = [i for i in items if isinstance(i, DecodeAnomaly)]
    note = "seed=%d" % seed
    assert stats.anomalies == len(anomaly_items), note
    assert sum(stats.by_kind.values()) == stats.anomalies, note
    # TNT bit conservation: every emitted bit is consumed, orphaned,
    # discarded during resync, dropped with a hole, or left unused.
    assert (
        stats.tnt_bits
        == stats.tnt_consumed
        + stats.tnt_orphaned
        + stats.tnt_discarded
        + stats.tnt_dropped_on_loss
        + stats.tnt_unused
    ), note
    # Item accounting: every decoded item traces back to a counted event.
    assert stats.by_kind.get(AnomalyKind.DECODER_ERROR, 0) == 0, note
    flows = sum(
        1
        for i in items
        if isinstance(i, (InterpDispatch, InterpReturnStub, JitSpan))
    )
    real_holes = sum(
        1 for i in items if isinstance(i, TraceLoss) and not i.synthetic
    )
    synthetic = sum(
        1 for i in items if isinstance(i, TraceLoss) and i.synthetic
    )
    assert flows == stats.tips - stats.by_kind.get(AnomalyKind.TIP_UNMAPPED, 0), note
    assert real_holes == stats.losses, note
    assert synthetic == stats.synthetic_holes, note
    assert len(items) == flows + real_holes + synthetic + len(anomaly_items), note


def _fuzz_one_seed(fixture, seed):
    """Mutate one thread's stream and decode it; returns applied kinds."""
    injector = FaultInjector(seed)
    tids = sorted(fixture["streams"])
    stream = fixture["streams"][tids[seed % len(tids)]]
    # One directed kind (cycling for coverage) plus random extras.
    directed = STREAM_FAULT_KINDS[seed % len(STREAM_FAULT_KINDS)]
    mutated, faults = injector.mutate_stream(stream, kinds=[directed], faults=1)
    mutated, extra = injector.mutate_stream(mutated, faults=seed % 3)
    decoder = PTDecoder(
        fixture["database"], policy=POLICIES[seed % len(POLICIES)]
    )
    items = decoder.decode(mutated)
    _check_decoder_invariants(decoder, items, seed)
    if seed % 10 == 0:  # determinism spot check: same stream, same items
        again = PTDecoder(
            fixture["database"], policy=POLICIES[seed % len(POLICIES)]
        ).decode(mutated)
        assert pickle.dumps(again) == pickle.dumps(items), "seed=%d" % seed
    return {fault.kind for fault in faults + extra}


class TestDecoderFuzz:
    def test_thousand_seeds_never_raise(self, fixture):
        """1000 seeds x all stream fault kinds x all policy variants."""
        covered = set()
        for seed in range(1000):
            covered |= _fuzz_one_seed(fixture, seed)
        assert covered == set(STREAM_FAULT_KINDS)


def _pipeline_invariants(result, note):
    assert isinstance(result.anomalies_by_kind, dict), note
    if result.anomalies:
        assert result.anomalies_by_kind, note
        assert sum(result.anomalies_by_kind.values()) >= result.anomalies, note
    for tid, flow in result.flows.items():
        assert flow.tid == tid, note


class TestPipelineFuzz:
    """Serial/parallel bit-identity on faulted fixtures (>= 20 seeds)."""

    @pytest.mark.parametrize("seed", range(24))
    def test_serial_parallel_identical_under_faults(self, fixture, seed):
        injector = FaultInjector(1_000_000 + seed)
        trace, faults = injector.mutate_trace(
            fixture["trace"], faults_per_core=3
        )
        database = fixture["database"]
        if seed % 3 == 0:
            database, db_faults = injector.corrupt_database(database)
            faults = faults + db_faults
        assert faults, "seed=%d produced no faults" % seed
        jportal = fixture["jportal"]
        note = "seed=%d faults=%r" % (seed, [f.kind for f in faults])
        serial = jportal.analyze_trace(trace, database)
        parallel = ParallelPipeline(jportal, max_workers=3).analyze_trace(
            trace, database
        )
        assert pickle.dumps(parallel.flows) == pickle.dumps(serial.flows), note
        assert parallel.anomalies == serial.anomalies, note
        assert parallel.anomalies_by_kind == serial.anomalies_by_kind, note
        _pipeline_invariants(serial, note)

    def test_corrupt_database_counts_stale_debug(self, fixture):
        """A database with invalidated debug entries degrades the lift
        (skipped instructions counted per kind), never crashes it."""
        injector = FaultInjector(77)
        database, faults = injector.corrupt_database(
            fixture["database"], entries=16
        )
        assert any(f.kind is FaultKind.STALE_DEBUG for f in faults)
        result = fixture["jportal"].analyze_trace(fixture["trace"], database)
        breakdown = result.anomalies_by_kind
        # The fixture JITs Test.fun, so some corrupted entries are hit.
        assert breakdown.get(AnomalyKind.STALE_DEBUG_INFO.value, 0) >= 0
        _pipeline_invariants(result, "stale-debug")


class TestStatsReconciliation:
    """ISSUE satellite: decoder stats reconcile against stream contents
    on clean (non-injected) lossy streams across seeds."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_stats_account_for_every_stream_item(self, fixture, seed):
        from repro.workloads.generator import generate_program

        program = generate_program(seed)
        config = RuntimeConfig(
            cores=1, jit=JITPolicy(hot_threshold=3), max_steps=2_000_000
        )
        runtime = JVMRuntime(program, config)
        runtime.add_thread(name="main")
        run = runtime.run()
        trace = collect(run, lossy_config(capacity=700, bandwidth=0.4))
        database = collect_metadata(run)
        for tid, thread in split_by_thread(trace).items():
            decoder = PTDecoder(database)
            items = decoder.decode(thread.stream)
            _check_decoder_invariants(decoder, items, seed)
            # Packet/loss accounting against the raw stream.
            packets = sum(1 for tag, _ in thread.stream if tag == "packet")
            losses = sum(1 for tag, _ in thread.stream if tag == "loss")
            assert decoder.stats.packets == packets
            assert decoder.stats.losses == losses


class TestLintFlagsCorruption:
    """ISSUE 4 satellite: every database-corruption fault the injector can
    apply is flagged by the static metadata lint *before* any decode."""

    @staticmethod
    def _expected_flagged(fault, findings, database):
        """One fault is covered by an unresolvable finding at its address
        or by the containing dump's debug-count-mismatch (deletions, and
        mutations later shadowed by a deletion at the same address)."""
        address = int(fault.detail.split("0x", 1)[1].split(" ", 1)[0], 16)
        if any(
            f.check == "debug-unresolvable" and f.address == address
            for f in findings
        ):
            return True
        owners = [
            dump.qname
            for dump in database.code_dumps
            if dump.entry <= address < dump.limit
        ]
        return any(
            f.check == "debug-count-mismatch" and f.qname in owners
            for f in findings
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_every_corruption_flagged_before_decode(self, fixture, seed):
        from repro.analysis import lint_database

        injector = FaultInjector(2_000_000 + seed)
        database, faults = injector.corrupt_database(
            fixture["database"], entries=8
        )
        assert faults, "seed=%d applied nothing" % seed
        findings = lint_database(database, fixture["program"])
        for fault in faults:
            assert self._expected_flagged(fault, findings, database), (
                "seed=%d fault %r not flagged" % (seed, fault.detail)
            )

    def test_clean_database_not_flagged(self, fixture):
        from repro.analysis import Severity, lint_database

        findings = lint_database(fixture["database"], fixture["program"])
        assert [f for f in findings if f.severity is Severity.ERROR] == []

    def test_pipeline_report_carries_the_findings(self, fixture):
        injector = FaultInjector(99)
        database, faults = injector.corrupt_database(
            fixture["database"], entries=8
        )
        assert faults
        result = fixture["jportal"].analyze_trace(fixture["trace"], database)
        assert result.analysis_report is not None
        assert result.analysis_report.lint.has_errors


class TestFaultSmoke:
    """Fast fixed-seed subset for CI (see the fault-smoke job)."""

    def test_fifty_seed_smoke(self, fixture):
        covered = set()
        for seed in range(50):
            covered |= _fuzz_one_seed(fixture, seed)
        assert covered  # at least one fault applied per smoke run

    def test_smoke_pipeline_identity(self, fixture):
        for seed in (3, 11):
            injector = FaultInjector(seed)
            trace, _faults = injector.mutate_trace(
                fixture["trace"], faults_per_core=2
            )
            serial = fixture["jportal"].analyze_trace(
                trace, fixture["database"]
            )
            parallel = ParallelPipeline(
                fixture["jportal"], max_workers=3
            ).analyze_trace(trace, fixture["database"])
            assert pickle.dumps(parallel.flows) == pickle.dumps(serial.flows)
            _pipeline_invariants(serial, "smoke seed=%d" % seed)
