"""Cross-format suite: the E-Trace frontend through the whole stack.

Pins the tentpole contract from the ISSUE:

* on lossless runs, flows decoded from an E-Trace stream are
  **bit-identical** to flows decoded from a PT stream of the same run
  (both engines: object and array);
* an E-Trace trace round-trips through the ``RPT2`` archive (format
  record first), salvages under byte-level fault injection with the
  same balanced accounting invariant as PT archives, and replays
  through the streaming service;
* losing the format record degrades (segments with foreign tags become
  synthetic loss records), never raises.
"""

import pytest

from repro.core import JPortal
from repro.core.metadata import collect_metadata
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.pt.archive import (
    REC_FORMAT,
    read_archive,
    scan_record_spans,
    write_archive,
)
from repro.pt.buffer import RingBufferConfig
from repro.pt.faults import ARCHIVE_FAULT_KINDS, FaultInjector
from repro.pt.perf import PTConfig, collect

from ..conftest import build_figure2_program

ENGINES = ("object", "array")

#: Archive-fuzz breadth for the cross-format salvage block.
FUZZ_SEEDS = 40


def _config(frontend, capacity=10**9, bandwidth=1e9):
    return PTConfig(
        buffer=RingBufferConfig(
            capacity_bytes=capacity, drain_bandwidth=bandwidth
        ),
        frontend=frontend,
    )


@pytest.fixture(scope="module")
def fixture():
    program = build_figure2_program(iterations=40)
    config = RuntimeConfig(cores=2, quantum=50, jit=JITPolicy(hot_threshold=8))
    runtime = JVMRuntime(program, config)
    runtime.add_thread(name="main")
    for _ in range(2):
        runtime.add_thread("Test", "main", ())
    run = runtime.run()
    return {
        "program": program,
        "run": run,
        "database": collect_metadata(run),
        "pt": collect(run, _config("pt")),
        "etrace": collect(run, _config("etrace")),
        "jportals": {
            engine: JPortal(program, engine=engine) for engine in ENGINES
        },
    }


def _assert_identical(result, baseline, note):
    __tracebackhide__ = True
    assert result.flows == baseline.flows, note
    assert result.anomalies == baseline.anomalies, note
    assert result.anomalies_by_kind == baseline.anomalies_by_kind, note
    assert result.synthetic_holes == baseline.synthetic_holes, note
    for tid, flow in baseline.flows.items():
        other = result.flows[tid]
        assert other.flow.stats == flow.flow.stats, note
        assert other.projection == flow.projection, note


class TestLosslessEquivalence:
    """E-Trace flows == PT flows on lossless runs, both engines."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_flows_bit_identical(self, fixture, engine):
        jportal = fixture["jportals"][engine]
        database = fixture["database"]
        baseline = jportal.analyze_trace(fixture["pt"], database)
        result = jportal.analyze_trace(fixture["etrace"], database)
        _assert_identical(result, baseline, "engine=%s" % engine)

    def test_array_equals_object_on_etrace(self, fixture):
        """The engine-equivalence contract holds for the new frontend."""
        database = fixture["database"]
        baseline = fixture["jportals"]["object"].analyze_trace(
            fixture["etrace"], database
        )
        result = fixture["jportals"]["array"].analyze_trace(
            fixture["etrace"], database
        )
        _assert_identical(result, baseline, "etrace array-vs-object")

    def test_flows_identical_under_equal_loss_policy(self, fixture):
        """Same buffer bytes for both formats: flows may differ (losses
        cut at different packet boundaries) but both must stay total and
        attribute every thread."""
        run = fixture["run"]
        jportal = fixture["jportals"]["array"]
        database = fixture["database"]
        for frontend in ("pt", "etrace"):
            trace = collect(run, _config(frontend, capacity=600, bandwidth=0.1))
            assert trace.bytes_lost > 0
            result = jportal.analyze_trace(trace, database)
            assert set(result.flows) == set(
                jportal.analyze_trace(fixture[frontend], database).flows
            )


class TestArchiveRoundTrip:
    def test_format_record_written_first_and_applied(self, fixture, tmp_path):
        path = tmp_path / "etrace.rpt2"
        report = write_archive(fixture["etrace"], fixture["database"], path)
        assert report.format_records == 1
        spans = scan_record_spans(path.read_bytes())
        assert spans[0].rtype == REC_FORMAT and spans[0].seq == 0
        contents = read_archive(path)
        assert contents.stats.clean
        assert contents.trace_format == "etrace"
        assert contents.to_trace().config.frontend == "etrace"

    def test_pt_archives_carry_no_format_record(self, fixture, tmp_path):
        path = tmp_path / "pt.rpt2"
        report = write_archive(fixture["pt"], fixture["database"], path)
        assert report.format_records == 0
        assert all(
            span.rtype != REC_FORMAT
            for span in scan_record_spans(path.read_bytes())
        )
        assert read_archive(path).trace_format == "pt"

    def test_archive_analysis_matches_direct_analysis(self, fixture, tmp_path):
        path = tmp_path / "etrace.rpt2"
        write_archive(fixture["etrace"], fixture["database"], path)
        jportal = fixture["jportals"]["array"]
        baseline = jportal.analyze_trace(fixture["etrace"], fixture["database"])
        result = jportal.analyze_archive(str(path))
        _assert_identical(result, baseline, "etrace archive round trip")

    def test_missing_format_record_degrades_not_raises(self, fixture, tmp_path):
        """Excise the format record.  Codec registration is process-
        global, so in a process that already imported ``repro.etrace``
        the segment bodies still parse; what the damage costs is the
        declaration (``trace_format`` falls back to ``"pt"``) plus a
        sequence gap with its synthetic loss -- salvage, never an
        exception.  (The fresh-process case is covered below.)"""
        path = tmp_path / "etrace.rpt2"
        write_archive(fixture["etrace"], fixture["database"], path)
        data = path.read_bytes()
        span = scan_record_spans(data)[0]
        assert span.rtype == REC_FORMAT
        path.write_bytes(data[: span.start] + data[span.end:])
        contents = read_archive(path)
        assert contents.trace_format == "pt"  # declaration gone
        assert not contents.stats.clean
        assert contents.stats.sequence_gaps == 1
        assert contents.stats.loss_records_synthesized == 1

    def _read_in_fresh_process(self, path):
        """read_archive in an interpreter that never imported etrace."""
        import json
        import os
        import subprocess
        import sys

        import repro

        code = (
            "import json, sys\n"
            "from repro.pt.archive import read_archive\n"
            "contents = read_archive(sys.argv[1])\n"
            "stats = contents.stats\n"
            "print(json.dumps({\n"
            "    'format': contents.trace_format,\n"
            "    'salvaged': stats.segments_salvaged,\n"
            "    'dropped': stats.segments_dropped,\n"
            "    'losses': stats.loss_records_synthesized,\n"
            "    'balanced': stats.bytes_salvaged + stats.bytes_dropped\n"
            "        + stats.bytes_converted_to_loss == stats.file_size,\n"
            "}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
        proc = subprocess.run(
            [sys.executable, "-c", code, str(path)],
            capture_output=True, text=True, env=env, check=True,
        )
        return json.loads(proc.stdout)

    def test_format_record_registers_codecs_in_fresh_process(
        self, fixture, tmp_path
    ):
        """The whole point of committing the format record first: a
        reader process that never imported the etrace package still
        parses every segment, because the scanner registers the
        frontend's codecs when it hits the record."""
        path = tmp_path / "etrace.rpt2"
        write_archive(fixture["etrace"], fixture["database"], path)
        result = self._read_in_fresh_process(path)
        assert result["format"] == "etrace"
        assert result["dropped"] == 0 and result["salvaged"] > 0
        assert result["balanced"]

    def test_missing_format_record_in_fresh_process_converts_to_loss(
        self, fixture, tmp_path
    ):
        """Without the record (and without a prior etrace import), the
        0x10+ tags are unknown: every segment body is unparseable and
        converts to a synthetic loss record -- balanced, no exception."""
        path = tmp_path / "etrace.rpt2"
        write_archive(fixture["etrace"], fixture["database"], path)
        data = path.read_bytes()
        span = scan_record_spans(data)[0]
        assert span.rtype == REC_FORMAT
        path.write_bytes(data[: span.start] + data[span.end:])
        result = self._read_in_fresh_process(path)
        assert result["format"] == "pt"
        assert result["salvaged"] == 0 and result["dropped"] > 0
        assert result["losses"] >= result["dropped"]
        assert result["balanced"]

    def test_salvage_accounting_under_fault_injection(self, fixture, tmp_path):
        """The byte-accounting invariant holds for E-Trace archives under
        every disk-level mutation the injector produces."""
        path = tmp_path / "etrace.rpt2"
        write_archive(fixture["etrace"], fixture["database"], path)
        pristine = path.read_bytes()
        for seed in range(FUZZ_SEEDS):
            injector = FaultInjector(seed=7_000 + seed)
            mutated, applied = injector.corrupt_archive(
                pristine, kinds=ARCHIVE_FAULT_KINDS, faults=1 + seed % 3
            )
            target = tmp_path / ("fuzz_%d.rpt2" % seed)
            target.write_bytes(mutated)
            contents = read_archive(
                target, snapshot_path=str(path) + ".meta"
            )
            stats = contents.stats
            note = "seed=%d faults=%r" % (seed, [f.kind for f in applied])
            assert stats.file_size == len(mutated), note
            assert (
                stats.bytes_salvaged
                + stats.bytes_dropped
                + stats.bytes_converted_to_loss
                == stats.file_size
            ), note


class TestStreaming:
    def test_stream_finalize_matches_batch(self, fixture, tmp_path):
        """Tail-follow an E-Trace archive as it grows; finalize must be
        bit-identical to batch ``analyze_archive`` of the final file."""
        from repro.stream import StreamDecoder

        from ..stream.conftest import GrowingArchiveSimulator

        path = tmp_path / "etrace_stream.rpt2"
        simulator = GrowingArchiveSimulator(
            fixture["etrace"], fixture["database"], path
        )
        jportal = fixture["jportals"]["array"]
        tenant = StreamDecoder(jportal, str(path), name="etrace")
        while simulator.remaining:
            simulator.step(3)
            tenant.poll()
        simulator.finish()
        streamed = tenant.finalize()
        baseline = jportal.analyze_archive(str(path))
        _assert_identical(
            streamed,
            baseline,
            "etrace stream vs batch (replayed=%s reason=%s)"
            % (tenant.replayed, tenant.replay_reason),
        )
