"""Integration: the offline pipeline over on-disk serialised traces.

Mirrors the paper's deployment: the online collector dumps per-thread
trace files; the offline analyser later reads them back and reconstructs.
"""

from repro.core import JPortal
from repro.core.metadata import collect_metadata
from repro.core.multicore import split_by_thread
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import RuntimeConfig, run_program
from repro.pt.perf import collect
from repro.pt.serialize import dump_bytes, load_bytes, read_stream, write_stream

from ..conftest import build_figure2_program, lossless_config, lossy_config


class TestFileRoundTrip:
    def test_analysis_from_files(self, tmp_path):
        program = build_figure2_program(iterations=120)
        run = run_program(
            program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=8))
        )
        trace = collect(run, lossless_config())
        threads = split_by_thread(trace)

        # Online side: dump one file per thread.
        paths = {}
        for tid, thread_trace in threads.items():
            path = tmp_path / ("thread-%d.rpt" % tid)
            with open(path, "wb") as sink:
                write_stream(thread_trace.stream, sink)
            paths[tid] = path

        # Offline side: read files back and decode/reconstruct manually.
        database = collect_metadata(run)
        jportal = JPortal(program)
        from repro.pt.decoder import PTDecoder

        for tid, path in paths.items():
            with open(path, "rb") as source:
                stream = read_stream(source)
            decoder = PTDecoder(database)
            items = decoder.decode(stream)
            observed = jportal._lift(tid, items, database)
            projection = jportal.projector.project(observed.steps())
            assert projection.path == run.threads[tid].truth

    def test_lossy_trace_survives_serialisation(self, tmp_path):
        program = build_figure2_program(iterations=300)
        run = run_program(
            program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=8))
        )
        trace = collect(run, lossy_config())
        threads = split_by_thread(trace)
        stream = threads[0].stream
        restored = load_bytes(dump_bytes(stream))
        assert restored == stream
        # Loss records came through the file.
        assert any(tag == "loss" for tag, _ in restored) == any(
            tag == "loss" for tag, _ in stream
        )
