"""End-to-end integration tests over the DaCapo-like subjects."""

import pytest

from repro.core import JPortal
from repro.core.recovery import RecoveryConfig
from repro.profiling.accuracy import run_accuracy
from repro.profiling.profiles import ControlFlowProfile
from repro.workloads import build_subject

from ..conftest import lossless_config, lossy_config

# Scaled sizes keeping the suite fast (benchmarks use defaults).
SMALL_SIZE = {
    "avrora": 600,
    "batik": 30,
    "fop": 12,
    "h2": 100,
    "jython": 300,
    "luindex": 50,
    "lusearch": 6,
    "pmd": 12,
    "sunflow": 3,
}

SINGLE_THREADED = ("avrora", "batik", "fop", "jython", "luindex", "sunflow")
MULTI_THREADED = ("h2", "lusearch", "pmd")


_CACHE = {}


def _analyze(name, pt_config, jitter=0):
    key = (name, id(pt_config) if pt_config.buffer.capacity_bytes < 10**9 else "ll", jitter)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    subject = build_subject(name, size=SMALL_SIZE[name])
    from repro.workloads import default_config

    config = default_config()
    config.switch_timestamp_jitter = jitter
    run = subject.run(config)
    jportal = JPortal(
        subject.program, recovery=RecoveryConfig(cost_per_instruction=1.0)
    )
    cached = (subject, run, jportal.analyze_run(run, pt_config))
    _CACHE[key] = cached
    return cached


@pytest.mark.parametrize("name", SINGLE_THREADED)
class TestLosslessSingleThreaded:
    def test_exact_reconstruction(self, name):
        """The headline invariant: a lossless hardware trace reconstructs
        the executed bytecode path exactly, across interpretation, JIT,
        inlining, switches, and exceptions."""
        _subject, run, result = _analyze(name, lossless_config())
        assert result.flow_of(0).reconstructed_nodes() == run.threads[0].truth

    def test_accuracy_metric_reports_perfect(self, name):
        _subject, run, result = _analyze(name, lossless_config())
        accuracy = run_accuracy(run, result)
        assert accuracy.overall == pytest.approx(1.0)


@pytest.mark.parametrize("name", MULTI_THREADED)
class TestLosslessMultiThreaded:
    def test_exact_reconstruction_all_threads(self, name):
        _subject, run, result = _analyze(name, lossless_config())
        for thread in run.threads:
            nodes = result.flow_of(thread.tid).reconstructed_nodes()
            assert nodes == thread.truth

    def test_jitter_degrades_but_stays_high(self, name):
        _subject, run, result = _analyze(name, lossless_config(), jitter=5)
        accuracy = run_accuracy(run, result)
        assert accuracy.overall > 0.9


class TestLossyEndToEnd:
    def test_lossy_accuracy_reasonable(self):
        from repro.pt.perf import calibrate_drain_bandwidth

        subject, run, _ = _analyze("batik", lossless_config())
        bandwidth = calibrate_drain_bandwidth(run, capacity_bytes=1200)
        jportal = JPortal(
            subject.program, recovery=RecoveryConfig(cost_per_instruction=1.0)
        )
        result = jportal.analyze_run(
            run, lossy_config(capacity=1200, bandwidth=bandwidth)
        )
        accuracy = run_accuracy(run, result)
        assert 0 < accuracy.percent_missing_data < 0.8
        assert accuracy.overall > 0.5

    def test_profiles_from_reconstruction_close_to_truth(self):
        subject, run, result = _analyze("luindex", lossless_config())
        truth_profile = ControlFlowProfile.from_truth(run)
        recon_profile = ControlFlowProfile.from_paths(
            subject.program,
            [flow.reconstructed_nodes() for flow in result.flows.values()],
        )
        assert truth_profile.node_counts == recon_profile.node_counts
        assert truth_profile.overall_coverage() == recon_profile.overall_coverage()


class TestReflectiveGap:
    def test_pmd_reconstructs_through_opaque_site(self):
        """With the rule-dispatch site hidden from the ICFG, reconstruction
        must survive via the callback-search fallback (Section 4)."""
        subject = build_subject("pmd", size=SMALL_SIZE["pmd"])
        run = subject.run()
        jportal = JPortal(
            subject.program, opaque_call_sites=subject.opaque_call_sites
        )
        result = jportal.analyze_run(run, lossless_config())
        accuracy = run_accuracy(run, result)
        total_fallbacks = sum(
            flow.projection.callback_fallbacks for flow in result.flows.values()
        )
        assert total_fallbacks > 0
        assert accuracy.overall > 0.8
