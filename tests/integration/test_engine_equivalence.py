"""Engine/backend equivalence suite: the array core is bit-identical.

The regression oracle for the array decode core (fused
:class:`~repro.pt.decoder.PTBatchDecoder` + columnar projection) is the
original object-per-item core, kept as ``engine="object"``.  This suite
pins the contract the ISSUE names: identical ``JPortalResult`` flows and
anomaly stats across (object core x array core) x (serial x thread-pool
x process-pool), on golden traces and on >= 200 fuzzed seeds.

Coverage layout (the full 3x2 matrix per fuzz seed would spawn ~400
process pools, so identity is established transitively instead):

* golden traces (lossless + calibrated-lossy) run the **full** engine x
  backend matrix directly;
* >= 200 fuzz seeds (stream mutations + periodic database corruption)
  compare the two engines on the serial path -- the serial output *is*
  the backend contract, because
* a directed backend-identity block proves serial == thread == process
  for each engine separately on fuzzed traces, which composes with the
  serial cross-engine check to cover the whole matrix.

Cross-engine flow comparison works with plain ``==``:
:class:`~repro.core.observed.ObservedColumns` compares equal to an
:class:`~repro.core.observed.ObservedTrace` with the same content.
"""

import pytest

from repro.core import JPortal, ParallelPipeline
from repro.core.metadata import collect_metadata
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.pt.faults import FaultInjector
from repro.pt.perf import collect

from ..conftest import build_figure2_program, lossless_config, lossy_config

#: Fuzz breadth required by the ISSUE ("-" is the serial cross-engine leg).
FUZZ_SEEDS = 200

ENGINES = ("object", "array")
BACKENDS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def fixture():
    """One deterministic 3-thread run plus both engines' analysers."""
    program = build_figure2_program(iterations=40)
    config = RuntimeConfig(cores=2, quantum=50, jit=JITPolicy(hot_threshold=8))
    runtime = JVMRuntime(program, config)
    runtime.add_thread(name="main")
    for _ in range(2):
        runtime.add_thread("Test", "main", ())
    run = runtime.run()
    return {
        "program": program,
        "run": run,
        "lossless": collect(run, lossless_config()),
        "lossy": collect(run, lossy_config(capacity=600, bandwidth=0.1)),
        "database": collect_metadata(run),
        "jportals": {
            engine: JPortal(program, engine=engine) for engine in ENGINES
        },
    }


def _analyze(jportal, trace, database, backend):
    if backend == "serial":
        return jportal.analyze_trace(trace, database)
    return ParallelPipeline(
        jportal, max_workers=3, backend=backend
    ).analyze_trace(trace, database)


def _assert_identical(result, baseline, note):
    __tracebackhide__ = True
    assert result.flows == baseline.flows, note
    assert result.anomalies == baseline.anomalies, note
    assert result.anomalies_by_kind == baseline.anomalies_by_kind, note
    assert result.synthetic_holes == baseline.synthetic_holes, note
    for tid, flow in baseline.flows.items():
        other = result.flows[tid]
        assert other.flow.stats == flow.flow.stats, note
        assert other.projection == flow.projection, note


class TestGoldenMatrix:
    """Full engine x backend matrix on the golden traces."""

    @pytest.mark.parametrize("trace_name", ("lossless", "lossy"))
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identical_to_object_serial(
        self, fixture, trace_name, engine, backend
    ):
        trace = fixture[trace_name]
        database = fixture["database"]
        baseline = fixture["jportals"]["object"].analyze_trace(trace, database)
        result = _analyze(
            fixture["jportals"][engine], trace, database, backend
        )
        _assert_identical(
            result, baseline, "%s %s/%s" % (trace_name, engine, backend)
        )


class TestFuzzedCrossEngine:
    """>= 200 fuzz seeds: object core == array core on the serial path."""

    def test_two_hundred_seeds_bit_identical(self, fixture):
        database_base = fixture["database"]
        jportals = fixture["jportals"]
        for seed in range(FUZZ_SEEDS):
            injector = FaultInjector(3_000_000 + seed)
            trace, faults = injector.mutate_trace(
                fixture["lossy"], faults_per_core=1 + seed % 3
            )
            database = database_base
            if seed % 5 == 0:
                database, db_faults = injector.corrupt_database(database)
                faults = faults + db_faults
            note = "seed=%d faults=%r" % (seed, [f.kind for f in faults])
            baseline = jportals["object"].analyze_trace(trace, database)
            result = jportals["array"].analyze_trace(trace, database)
            _assert_identical(result, baseline, note)


class TestFuzzedBackendIdentity:
    """Each engine's pooled output equals its own serial output on
    fuzzed traces -- composes with the serial cross-engine fuzz above to
    cover the full (engine x backend) matrix transitively."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_backends_match_serial(self, fixture, engine, backend):
        jportal = fixture["jportals"][engine]
        for seed in (0, 7):
            injector = FaultInjector(4_000_000 + seed)
            trace, _faults = injector.mutate_trace(
                fixture["lossy"], faults_per_core=2
            )
            serial = jportal.analyze_trace(trace, fixture["database"])
            pooled = _analyze(jportal, trace, fixture["database"], backend)
            _assert_identical(
                pooled, serial, "seed=%d %s/%s" % (seed, engine, backend)
            )


class TestObservedCompatibility:
    """The columnar observed trace is a drop-in for the object one."""

    def test_columns_equal_trace_view(self, fixture):
        result = fixture["jportals"]["array"].analyze_trace(
            fixture["lossy"], fixture["database"]
        )
        for flow in result.flows.values():
            columns = flow.observed
            trace_view = columns.to_trace()
            assert columns == trace_view
            assert trace_view == columns
            assert columns.steps() == trace_view.steps()
            assert columns.holes() == trace_view.holes()
            assert [len(s) for s in columns.segments()] == [
                len(s) for s in trace_view.segments()
            ]
