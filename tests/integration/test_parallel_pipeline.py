"""Golden-trace regression suite for the parallel per-thread pipeline.

A fixed, deterministic multi-thread, multi-core run (with real buffer
loss) is the golden fixture: its per-thread streams are serialised and
restored through the on-disk trace format, then analysed by the serial
pipeline and by :class:`ParallelPipeline` at several worker counts.  The
refactor contract is that every configuration produces *byte-identical*
per-thread flows, provenance counts, and projection stats -- so any
change to the decode/project/recover chain that alters results is caught
here regardless of which pipeline ran it.
"""

import pickle

from repro.core import JPortal, ParallelPipeline, ideal_makespan
from repro.core.metadata import collect_metadata
from repro.core.multicore import split_by_thread
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.pt.perf import collect
from repro.pt.serialize import dump_bytes, load_bytes

from ..conftest import build_figure2_program, lossless_config, lossy_config

WORKER_COUNTS = (1, 2, 4)


def _golden_run(threads=3, iterations=90):
    """The golden fixture: deterministic 3-thread run on 2 shared cores."""
    program = build_figure2_program(iterations=iterations)
    config = RuntimeConfig(cores=2, quantum=50, jit=JITPolicy(hot_threshold=8))
    runtime = JVMRuntime(program, config)
    runtime.add_thread(name="main")
    for _ in range(threads - 1):
        runtime.add_thread("Test", "main", ())
    return program, runtime.run()


def _analyses(pt_config):
    program, run = _golden_run()
    trace = collect(run, pt_config)
    database = collect_metadata(run)
    jportal = JPortal(program)
    serial = jportal.analyze_trace(trace, database)
    parallel = {
        workers: ParallelPipeline(jportal, max_workers=workers).analyze_trace(
            trace, database
        )
        for workers in WORKER_COUNTS
    }
    return run, trace, serial, parallel


class TestGoldenFixtureStability:
    def test_streams_roundtrip_through_disk_format(self):
        """The fixture's per-thread streams survive serialisation exactly."""
        _program, run = _golden_run()
        trace = collect(run, lossy_config(capacity=600, bandwidth=0.1))
        threads = split_by_thread(trace)
        assert len(threads) == 3
        for thread_trace in threads.values():
            restored = load_bytes(dump_bytes(thread_trace.stream))
            assert restored == thread_trace.stream

    def test_fixture_is_deterministic(self):
        _p1, run1 = _golden_run()
        _p2, run2 = _golden_run()
        for t1, t2 in zip(run1.threads, run2.threads):
            assert t1.truth == t2.truth


class TestSerialParallelEquivalence:
    def test_lossy_flows_byte_identical_across_worker_counts(self):
        _run, _trace, serial, parallel = _analyses(
            lossy_config(capacity=600, bandwidth=0.1)
        )
        golden = pickle.dumps(serial.flows)
        assert serial.loss_fraction > 0  # the hard case: holes + recovery
        for workers, result in parallel.items():
            assert result.flows == serial.flows, "workers=%d" % workers
            assert pickle.dumps(result.flows) == golden, "workers=%d" % workers
            assert result.anomalies == serial.anomalies

    def test_lossless_parallel_matches_ground_truth(self):
        run, _trace, serial, parallel = _analyses(lossless_config())
        for workers, result in parallel.items():
            for tid in sorted(result.flows):
                assert (
                    result.flow_of(tid).reconstructed_nodes()
                    == run.threads[tid].truth
                ), "workers=%d tid=%d" % (workers, tid)
            assert result.flows == serial.flows

    def test_provenance_and_projection_stats_identical(self):
        _run, _trace, serial, parallel = _analyses(
            lossy_config(capacity=600, bandwidth=0.1)
        )
        for workers, result in parallel.items():
            for tid, flow in serial.flows.items():
                other = result.flow_of(tid)
                assert other.entry_counts() == flow.entry_counts()
                assert other.projection == flow.projection
                assert other.flow.stats == flow.flow.stats
                assert other.observed.holes() == flow.observed.holes()

    def test_workers_beyond_thread_count_are_harmless(self):
        program, run = _golden_run()
        trace = collect(run, lossless_config())
        database = collect_metadata(run)
        jportal = JPortal(program)
        serial = jportal.analyze_trace(trace, database)
        wide = ParallelPipeline(jportal, max_workers=16).analyze_trace(
            trace, database
        )
        assert wide.flows == serial.flows

    def test_analyze_trace_max_workers_delegates(self):
        """`JPortal.analyze_trace(max_workers=N)` is the pool entry point."""
        program, run = _golden_run()
        trace = collect(run, lossless_config())
        database = collect_metadata(run)
        jportal = JPortal(program)
        serial = jportal.analyze_trace(trace, database)
        pooled = jportal.analyze_trace(trace, database, max_workers=4)
        assert pooled.flows == serial.flows


class TestPerThreadMetrics:
    def test_breakdowns_cover_every_thread(self):
        _run, trace, serial, parallel = _analyses(
            lossy_config(capacity=600, bandwidth=0.1)
        )
        threads = split_by_thread(trace)
        for result in [serial, *parallel.values()]:
            assert sorted(result.timings.per_thread) == sorted(threads)
            for tid, breakdown in result.timings.per_thread.items():
                assert breakdown.tid == tid
                assert breakdown.decode_seconds > 0
                assert breakdown.reconstruct_seconds >= 0
                assert breakdown.recovery_seconds >= 0
                assert breakdown.holes == len(
                    result.flow_of(tid).observed.holes()
                )
                assert breakdown.frontier_peak >= 1

    def test_aggregates_are_sums_of_per_thread_phases(self):
        _run, _trace, serial, parallel = _analyses(lossless_config())
        for result in [serial, *parallel.values()]:
            timings = result.timings
            for phase in ("decode", "reconstruct", "recovery"):
                aggregate = getattr(timings, phase + "_seconds")
                split = sum(
                    getattr(breakdown, phase + "_seconds")
                    for breakdown in timings.per_thread.values()
                )
                assert abs(aggregate - split) < 1e-9
            assert timings.wall_seconds > 0
            assert timings.critical_path_seconds <= timings.total_seconds + 1e-9

    def test_registry_counts_match_stream_contents(self):
        _run, trace, serial, _parallel = _analyses(lossless_config())
        threads = split_by_thread(trace)
        metrics = serial.metrics
        for tid, thread_trace in threads.items():
            assert (
                metrics.counter("decode.packets", tid=tid)
                == thread_trace.packet_count()
            )
        assert metrics.counter("decode.packets") == trace.packet_count()
        assert metrics.counter("decode.anomalies") == serial.anomalies
        assert metrics.maximum("project.frontier_peak") >= 1

    def test_ideal_makespan_monotone_in_workers(self):
        _run, _trace, serial, _parallel = _analyses(lossless_config())
        durations = [
            breakdown.total_seconds
            for breakdown in serial.timings.per_thread.values()
        ]
        spans = [ideal_makespan(durations, workers) for workers in (1, 2, 4)]
        assert spans[0] >= spans[1] >= spans[2]
        assert abs(spans[0] - sum(durations)) < 1e-9
        assert abs(spans[2] - max(durations)) < 1e-9  # 4 workers, 3 threads
