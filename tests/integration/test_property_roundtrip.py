"""Property-based whole-pipeline tests over generated programs.

The central invariant: for ANY generated program, under ANY tiering
policy, a lossless PT trace decodes and reconstructs to exactly the
executed bytecode path.  Lossy variants must degrade gracefully: the
decoded portion stays correct and every reconstructed transition is
ICFG-feasible.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JPortal
from repro.core.metadata import collect_metadata
from repro.core.multicore import split_by_thread
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.pt.decoder import PTDecoder
from repro.pt.encoder import PTEncoder
from repro.pt.perf import collect
from repro.workloads.generator import GeneratorConfig, generate_program

from ..conftest import lossless_config, lossy_config


def _run(program, threshold, cores=1, inlining=True):
    config = RuntimeConfig(
        cores=cores,
        jit=JITPolicy(hot_threshold=threshold, enable_inlining=inlining),
        max_steps=2_000_000,
    )
    runtime = JVMRuntime(program, config)
    runtime.add_thread(name="main")
    return runtime.run()


class TestLosslessExactness:
    @given(st.integers(0, 10_000), st.sampled_from([1, 3, 10**9]))
    @settings(max_examples=12, deadline=None)
    def test_reconstruction_equals_truth(self, seed, threshold):
        program = generate_program(seed)
        run = _run(program, threshold)
        result = JPortal(program).analyze_run(run, lossless_config())
        assert result.flow_of(0).reconstructed_nodes() == run.threads[0].truth

    @given(st.integers(0, 5_000))
    @settings(max_examples=6, deadline=None)
    def test_inlining_invisible_to_reconstruction(self, seed):
        config = GeneratorConfig(methods=5, call_probability=0.8)
        program = generate_program(seed, config)
        with_inline = _run(program, threshold=2, inlining=True)
        without = _run(program, threshold=2, inlining=False)
        assert with_inline.threads[0].truth == without.threads[0].truth
        for run in (with_inline, without):
            result = JPortal(program).analyze_run(run, lossless_config())
            assert (
                result.flow_of(0).reconstructed_nodes() == run.threads[0].truth
            )


class TestLossyGracefulDegradation:
    @given(st.integers(0, 2_000))
    @settings(max_examples=6, deadline=None)
    def test_recovered_flow_is_icfg_feasible(self, seed):
        config = GeneratorConfig(methods=4, max_depth=4)
        program = generate_program(seed, config)
        run = _run(program, threshold=3)
        jportal = JPortal(program)
        result = jportal.analyze_run(run, lossy_config(capacity=700, bandwidth=0.3))
        icfg = jportal.icfg
        flow = result.flow_of(0)
        entries = flow.flow.entries
        for (left, lp), (right, rp) in zip(entries, entries[1:]):
            if left is None or right is None:
                continue
            if lp == "decoded" and rp == "decoded":
                # Within one decoded segment transitions are feasible;
                # across holes they need not be (that's what holes mean),
                # so only check pairs not separated by recovery output.
                continue
            if "recovered" in (lp, rp) or "fallback" in (lp, rp):
                successors = {dst for dst, _k in icfg.successors(left)}
                if rp == lp == "recovered" or (lp, rp) == ("fallback", "fallback"):
                    assert right in successors


class TestEncoderDecoderRoundtrip:
    @given(st.integers(0, 5_000))
    @settings(max_examples=8, deadline=None)
    def test_packet_counts_conserve_events(self, seed):
        """Every TIP event becomes exactly one TIP packet; every TNT bit
        is carried by exactly one TNT packet bit."""
        from repro.jvm.machine import TipEvent, TntEvent

        program = generate_program(seed)
        run = _run(program, threshold=3)
        events = run.core_events[0]
        tips = sum(1 for e in events if isinstance(e, TipEvent))
        tnts = sum(1 for e in events if isinstance(e, TntEvent))
        encoder = PTEncoder()
        encoder.encode(events)
        assert encoder.stats.tips == tips
        assert encoder.stats.tnt_bits == tnts

    @given(st.integers(0, 5_000))
    @settings(max_examples=6, deadline=None)
    def test_decoder_consumes_every_walked_step(self, seed):
        """Lossless decode must walk exactly the compiled steps executed
        and dispatch exactly the interpreted steps executed."""
        program = generate_program(seed)
        run = _run(program, threshold=3)
        trace = collect(run, lossless_config())
        threads = split_by_thread(trace)
        database = collect_metadata(run)
        decoder = PTDecoder(database)
        from repro.pt.decoder import InterpDispatch

        items = decoder.decode(threads[0].stream)
        assert decoder.stats.walked_instructions == run.counters["steps_compiled"]
        dispatches = sum(1 for item in items if isinstance(item, InterpDispatch))
        assert dispatches == run.counters["steps_interp"]
        assert decoder.stats.anomalies == 0
