"""Property-based whole-pipeline tests over generated programs.

The central invariant: for ANY generated program, under ANY tiering
policy, a lossless PT trace decodes and reconstructs to exactly the
executed bytecode path.  Lossy variants must degrade gracefully: the
decoded portion stays correct and every reconstructed transition is
ICFG-feasible.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JPortal
from repro.core.metadata import collect_metadata
from repro.core.multicore import split_by_thread
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.pt.decoder import PTDecoder
from repro.pt.encoder import PTEncoder
from repro.pt.perf import collect
from repro.workloads.generator import GeneratorConfig, generate_program

from ..conftest import lossless_config, lossy_config


def _run(program, threshold, cores=1, inlining=True):
    config = RuntimeConfig(
        cores=cores,
        jit=JITPolicy(hot_threshold=threshold, enable_inlining=inlining),
        max_steps=2_000_000,
    )
    runtime = JVMRuntime(program, config)
    runtime.add_thread(name="main")
    return runtime.run()


class TestLosslessExactness:
    @given(st.integers(0, 10_000), st.sampled_from([1, 3, 10**9]))
    @settings(max_examples=12, deadline=None)
    def test_reconstruction_equals_truth(self, seed, threshold):
        program = generate_program(seed)
        run = _run(program, threshold)
        result = JPortal(program).analyze_run(run, lossless_config())
        assert result.flow_of(0).reconstructed_nodes() == run.threads[0].truth

    @given(st.integers(0, 5_000))
    @settings(max_examples=6, deadline=None)
    def test_inlining_invisible_to_reconstruction(self, seed):
        config = GeneratorConfig(methods=5, call_probability=0.8)
        program = generate_program(seed, config)
        with_inline = _run(program, threshold=2, inlining=True)
        without = _run(program, threshold=2, inlining=False)
        assert with_inline.threads[0].truth == without.threads[0].truth
        for run in (with_inline, without):
            result = JPortal(program).analyze_run(run, lossless_config())
            assert (
                result.flow_of(0).reconstructed_nodes() == run.threads[0].truth
            )


class TestLossyGracefulDegradation:
    @given(st.integers(0, 2_000))
    @settings(max_examples=6, deadline=None)
    def test_recovered_flow_is_icfg_feasible(self, seed):
        config = GeneratorConfig(methods=4, max_depth=4)
        program = generate_program(seed, config)
        run = _run(program, threshold=3)
        jportal = JPortal(program)
        result = jportal.analyze_run(run, lossy_config(capacity=700, bandwidth=0.3))
        icfg = jportal.icfg
        flow = result.flow_of(0)
        entries = flow.flow.entries
        for (left, lp), (right, rp) in zip(entries, entries[1:]):
            if left is None or right is None:
                continue
            if lp == "decoded" and rp == "decoded":
                # Within one decoded segment transitions are feasible;
                # across holes they need not be (that's what holes mean),
                # so only check pairs not separated by recovery output.
                continue
            if "recovered" in (lp, rp) or "fallback" in (lp, rp):
                successors = {dst for dst, _k in icfg.successors(left)}
                if rp == lp == "recovered" or (lp, rp) == ("fallback", "fallback"):
                    assert right in successors


class TestMultiThreadSplitRoundtrip:
    """encode -> split_by_thread -> decode conservation for seeded random
    programs running several threads across shared cores."""

    def _multithread_run(self, seed, thread_count, cores=2):
        program = generate_program(seed)
        config = RuntimeConfig(
            cores=cores,
            jit=JITPolicy(hot_threshold=3),
            max_steps=2_000_000,
        )
        runtime = JVMRuntime(program, config)
        for index in range(thread_count):
            runtime.add_thread(name="t%d" % index)
        return program, runtime.run()

    @given(st.integers(0, 5_000), st.integers(2, 4))
    @settings(max_examples=6, deadline=None)
    def test_every_packet_lands_in_exactly_one_stream(self, seed, thread_count):
        _program, run = self._multithread_run(seed, thread_count)
        trace = collect(run, lossless_config())
        threads = split_by_thread(trace)
        # Conservation by identity: the same packet objects, no duplicates,
        # none dropped, each in exactly one per-thread stream.
        original = sorted(
            id(packet) for core in trace.cores for packet in core.packets
        )
        assigned = sorted(
            id(item)
            for thread in threads.values()
            for tag, item in thread.stream
            if tag == "packet"
        )
        assert assigned == original
        assert sum(t.packet_count() for t in threads.values()) == trace.packet_count()

    @given(st.integers(0, 5_000), st.integers(2, 3))
    @settings(max_examples=6, deadline=None)
    def test_loss_records_conserved_and_streams_tsc_ordered(
        self, seed, thread_count
    ):
        _program, run = self._multithread_run(seed, thread_count)
        trace = collect(run, lossy_config(capacity=700, bandwidth=0.3))
        threads = split_by_thread(trace)
        total_losses = sum(len(core.losses) for core in trace.cores)
        assert sum(t.loss_count() for t in threads.values()) == total_losses
        for thread in threads.values():
            timestamps = [
                item.tsc if tag == "packet" else item.start_tsc
                for tag, item in thread.stream
            ]
            assert timestamps == sorted(timestamps)

    @given(st.integers(0, 5_000), st.integers(2, 3))
    @settings(max_examples=4, deadline=None)
    def test_split_streams_decode_cleanly_when_lossless(self, seed, thread_count):
        """With exact sideband (no jitter), each reassembled stream decodes
        without anomalies and the walked/dispatched totals across threads
        conserve the run's executed step counts."""
        _program, run = self._multithread_run(seed, thread_count)
        trace = collect(run, lossless_config())
        threads = split_by_thread(trace)
        database = collect_metadata(run)
        from repro.pt.decoder import InterpDispatch

        walked = dispatched = 0
        for tid in sorted(threads):
            decoder = PTDecoder(database)
            items = decoder.decode(threads[tid].stream)
            assert decoder.stats.anomalies == 0
            walked += decoder.stats.walked_instructions
            dispatched += sum(
                1 for item in items if isinstance(item, InterpDispatch)
            )
        assert walked == run.counters["steps_compiled"]
        assert dispatched == run.counters["steps_interp"]


class TestEncoderDecoderRoundtrip:
    @given(st.integers(0, 5_000))
    @settings(max_examples=8, deadline=None)
    def test_packet_counts_conserve_events(self, seed):
        """Every TIP event becomes exactly one TIP packet; every TNT bit
        is carried by exactly one TNT packet bit."""
        from repro.jvm.machine import TipEvent, TntEvent

        program = generate_program(seed)
        run = _run(program, threshold=3)
        events = run.core_events[0]
        tips = sum(1 for e in events if isinstance(e, TipEvent))
        tnts = sum(1 for e in events if isinstance(e, TntEvent))
        encoder = PTEncoder()
        encoder.encode(events)
        assert encoder.stats.tips == tips
        assert encoder.stats.tnt_bits == tnts

    @given(st.integers(0, 5_000))
    @settings(max_examples=6, deadline=None)
    def test_decoder_consumes_every_walked_step(self, seed):
        """Lossless decode must walk exactly the compiled steps executed
        and dispatch exactly the interpreted steps executed."""
        program = generate_program(seed)
        run = _run(program, threshold=3)
        trace = collect(run, lossless_config())
        threads = split_by_thread(trace)
        database = collect_metadata(run)
        decoder = PTDecoder(database)
        from repro.pt.decoder import InterpDispatch

        items = decoder.decode(threads[0].stream)
        assert decoder.stats.walked_instructions == run.counters["steps_compiled"]
        dispatches = sum(1 for item in items if isinstance(item, InterpDispatch))
        assert dispatches == run.counters["steps_interp"]
        assert decoder.stats.anomalies == 0
