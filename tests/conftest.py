"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core import JPortal
from repro.jvm.assembler import MethodAssembler
from repro.jvm.jit import JITPolicy
from repro.jvm.model import JClass, JProgram
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.jvm.verifier import verify_program
from repro.pt.buffer import RingBufferConfig
from repro.pt.perf import PTConfig

#: A buffer so large that nothing is ever lost.
LOSSLESS = PTConfig(
    buffer=RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1e9)
)


def lossless_config() -> PTConfig:
    return PTConfig(
        buffer=RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1e9)
    )


def lossy_config(capacity: int = 900, bandwidth: float = 0.35) -> PTConfig:
    return PTConfig(
        buffer=RingBufferConfig(capacity_bytes=capacity, drain_bandwidth=bandwidth)
    )


def build_figure2_program(iterations: int = 50) -> JProgram:
    """The paper's Figure 2 example: ``Test.fun`` driven by a loop.

    ``fun(a, b)``: if a then b+1 else b-2; return (b % 2 == 0).
    """
    fun = MethodAssembler("Test", "fun", arg_count=2, returns_value=True)
    fun.load(0).ifeq("else_")
    fun.load(1).const(1).iadd().store(1).goto("join")
    fun.label("else_")
    fun.load(1).const(2).isub().store(1)
    fun.label("join")
    fun.load(1).const(2).irem().ifne("false_")
    fun.const(1).ireturn()
    fun.label("false_")
    fun.const(0).ireturn()

    main = MethodAssembler("Test", "main", arg_count=0, returns_value=True)
    main.const(0).store(0)
    main.const(0).store(1)
    main.label("head")
    main.load(0).const(iterations).if_icmpge("done")
    main.load(0).const(2).irem()
    main.load(0)
    main.invokestatic("Test", "fun", 2, True)
    main.load(1).iadd().store(1)
    main.iinc(0, 1).goto("head")
    main.label("done")
    main.load(1).ireturn()

    cls = JClass("Test")
    cls.add_method(fun.build())
    cls.add_method(main.build())
    program = JProgram("figure2")
    program.add_class(cls)
    program.set_entry("Test", "main")
    verify_program(program)
    return program


def run_program_traced(
    program: JProgram,
    cores: int = 1,
    hot_threshold: int = 10,
    inlining: bool = True,
    **config_overrides,
):
    """Run *program*'s entry method under a deterministic config."""
    config = RuntimeConfig(
        cores=cores,
        jit=JITPolicy(hot_threshold=hot_threshold, enable_inlining=inlining),
    )
    for key, value in config_overrides.items():
        setattr(config, key, value)
    runtime = JVMRuntime(program, config)
    runtime.add_thread(name="main")
    return runtime.run()


def analyze_lossless(program: JProgram, run):
    """Full JPortal analysis with a lossless buffer."""
    return JPortal(program).analyze_run(run, lossless_config())


@pytest.fixture
def figure2():
    return build_figure2_program()
