"""Property suite: stream-finalize == batch ``analyze_archive``, always.

The correctness contract of :mod:`repro.stream` is bit-identity with the
batch pipeline on the same final file.  200 seeded schedules vary the
writer's pacing, the reader's poll cadence, the trace flavour (lossless
vs calibrated-lossy), the finalize backend, and the crash point (clean
stop between records, torn mid-record stop, or a proper seal), and every
one must finalize to exactly the batch result -- flows, anomaly
taxonomy, synthetic holes, projection and recovery stats.

A separate block pins the *fast path*: on a dump-free (interpreted-only)
tenant with a clean seal, the incremental decoder must never fall back
to batch replay, and must still be bit-identical.

``TestTailReaderPending`` covers the satellite fix directly: an
unsealed, growing archive's incomplete tail means "more data coming"
(no salvage event, bytes stay pending), while the same bytes at true
end-of-file degrade exactly like the batch reader's torn-record salvage.
"""

from __future__ import annotations

import hashlib
import os
import random

from repro.pt.archive import ArchiveTailReader, read_archive, write_archive
from repro.stream import StreamDecoder

from .conftest import (
    SEGMENT_PACKETS,
    GrowingArchiveSimulator,
    assert_results_identical,
)

#: Seed breadth the ISSUE names.
PROPERTY_SEEDS = 200


def _stream_one_seed(fixture, tmp_path, seed, batch_cache):
    rng = random.Random(9_000_000 + seed)
    flavour = "lossy" if seed % 2 else "lossless"
    crash_clean = seed % 10 == 7
    crash_torn = seed % 10 == 3
    path = tmp_path / ("archive_%d.rpt2" % seed)
    simulator = GrowingArchiveSimulator(
        fixture[flavour], fixture["database"], path
    )
    jportal = fixture["jportal"]
    tenant = StreamDecoder(jportal, str(path), name="seed%d" % seed)
    crash_point = None
    if crash_clean or crash_torn:
        crash_point = rng.randrange(1, max(simulator.remaining, 2))
    committed = 0
    while simulator.remaining:
        committed += simulator.step(rng.randrange(1, 6))
        if crash_point is not None and committed >= crash_point:
            break
        if rng.random() < 0.7:
            tenant.poll()
    if crash_point is None:
        simulator.finish()
    elif crash_torn:
        simulator.crash_mid_record()
    else:
        simulator.crash()
    tenant.poll()
    if seed % 50 == 10:
        streamed = tenant.finalize(max_workers=2, backend="process")
    else:
        streamed = tenant.finalize()
    final_bytes = open(path, "rb").read()
    digest = hashlib.sha1(final_bytes).hexdigest()
    baseline = batch_cache.get(digest)
    if baseline is None:
        baseline = batch_cache[digest] = jportal.analyze_archive(str(path))
    note = "seed=%d flavour=%s crash=%r committed=%d replayed=%s (%s)" % (
        seed, flavour, crash_point, committed, tenant.replayed,
        tenant.replay_reason,
    )
    assert_results_identical(streamed, baseline, note)
    os.unlink(path)
    meta = str(path) + ".meta"
    if os.path.exists(meta):
        os.unlink(meta)


class TestStreamProperty:
    """200 seeds x (pacing, flavour, crash point, backend) identity."""

    def test_two_hundred_seeds_finalize_equals_batch(
        self, stream_fixture, tmp_path
    ):
        batch_cache = {}
        for seed in range(PROPERTY_SEEDS):
            _stream_one_seed(stream_fixture, tmp_path, seed, batch_cache)
        # Crash-free schedules all seal to the same file; crashed ones
        # vary by crash point.  Sanity-check the cache saw both shapes.
        assert len(batch_cache) > 2

    def test_interpreted_tenant_never_replays(self, stream_fixture, tmp_path):
        """Fast-path pin: no code dumps, clean seal -> no batch replay,
        bounded tail memory, and still bit-identical."""
        jportal = stream_fixture["interp_jportal"]
        baseline = None
        for seed in range(20):
            rng = random.Random(5_000_000 + seed)
            path = tmp_path / ("interp_%d.rpt2" % seed)
            simulator = GrowingArchiveSimulator(
                stream_fixture["interp_trace"],
                stream_fixture["interp_database"],
                path,
            )
            tenant = StreamDecoder(jportal, str(path), name="interp%d" % seed)
            while simulator.remaining:
                simulator.step(rng.randrange(1, 5))
                if rng.random() < 0.8:
                    tenant.poll()
            simulator.finish()
            tenant.poll()
            assert tenant.buffered_bytes() == 0, "clean tail fully consumed"
            streamed = tenant.finalize()
            note = "interp seed=%d (%s)" % (seed, tenant.replay_reason)
            assert tenant.replayed is False, note
            if baseline is None:
                baseline = jportal.analyze_archive(str(path))
            assert_results_identical(streamed, baseline, note)
            os.unlink(path)
            os.unlink(str(path) + ".meta")


class TestTailReaderPending:
    """Satellite: unsealed-tail reads distinguish "more data coming"
    from "torn file"."""

    def _clean_archive(self, fixture, tmp_path, name):
        path = tmp_path / name
        write_archive(
            fixture["lossless"], fixture["database"], path,
            segment_packets=SEGMENT_PACKETS,
        )
        return str(path), open(path, "rb").read()

    def test_incomplete_tail_stays_pending_until_commit(
        self, stream_fixture, tmp_path
    ):
        path, data = self._clean_archive(stream_fixture, tmp_path, "pend.rpt2")
        # Re-grow the file byte by byte around a record boundary: the
        # reader must never log a salvage event for an in-flight record.
        os.unlink(path)
        reader = ArchiveTailReader(path)
        assert reader.poll() == []  # no file yet: not an error
        written = 0
        records_seen = 0
        with open(path, "wb") as sink:
            for cut in range(0, len(data), 37):
                sink.write(data[cut:cut + 37])
                sink.flush()
                written = min(cut + 37, len(data))
                records_seen += len(reader.poll())
                assert reader.stats.events == [], (
                    "pending tail at %d bytes misread as damage" % written
                )
        records_seen += len(reader.poll())
        contents = reader.finalize()
        assert contents.stats.sealed
        assert contents.stats.events == []
        assert reader.buffered_bytes() == 0
        batch = read_archive(path)
        assert contents.stats == batch.stats
        assert records_seen > 0

    def test_truncated_tail_degrades_only_at_finalize(
        self, stream_fixture, tmp_path
    ):
        path, data = self._clean_archive(stream_fixture, tmp_path, "torn.rpt2")
        torn = data[: len(data) - 11]  # mid-record: torn tail
        os.unlink(path)
        reader = ArchiveTailReader(path)
        rng = random.Random(42)
        with open(path, "wb") as sink:
            position = 0
            while position < len(torn):
                step = rng.randrange(1, 101)
                sink.write(torn[position:position + step])
                sink.flush()
                position += step
                reader.poll()
                # While the file may still grow, the incomplete record
                # is pending -- never converted to loss.
                assert reader.stats.events == []
        contents = reader.finalize()
        # Only end-of-file applies the batch torn-tail semantics, and
        # then exactly: stats and event order equal a one-shot read.
        batch = read_archive(path)
        assert contents.stats == batch.stats
        assert [e.kind for e in contents.stats.events] == [
            e.kind for e in batch.stats.events
        ]
        assert not contents.stats.sealed

    def test_shrunk_file_flags_dirty_and_finalize_rereads(
        self, stream_fixture, tmp_path
    ):
        path, data = self._clean_archive(stream_fixture, tmp_path, "shrink.rpt2")
        reader = ArchiveTailReader(path)
        reader.poll()
        with open(path, "r+b") as sink:
            sink.truncate(len(data) // 2)
        assert reader.poll() == []
        assert reader.dirty
        contents = reader.finalize()
        batch = read_archive(path)
        assert contents.stats == batch.stats
