"""Resilience suite: kill/restart, quarantine, backpressure, watchdog.

The fault-tolerance contract extends the streaming bit-identity
guarantee to the *process* level:

* **kill/restart** -- a tenant checkpointed into its ``JPSC`` sidecar
  and rebuilt in a fresh process (here: a fresh decoder) continues
  tail-follow where the old one stood, and ``finalize()`` is still
  bit-identical to batch ``analyze_archive``.  200 seeded schedules
  vary pacing, flavour, kill point, transient I/O faults, checkpoint
  corruption, and writer crash;

* **checkpoint damage** -- every damaged sidecar (missing, truncated,
  bit-rotted, version-skewed, stale) reads as a cold start plus one
  ``stream.checkpoint.<kind>`` counter, never an exception;

* **quarantine** -- the HEALTHY -> DEGRADED -> QUARANTINED machine
  retries transient failures under a capped, deterministically
  jittered backoff, excludes quarantined tenants from rounds, and
  still finalizes them correctly via batch replay;

* **backpressure** -- a tenant whose watermark stalls (entries that
  can never release) or whose raw tail balloons is shed at its cap:
  memory stays bounded, finalize stays correct;

* **watchdog** -- a poll that outlives the deadline is abandoned
  without blocking the round or poisoning the result.
"""

from __future__ import annotations

import hashlib
import os
import random
import time

from repro.pt import archive as archive_mod
from repro.pt.archive import ArchiveWriter, iter_archive_events, write_archive
from repro.pt.faults import FaultInjector
from repro.stream import (
    BackpressureConfig,
    ResilienceConfig,
    RetryPolicy,
    StreamDecoder,
    StreamSupervisor,
    TenantHealth,
    checkpoint_path_for,
)
from repro.stream import resilience
from repro.stream.resilience import TenantSupervision, load_checkpoint

from .conftest import (
    SEGMENT_PACKETS,
    GrowingArchiveSimulator,
    assert_results_identical,
)

#: Seed breadth the ISSUE names for the kill/restart property block.
RESILIENCE_SEEDS = 200


# ------------------------------------------------------------ shared helpers
class _Clock:
    """Injectable monotonic clock for the supervisor's backoff logic."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class _AlwaysFail:
    """I/O hooks whose every read raises a transient ``OSError``."""

    def __init__(self):
        self.calls = 0

    def before_read(self, reader) -> None:
        import errno

        self.calls += 1
        raise OSError(errno.EIO, "persistent injected I/O failure")

    def read_limit(self, available):
        return None


class _StallHooks:
    """I/O hooks that sleep before every read (hung-media model)."""

    def __init__(self, seconds: float):
        self.seconds = seconds
        self.calls = 0

    def before_read(self, reader) -> None:
        self.calls += 1
        time.sleep(self.seconds)

    def read_limit(self, available):
        return None


def _sealed_archive(fixture, tmp_path, name, flavour="lossless"):
    path = tmp_path / name
    write_archive(
        fixture[flavour], fixture["database"], path,
        segment_packets=SEGMENT_PACKETS,
    )
    return str(path)


# ------------------------------------------------------- checkpoint framing
class TestCheckpointCodec:
    """The JPSC sidecar: atomic write, gated load, counted damage."""

    STATE = {"polls": 3, "pending": [1, 2, 3], "name": "codec"}

    def _written(self, tmp_path):
        path = str(tmp_path / "codec.jpsc")
        resilience.write_checkpoint_file(path, dict(self.STATE))
        return path

    def test_roundtrip(self, tmp_path):
        path = self._written(tmp_path)
        state, anomaly = load_checkpoint(path)
        assert anomaly is None
        assert state == self.STATE

    def test_missing_sidecar(self, tmp_path):
        state, anomaly = load_checkpoint(str(tmp_path / "absent.jpsc"))
        assert state is None
        assert anomaly == resilience.ANOMALY_MISSING

    def test_truncation_is_corrupt(self, tmp_path):
        path = self._written(tmp_path)
        blob = open(path, "rb").read()
        for cut in (0, 3, resilience._HEADER.size, len(blob) - 1):
            with open(path, "wb") as sink:
                sink.write(blob[:cut])
            state, anomaly = load_checkpoint(path)
            assert state is None, cut
            assert anomaly == resilience.ANOMALY_CORRUPT, cut

    def test_payload_bit_rot_is_corrupt(self, tmp_path):
        path = self._written(tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[resilience._HEADER.size + 2] ^= 0x10
        with open(path, "wb") as sink:
            sink.write(bytes(blob))
        state, anomaly = load_checkpoint(path)
        assert state is None
        assert anomaly == resilience.ANOMALY_CORRUPT

    def test_bad_magic_is_corrupt(self, tmp_path):
        path = self._written(tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[:4] = b"NOPE"
        with open(path, "wb") as sink:
            sink.write(bytes(blob))
        assert load_checkpoint(path) == (None, resilience.ANOMALY_CORRUPT)

    def test_version_skew(self, tmp_path):
        path = self._written(tmp_path)
        blob = open(path, "rb").read()
        magic, version, digest, length = resilience._HEADER.unpack_from(blob)
        skewed = resilience._HEADER.pack(
            magic, version + 1, digest, length
        ) + blob[resilience._HEADER.size:]
        with open(path, "wb") as sink:
            sink.write(skewed)
        assert load_checkpoint(path) == (None, resilience.ANOMALY_VERSION_SKEW)

    def test_every_injected_damage_loads_as_anomaly(self, tmp_path):
        for seed in range(30):
            path = str(tmp_path / ("rot_%d.jpsc" % seed))
            resilience.write_checkpoint_file(path, dict(self.STATE, seed=seed))
            fault = FaultInjector(seed=seed).corrupt_checkpoint(path)
            assert fault is not None
            state, anomaly = load_checkpoint(path)
            assert state is None, (seed, fault.detail)
            assert anomaly in (
                resilience.ANOMALY_MISSING,
                resilience.ANOMALY_CORRUPT,
                resilience.ANOMALY_VERSION_SKEW,
            ), (seed, fault.detail, anomaly)

    def test_store_failure_counts_not_raises(self, stream_fixture, tmp_path):
        path = _sealed_archive(stream_fixture, tmp_path, "store.rpt2")
        tenant = StreamDecoder(stream_fixture["jportal"], path, name="store")
        tenant.poll()
        target = str(tmp_path / "no" / "such" / "dir" / "x.jpsc")
        assert tenant.write_checkpoint(target) is None
        assert tenant.metrics.counter(
            "stream.checkpoint." + resilience.ANOMALY_STORE_FAILED
        ) == 1
        assert tenant.write_checkpoint(str(tmp_path / "ok.jpsc")) > 0
        assert tenant.metrics.counter("stream.checkpoint.writes") == 1


# ------------------------------------------------- kill/restart (property)
def _kill_restart_one_seed(fixture, tmp_path, seed, batch_cache):
    rng = random.Random(7_000_000 + seed)
    interp = seed % 4 == 0
    if interp:
        jportal = fixture["interp_jportal"]
        trace, database = fixture["interp_trace"], fixture["interp_database"]
        flavour = "interp"
    else:
        jportal = fixture["jportal"]
        flavour = "lossy" if seed % 2 else "lossless"
        trace, database = fixture[flavour], fixture["database"]
    path = tmp_path / ("kill_%d.rpt2" % seed)
    ckpt = str(path) + ".jpsc"
    simulator = GrowingArchiveSimulator(trace, database, path)
    tenant = StreamDecoder(jportal, str(path), name="kill%d" % seed)
    injector = FaultInjector(seed=7_000_000 + seed)
    io_faults = (not interp) and seed % 5 == 3
    if io_faults:
        tenant.reader.io_hooks = injector.io_schedule(
            error_rate=0.2, partial_rate=0.3, max_faults=6
        )
    corrupt_ckpt = (not interp) and seed % 7 == 5
    crash_clean = (not interp) and seed % 10 == 6
    crash_torn = (not interp) and seed % 10 == 2
    kill_at = injector.kill_index(10)
    checkpoint_every = rng.randrange(1, 4)
    polls = 0
    killed = False
    while simulator.remaining:
        simulator.step(rng.randrange(1, 6))
        tenant.poll()
        polls += 1
        if polls % checkpoint_every == 0 or (not killed and polls == kill_at):
            tenant.write_checkpoint(ckpt)
        if not killed and polls >= kill_at:
            killed = True
            if corrupt_ckpt:
                injector.corrupt_checkpoint(ckpt)
            old_polls = tenant.polls
            tenant, anomaly = StreamDecoder.restore(
                jportal, str(path), name="kill%d" % seed, checkpoint_path=ckpt
            )
            if corrupt_ckpt:
                assert anomaly is not None, seed
                assert tenant.polls == 0, seed  # cold start
            else:
                assert anomaly is None, (seed, anomaly)
                assert tenant.polls == old_polls, seed
            if io_faults:
                tenant.reader.io_hooks = injector.io_schedule(
                    error_rate=0.2, partial_rate=0.3, max_faults=4
                )
    assert killed, seed
    if crash_torn:
        simulator.crash_mid_record()
    elif crash_clean:
        simulator.crash()
    else:
        simulator.finish()
    tenant.poll()
    streamed = tenant.finalize()
    final_bytes = open(path, "rb").read()
    digest = hashlib.sha1(final_bytes).hexdigest()
    baseline = batch_cache.get(digest)
    if baseline is None:
        baseline = batch_cache[digest] = jportal.analyze_archive(str(path))
    note = (
        "seed=%d flavour=%s kill_at=%d corrupt=%s io=%s crash=%s replayed=%s (%s)"
        % (
            seed, flavour, kill_at, corrupt_ckpt, io_faults,
            crash_clean or crash_torn, tenant.replayed, tenant.replay_reason,
        )
    )
    assert_results_identical(streamed, baseline, note)
    if interp:
        # The acceptance pin: a clean archive resumed from checkpoint
        # finalizes WITHOUT a replay -- recovery really is incremental.
        assert tenant.replayed is False, note
    for leftover in (str(path), str(path) + ".meta", ckpt):
        if os.path.exists(leftover):
            os.unlink(leftover)


class TestKillRestartProperty:
    """200 seeds x (pacing, flavour, kill point, fault flavour)."""

    def test_two_hundred_seeds_survive_kill_restart(
        self, stream_fixture, tmp_path
    ):
        batch_cache = {}
        for seed in range(RESILIENCE_SEEDS):
            _kill_restart_one_seed(stream_fixture, tmp_path, seed, batch_cache)
        assert len(batch_cache) > 2


class TestSupervisorResume:
    """Supervisor-level checkpoint lifecycle (the tentpole surface)."""

    def test_kill_restart_resumes_without_replay(
        self, stream_fixture, tmp_path
    ):
        jportal = stream_fixture["interp_jportal"]
        path = tmp_path / "resume.rpt2"
        simulator = GrowingArchiveSimulator(
            stream_fixture["interp_trace"],
            stream_fixture["interp_database"],
            path,
        )
        config = ResilienceConfig(checkpoint=True)
        rng = random.Random(1234)
        supervisor = StreamSupervisor(resilience=config)
        tenant = supervisor.add_tenant("t", str(path), jportal)
        half = simulator.remaining // 2
        while simulator.remaining > half:
            simulator.step(rng.randrange(1, 5))
            supervisor.poll_all()
        polls_before = tenant.polls
        assert supervisor.metrics.counter("stream.checkpoint.writes") > 0
        supervisor.close()

        supervisor = StreamSupervisor(resilience=config)
        tenant = supervisor.add_tenant("t", str(path), jportal, resume=True)
        assert supervisor.metrics.counter("stream.checkpoint.restored") == 1
        assert tenant.polls == polls_before
        while simulator.remaining:
            simulator.step(rng.randrange(1, 5))
            supervisor.poll_all()
        simulator.finish()
        supervisor.poll_all()
        result = supervisor.finalize("t")
        assert tenant.replayed is False
        assert supervisor.metrics.counter("stream.finalize_replays") == 0
        baseline = jportal.analyze_archive(str(path))
        assert_results_identical(result, baseline, "supervisor resume")
        supervisor.close()

    def test_missing_checkpoint_cold_starts(self, stream_fixture, tmp_path):
        path = _sealed_archive(stream_fixture, tmp_path, "cold.rpt2")
        supervisor = StreamSupervisor()
        tenant = supervisor.add_tenant(
            "t", path, stream_fixture["jportal"], resume=True
        )
        assert tenant.polls == 0
        assert supervisor.metrics.counter("stream.checkpoint.missing") == 1
        assert supervisor.metrics.state("stream.health", tid=0) == "healthy"
        supervisor.close()

    def test_stale_checkpoint_cold_starts(self, stream_fixture, tmp_path):
        path = _sealed_archive(stream_fixture, tmp_path, "stale.rpt2")
        jportal = stream_fixture["jportal"]
        tenant = StreamDecoder(jportal, path, name="t")
        tenant.poll()
        assert tenant.reader.offset > 8
        assert tenant.write_checkpoint() is not None
        # The archive is truncated below the checkpointed offset: the
        # sidecar no longer matches the bytes on disk.
        with open(path, "r+b") as sink:
            sink.truncate(tenant.reader.offset // 2)
        supervisor = StreamSupervisor()
        resumed = supervisor.add_tenant("t", path, jportal, resume=True)
        assert resumed.polls == 0
        assert supervisor.metrics.counter(
            "stream.checkpoint.stale_checkpoint"
        ) == 1
        # And the cold start still finalizes to the batch result of the
        # truncated file (a torn tail: salvage -> replay, never a raise).
        supervisor.poll_all()
        result = supervisor.finalize("t")
        baseline = jportal.analyze_archive(path)
        assert_results_identical(result, baseline, "stale restore")
        supervisor.close()

    def test_corrupt_checkpoint_cold_starts(self, stream_fixture, tmp_path):
        path = _sealed_archive(stream_fixture, tmp_path, "rot.rpt2")
        jportal = stream_fixture["jportal"]
        tenant = StreamDecoder(jportal, path, name="t")
        tenant.poll()
        assert tenant.write_checkpoint() is not None
        blob = bytearray(open(checkpoint_path_for(path), "rb").read())
        blob[-1] ^= 0x40
        with open(checkpoint_path_for(path), "wb") as sink:
            sink.write(bytes(blob))
        supervisor = StreamSupervisor()
        resumed = supervisor.add_tenant("t", path, jportal, resume=True)
        assert resumed.polls == 0
        assert supervisor.metrics.counter(
            "stream.checkpoint.corrupt_checkpoint"
        ) == 1
        supervisor.close()


# ------------------------------------------------------ health state machine
class TestQuarantineStateMachine:
    """Directed checks on the HEALTHY -> DEGRADED -> QUARANTINED path."""

    def test_backoff_schedule_deterministic_monotone_capped(self):
        policy = RetryPolicy(
            retry_budget=8, backoff_base=0.05, backoff_cap=1.0,
            backoff_factor=2.0, jitter=0.25,
        )
        delays = [policy.backoff_delay("tenant7", n) for n in range(1, 9)]
        again = [policy.backoff_delay("tenant7", n) for n in range(1, 9)]
        assert delays == again  # deterministic: same tenant, same schedule
        for earlier, later in zip(delays, delays[1:]):
            assert later >= earlier * 0.8  # monotone modulo jitter
        assert max(delays) <= 1.0 * 1.25  # capped (plus jitter fraction)
        assert delays[0] >= 0.05
        # Distinct tenants fan out: same attempt, different jitter.
        other = [policy.backoff_delay("tenant8", n) for n in range(1, 9)]
        assert other != delays

    def test_transitions_and_budget(self):
        policy = RetryPolicy(retry_budget=2, backoff_base=0.5, jitter=0.0)
        state = TenantSupervision(name="t", policy=policy)
        assert state.health is TenantHealth.HEALTHY
        assert state.should_poll(0.0)
        assert not state.record_failure("boom", now=10.0)
        assert state.health is TenantHealth.DEGRADED
        assert not state.should_poll(10.0)  # inside the backoff window
        assert state.should_poll(10.0 + 2.0)
        assert state.record_success()  # recovery resets the budget
        assert state.health is TenantHealth.HEALTHY
        assert state.consecutive_failures == 0
        for _ in range(2):
            assert not state.record_failure("boom", now=0.0)
        assert state.record_failure("boom", now=0.0)  # budget exhausted
        assert state.health is TenantHealth.QUARANTINED
        assert not state.should_poll(10.0**9)
        assert state.record_success() is False  # quarantine is terminal
        assert state.health is TenantHealth.QUARANTINED

    def test_supervisor_quarantines_and_still_finalizes(
        self, stream_fixture, tmp_path
    ):
        jportal = stream_fixture["jportal"]
        sick_path = _sealed_archive(stream_fixture, tmp_path, "sick.rpt2")
        well_path = _sealed_archive(stream_fixture, tmp_path, "well.rpt2")
        clock = _Clock()
        config = ResilienceConfig(
            retry=RetryPolicy(retry_budget=2, backoff_base=0.01, jitter=0.0)
        )
        supervisor = StreamSupervisor(resilience=config, clock=clock)
        sick = supervisor.add_tenant("sick", sick_path, jportal)
        supervisor.add_tenant("well", well_path, jportal)
        sick.reader.io_hooks = _AlwaysFail()

        # Round 1: the failing poll degrades only its own tenant.
        deltas = supervisor.poll_all()
        assert deltas["sick"].error is not None and deltas["sick"].transient
        assert deltas["well"].error is None
        assert supervisor.health("sick") is TenantHealth.DEGRADED
        assert supervisor.health("well") is TenantHealth.HEALTHY
        assert supervisor.metrics.state("stream.health", tid=0) == "degraded"

        # Same instant: the degraded tenant is inside its backoff
        # window and must be skipped; the healthy one is not.
        deltas = supervisor.poll_all()
        assert "sick" not in deltas and "well" in deltas

        # Advance past each backoff; the budget (2) exhausts on the
        # third consecutive failure and the tenant quarantines.
        failures = 1
        while supervisor.health("sick") is not TenantHealth.QUARANTINED:
            clock.now += 1.0
            deltas = supervisor.poll_all()
            if "sick" in deltas:
                failures += 1
            assert failures <= 4, "quarantine never reached"
        assert failures == 3
        assert supervisor.metrics.counter("stream.quarantines", tid=0) == 1
        assert supervisor.metrics.counter("stream.retries_scheduled") == 2
        assert (
            supervisor.metrics.state("stream.health", tid=0) == "quarantined"
        )

        # Quarantined: excluded from every later round.
        clock.now += 100.0
        deltas = supervisor.poll_all()
        assert "sick" not in deltas and "well" in deltas

        # Finalize is still correct for both: the quarantined tenant
        # was shed, so it replays from the (intact) file.
        results = supervisor.finalize_all()
        baseline = jportal.analyze_archive(sick_path)
        assert_results_identical(results["sick"], baseline, "quarantined")
        assert sick.replayed is True
        assert supervisor.metrics.counter("stream.finalize_replays") >= 1
        well_baseline = jportal.analyze_archive(well_path)
        assert_results_identical(results["well"], well_baseline, "well")
        supervisor.close()

    def test_recovery_after_transient_failures(self, stream_fixture, tmp_path):
        jportal = stream_fixture["jportal"]
        path = _sealed_archive(stream_fixture, tmp_path, "flaky.rpt2")
        clock = _Clock()
        config = ResilienceConfig(
            retry=RetryPolicy(retry_budget=4, backoff_base=0.01, jitter=0.0)
        )
        supervisor = StreamSupervisor(resilience=config, clock=clock)
        tenant = supervisor.add_tenant("flaky", path, jportal)
        hooks = _AlwaysFail()
        tenant.reader.io_hooks = hooks
        supervisor.poll_all()
        assert supervisor.health("flaky") is TenantHealth.DEGRADED
        tenant.reader.io_hooks = None  # the fault clears
        clock.now += 10.0
        deltas = supervisor.poll_all()
        assert deltas["flaky"].error is None
        assert supervisor.health("flaky") is TenantHealth.HEALTHY
        assert supervisor.metrics.counter("stream.recoveries", tid=0) == 1
        result = supervisor.finalize("flaky")
        assert tenant.replayed is False  # transient faults cost nothing
        baseline = jportal.analyze_archive(path)
        assert_results_identical(result, baseline, "recovered")
        supervisor.close()


# ----------------------------------------------------------- backpressure
def _stall_segment(fixture):
    """A segment chunk whose entries all share one tsc: committed
    repeatedly, the commit watermark pins at that tsc and nothing is
    ever strictly below it -- pending entries grow without release."""
    events = list(
        iter_archive_events(
            fixture["lossless"], fixture["database"], SEGMENT_PACKETS
        )
    )
    seg = next(event for event in events if event[0] == "segment")
    _kind, core, chunk, _lo, _hi = seg
    packet = next(item for tag, item in chunk if tag != "loss")
    return core, [("packet", packet)] * 32, packet.tsc


class TestBackpressure:
    """Bounded memory: caps shed the offender, invariants hold."""

    def test_watermark_stall_bounded_by_pending_cap(
        self, stream_fixture, tmp_path
    ):
        core, chunk, tsc = _stall_segment(stream_fixture)
        path = str(tmp_path / "stall.rpt2")
        writer = ArchiveWriter(path)
        writer.snapshot_metadata(stream_fixture["database"], include_dumps=False)
        tenant = StreamDecoder(stream_fixture["jportal"], path, name="stall")
        cap = 100
        tenant.backpressure = BackpressureConfig(max_pending_entries=cap)
        shed_seen = False
        peak = 0
        for _ in range(12):
            writer.append_segment(core, chunk, tsc_span=(tsc, tsc))
            delta = tenant.poll()
            peak = max(peak, tenant.pending_entries())
            if delta.shed:
                shed_seen = True
            # The invariant: pending never exceeds the cap by more than
            # one poll's worth of arrivals (the breach that trips it).
            assert tenant.pending_entries() <= cap + len(chunk)
        assert shed_seen, "stalling tenant never shed (peak=%d)" % peak
        assert tenant.pending_entries() == 0
        assert tenant.buffered_bytes() == 0
        assert tenant.shed_reason is not None
        # Polls stay cheap no-ops after the shed.
        writer.append_segment(core, chunk, tsc_span=(tsc, tsc))
        delta = tenant.poll()
        assert delta.shed and tenant.pending_entries() == 0
        writer.abort()

    def test_buffered_bytes_cap_sheds_ballooning_tail(
        self, stream_fixture, tmp_path
    ):
        core, chunk, tsc = _stall_segment(stream_fixture)
        path = str(tmp_path / "tail.rpt2")
        writer = ArchiveWriter(path)
        writer.snapshot_metadata(stream_fixture["database"], include_dumps=False)
        writer.append_segment(core, chunk, tsc_span=(tsc, tsc))
        writer.abort()  # unsealed: the tail may legally keep growing
        tenant = StreamDecoder(stream_fixture["jportal"], path, name="tail")
        tenant.backpressure = BackpressureConfig(max_buffered_bytes=2048)
        tenant.poll()  # consume the committed prefix cleanly
        # An in-flight record declaring a huge payload: the scanner must
        # buffer it until commit, so the raw tail balloons.
        header = archive_mod._HEADER.pack(
            archive_mod.REC_SEGMENT, 10**6, 0, 0, 0, 1 << 20, 0
        )
        with open(path, "ab") as sink:
            sink.write(archive_mod._SYNC)
            sink.write(header)
            sink.write(archive_mod._HCRC.pack(archive_mod._crc(header)))
        shed_seen = False
        with open(path, "ab") as sink:
            for _ in range(8):
                sink.write(b"\x00" * 512)
                sink.flush()
                delta = tenant.poll()
                assert tenant.buffered_bytes() <= 2048 + 512 + 64
                if delta.shed:
                    shed_seen = True
        assert shed_seen
        assert tenant.buffered_bytes() == 0

    def test_global_cap_sheds_largest_tenant_only(
        self, stream_fixture, tmp_path
    ):
        core, chunk, tsc = _stall_segment(stream_fixture)
        jportal = stream_fixture["jportal"]
        stall_path = str(tmp_path / "gstall.rpt2")
        writer = ArchiveWriter(stall_path)
        writer.snapshot_metadata(stream_fixture["database"], include_dumps=False)
        small_path = _sealed_archive(stream_fixture, tmp_path, "gsmall.rpt2")
        config = ResilienceConfig(
            backpressure=BackpressureConfig(global_max_pending_entries=200)
        )
        supervisor = StreamSupervisor(resilience=config)
        stall = supervisor.add_tenant("stall", stall_path, jportal)
        small = supervisor.add_tenant("small", small_path, jportal)
        shed_round = None
        for round_no in range(12):
            writer.append_segment(core, chunk, tsc_span=(tsc, tsc))
            deltas = supervisor.poll_all()
            total = sum(
                tenant.pending_entries()
                for tenant in (stall, small)
            )
            assert total <= 200 + len(chunk)
            if deltas["stall"].shed and shed_round is None:
                shed_round = round_no
        assert shed_round is not None, "global cap never tripped"
        assert stall.shed_reason is not None and "global" in stall.shed_reason
        assert small.shed_reason is None  # only the offender pays
        assert supervisor.metrics.counter("stream.sheds", tid=0) >= 1
        assert supervisor.metrics.counter("stream.sheds", tid=1) == 0
        writer.abort()
        # The small tenant still finalizes on the fast path.
        results = supervisor.finalize_all()
        baseline = jportal.analyze_archive(small_path)
        assert_results_identical(results["small"], baseline, "small tenant")
        assert small.replayed is False
        supervisor.close()


# -------------------------------------------------------------- watchdog
class TestWatchdog:
    """Poll deadlines: hung tenants are abandoned, not waited on."""

    def test_hung_poll_is_abandoned_and_recovers(
        self, stream_fixture, tmp_path
    ):
        jportal = stream_fixture["jportal"]
        slow_path = _sealed_archive(stream_fixture, tmp_path, "slow.rpt2")
        fast_path = _sealed_archive(stream_fixture, tmp_path, "fast.rpt2")
        config = ResilienceConfig(
            retry=RetryPolicy(retry_budget=8, backoff_base=0.0, jitter=0.0),
            poll_deadline=0.05,
        )
        supervisor = StreamSupervisor(resilience=config)
        slow = supervisor.add_tenant("slow", slow_path, jportal)
        supervisor.add_tenant("fast", fast_path, jportal)
        slow.reader.io_hooks = _StallHooks(0.4)
        started = time.monotonic()
        deltas = supervisor.poll_all()
        elapsed = time.monotonic() - started
        assert "slow" not in deltas  # abandoned by the watchdog
        assert "fast" in deltas  # the round was not blocked
        assert elapsed < 0.35, "watchdog did not cut the wait"
        assert supervisor.metrics.counter("stream.watchdog_timeouts") == 1
        assert supervisor.health("slow") is TenantHealth.DEGRADED
        # Once the stalled thread drains, the next round reaps it and
        # the tenant recovers.
        time.sleep(0.5)
        slow.reader.io_hooks = None
        deltas = supervisor.poll_all()
        assert "slow" in deltas
        assert supervisor.health("slow") is TenantHealth.HEALTHY
        result = supervisor.finalize("slow")
        baseline = jportal.analyze_archive(slow_path)
        assert_results_identical(result, baseline, "reaped hung tenant")
        supervisor.close()

    def test_finalize_while_hung_replays_from_file(
        self, stream_fixture, tmp_path
    ):
        jportal = stream_fixture["jportal"]
        path = _sealed_archive(stream_fixture, tmp_path, "hung.rpt2")
        config = ResilienceConfig(poll_deadline=0.05)
        supervisor = StreamSupervisor(resilience=config)
        tenant = supervisor.add_tenant("hung", path, jportal)
        tenant.reader.io_hooks = _StallHooks(1.0)
        deltas = supervisor.poll_all()
        assert "hung" not in deltas
        # Finalize immediately, while the poll thread is still inside
        # the stall: the decoder state is untrusted, so the supervisor
        # replays from the file without touching it.
        results = supervisor.finalize_all()
        assert supervisor.metrics.counter("stream.forced_replays") == 1
        baseline = jportal.analyze_archive(path)
        assert_results_identical(results["hung"], baseline, "hung finalize")
        supervisor.close()
