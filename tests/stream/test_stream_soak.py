"""Multi-tenant soak: hostile live tails never escape the supervisor.

Eight tenants tail-follow archives whose bytes were mutated by
:class:`~repro.pt.faults.FaultInjector` *before* being revealed
chunk-by-chunk -- so every fault lands mid-stream, on a live tail.  Two
tenants additionally see their file *shrink* mid-follow (a salvage
truncation, not an append), which must flip the reader dirty rather
than corrupt state.  The contract under soak:

* no exception escapes ``poll_all``/``finalize_all`` (no-crash);
* every tenant's salvage byte-accounting balances against its final
  file (``salvaged + dropped + converted == file_size``);
* the resumable scanner's final stats equal a one-shot batch
  ``read_archive`` of the same bytes (non-shrunk tenants);
* memory high-water stays bounded: the raw tail buffer never exceeds
  the archive itself.

``TestChaosSoakFull`` layers the *process-level* fault model on top:
per-tenant transient I/O fault schedules (EIO, partial reads), a tenant
whose file is wholesale replaced mid-follow, periodic supervisor
kill/restart cycles restoring every tenant from its JPSC checkpoint --
with a rotating subset of those checkpoints corrupted first -- and a
global memory cap.  The chaos contract adds to the byte-level one:

* every tenant's finalize is *bit-identical* to a batch
  ``analyze_archive`` of its final file, whatever degradations fired;
* checkpoint accounting balances: every resume lands exactly one
  ``stream.checkpoint.*`` counter (restored or one anomaly kind);
* quarantines, sheds, and retries never leak across tenants.

``TestStreamSoakSmoke``/``TestChaosSoakSmoke`` are the reduced variants
CI's soak jobs run; the full eight-tenant soaks run with tier-1.
"""

from __future__ import annotations

import hashlib
import os
import random
import shutil

from repro.core.metrics import MetricsRegistry
from repro.pt.archive import read_archive, write_archive
from repro.pt.faults import FaultInjector
from repro.stream import (
    BackpressureConfig,
    ResilienceConfig,
    RetryPolicy,
    StreamSupervisor,
    TenantFailure,
    checkpoint_path_for,
)

from ..integration.test_archive_salvage import salvage_contract
from .conftest import SEGMENT_PACKETS, assert_results_identical


def _run_soak(fixture, tmp_path, tenants: int, chunks: int, seed_base: int):
    clean_path = tmp_path / "clean.rpt2"
    write_archive(
        fixture["lossy"], fixture["database"], clean_path,
        segment_packets=SEGMENT_PACKETS,
    )
    clean_bytes = open(clean_path, "rb").read()
    snapshot_src = str(clean_path) + ".meta"

    plans = {}
    with StreamSupervisor(max_workers=4) as supervisor:
        for index in range(tenants):
            name = "tenant%d" % index
            rng = random.Random(seed_base + index)
            injector = FaultInjector(seed=seed_base + index)
            mutated, faults = injector.corrupt_archive(
                clean_bytes, faults=1 + index % 3
            )
            path = str(tmp_path / ("%s.rpt2" % name))
            shutil.copy(snapshot_src, path + ".meta")
            cuts = sorted(
                rng.sample(range(1, len(mutated)), min(chunks - 1, len(mutated) - 1))
            ) + [len(mutated)]
            shrink_at = rng.randrange(1, len(cuts)) if index % 4 == 2 else None
            plans[name] = {
                "path": path,
                "bytes": mutated,
                "cuts": cuts,
                "shrink_at": shrink_at,
                "faults": faults,
                "written": 0,
                "step": 0,
            }
            supervisor.add_tenant(name, path, fixture["jportal"])

        live = set(plans)
        while live:
            for name in sorted(live):
                plan = plans[name]
                step = plan["step"]
                if step >= len(plan["cuts"]):
                    live.discard(name)
                    continue
                if plan["shrink_at"] is not None and step == plan["shrink_at"]:
                    # The file shrinks under the reader: rewrite a
                    # shorter prefix, then keep appending next steps.
                    keep = max(1, plan["written"] // 2)
                    with open(plan["path"], "wb") as sink:
                        sink.write(plan["bytes"][:keep])
                    plan["written"] = keep
                    plan["shrink_at"] = None
                    continue
                target = plan["cuts"][step]
                if target > plan["written"]:
                    with open(plan["path"], "ab") as sink:
                        sink.write(plan["bytes"][plan["written"]:target])
                    plan["written"] = target
                plan["step"] = step + 1
            supervisor.poll_all()  # must never raise, whatever the bytes

        results = supervisor.finalize_all()  # must never raise either
        metrics = supervisor.metrics

    assert sorted(results) == sorted(plans)
    for name, result in results.items():
        plan = plans[name]
        final_size = os.path.getsize(plan["path"])
        assert final_size == len(plan["bytes"]), name
        note = "%s faults=%r" % (name, [f.kind for f in plan["faults"]])
        assert result.salvage is not None, note
        salvage_contract(result.salvage, final_size, note)
        tenant = supervisor._tenants[name]
        if not tenant.reader.dirty:
            # The resumable scanner saw the same bytes as a batch read
            # would: its accounting must be byte-for-byte identical.
            batch = read_archive(plan["path"], snapshot_path=plan["path"] + ".meta")
            assert tenant.reader.stats == batch.stats, note

    # Memory high-water: the undecoded tail buffer is bounded by the
    # archive itself (pending bytes are discarded once determinate).
    assert metrics.maximum("stream.buffer_bytes") <= len(clean_bytes) + 64
    assert metrics.counter("stream.polls") > 0
    return results


class TestStreamSoakFull:
    """The ISSUE's soak: 8 tenants, faults on live tails, no escapes."""

    def test_eight_tenants_survive_hostile_tails(
        self, stream_fixture, tmp_path
    ):
        _run_soak(
            stream_fixture, tmp_path, tenants=8, chunks=40,
            seed_base=6_000_000,
        )


class TestStreamSoakSmoke:
    """Reduced soak for the CI ``stream-soak`` job."""

    def test_soak_smoke(self, stream_fixture, tmp_path):
        _run_soak(
            stream_fixture, tmp_path, tenants=3, chunks=12,
            seed_base=6_500_000,
        )


# Restore-side checkpoint outcomes: every resume must land on exactly
# one of these counters (``restored`` or a load anomaly).
_RESTORE_COUNTERS = (
    "stream.checkpoint.restored",
    "stream.checkpoint.missing",
    "stream.checkpoint.corrupt_checkpoint",
    "stream.checkpoint.version_skew",
    "stream.checkpoint.stale_checkpoint",
)


def _chaos_resilience() -> ResilienceConfig:
    # Zero backoff keeps the soak free of wall-clock sleeps while still
    # exercising the DEGRADED -> QUARANTINED transitions; the global
    # pending cap is high enough to stay out of the way unless a tenant
    # genuinely balloons.
    return ResilienceConfig(
        retry=RetryPolicy(retry_budget=3, backoff_base=0.0, jitter=0.0),
        backpressure=BackpressureConfig(global_max_pending_entries=200_000),
        checkpoint=True,
        checkpoint_interval=2,
    )


def _run_chaos_soak(
    fixture, tmp_path, tenants: int, chunks: int, seed_base: int, kills: int
):
    """Byte faults *and* process faults together, with restarts.

    On top of ``_run_soak``'s hostile tails: every reader runs behind a
    transient I/O fault schedule, one tenant's file is wholesale
    replaced mid-follow (distinct inode, so the reader must flip
    dirty), and the supervisor itself is killed ``kills`` times --
    every tenant resuming from its JPSC sidecar, a rotating subset of
    which the injector corrupts first.  Finalize must still be
    bit-identical to batch for every tenant, and the checkpoint
    accounting must balance across all supervisor generations.
    """
    clean_path = tmp_path / "clean.rpt2"
    write_archive(
        fixture["lossy"], fixture["database"], clean_path,
        segment_packets=SEGMENT_PACKETS,
    )
    clean_bytes = open(clean_path, "rb").read()
    snapshot_src = str(clean_path) + ".meta"
    resilience = _chaos_resilience()
    rng = random.Random(seed_base)
    kill_rounds = set(rng.sample(range(2, chunks - 2), kills))
    aggregate = MetricsRegistry()
    resumes = 0

    def _attach_io_faults(supervisor, name, plan, max_faults):
        schedule = plan["injector"].io_schedule(
            error_rate=0.1, partial_rate=0.2, max_faults=max_faults
        )
        supervisor._tenants[name].reader.io_hooks = schedule

    plans = {}
    supervisor = StreamSupervisor(max_workers=4, resilience=resilience)
    try:
        for index in range(tenants):
            name = "tenant%d" % index
            injector = FaultInjector(seed=seed_base + index)
            mutated, faults = injector.corrupt_archive(
                clean_bytes, faults=1 + index % 3
            )
            path = str(tmp_path / ("%s.rpt2" % name))
            shutil.copy(snapshot_src, path + ".meta")
            cuts = sorted(
                rng.sample(range(1, len(mutated)), min(chunks - 1, len(mutated) - 1))
            ) + [len(mutated)]
            plans[name] = {
                "path": path,
                "bytes": mutated,
                "cuts": cuts,
                # One tenant sees its archive *replaced* (new inode,
                # clean bytes) mid-follow; precomputed so the reveal
                # loop stays deterministic.
                "replace_at": (
                    rng.randrange(1, len(cuts)) if index % 4 == 1 else None
                ),
                "replacement": clean_bytes,
                "injector": injector,
                "faults": faults,
                "written": 0,
                "step": 0,
            }
            supervisor.add_tenant(name, path, fixture["jportal"])
            _attach_io_faults(supervisor, name, plans[name], max_faults=8)

        live = set(plans)
        rounds = 0
        while live:
            for name in sorted(live):
                plan = plans[name]
                step = plan["step"]
                if step >= len(plan["cuts"]):
                    live.discard(name)
                    continue
                if plan["replace_at"] is not None and step == plan["replace_at"]:
                    # Whole-file replacement via a temp file and
                    # os.replace: guarantees a *distinct* inode (a
                    # bare unlink+create could reuse the old one and
                    # defeat the reader's replacement detection).
                    replacement = plan["replacement"]
                    temp = plan["path"] + ".swap"
                    with open(temp, "wb") as sink:
                        sink.write(replacement)
                    os.replace(temp, plan["path"])
                    plan["bytes"] = replacement
                    plan["written"] = len(replacement)
                    plan["replace_at"] = None
                    plan["step"] = step + 1
                    continue
                target = plan["cuts"][step]
                if target > plan["written"]:
                    with open(plan["path"], "ab") as sink:
                        sink.write(plan["bytes"][plan["written"]:target])
                    plan["written"] = target
                plan["step"] = step + 1
            supervisor.poll_all()  # must never raise, whatever happens
            rounds += 1
            if rounds in kill_rounds:
                # Process fault: checkpoint, kill the supervisor, and
                # resume a fresh one -- corrupting a rotating subset of
                # the sidecars first.
                supervisor.checkpoint_all()
                supervisor.close()
                aggregate.absorb(supervisor.metrics.export())
                supervisor = StreamSupervisor(
                    max_workers=4, resilience=resilience
                )
                for index, name in enumerate(sorted(plans)):
                    plan = plans[name]
                    if index % 3 == 0:
                        plan["injector"].corrupt_checkpoint(
                            checkpoint_path_for(plan["path"])
                        )
                    supervisor.add_tenant(
                        name, plan["path"], fixture["jportal"], resume=True
                    )
                    _attach_io_faults(supervisor, name, plan, max_faults=4)
                    resumes += 1

        results = supervisor.finalize_all()  # must never raise either
        aggregate.absorb(supervisor.metrics.export())
    finally:
        supervisor.close()

    assert sorted(results) == sorted(plans)
    batch_cache = {}
    for name, result in sorted(results.items()):
        plan = plans[name]
        note = "%s faults=%r" % (name, [f.kind for f in plan["faults"]])
        assert not isinstance(result, TenantFailure), (note, result)
        final_size = os.path.getsize(plan["path"])
        assert final_size == len(plan["bytes"]), note
        assert result.salvage is not None, note
        salvage_contract(result.salvage, final_size, note)
        digest = hashlib.sha1(plan["bytes"]).hexdigest()
        if digest not in batch_cache:
            batch_cache[digest] = fixture["jportal"].analyze_archive(
                plan["path"], snapshot_path=plan["path"] + ".meta"
            )
        assert_results_identical(result, batch_cache[digest], note)

    # Checkpoint accounting balances across every supervisor
    # generation: each resume landed exactly one restore-side counter.
    outcomes = {
        counter: aggregate.counter(counter) for counter in _RESTORE_COUNTERS
    }
    assert sum(outcomes.values()) == resumes, outcomes
    assert resumes == kills * tenants
    # The injector really did damage sidecars, and at least one resume
    # still came back clean -- both degradation paths were exercised.
    assert outcomes["stream.checkpoint.restored"] > 0, outcomes
    assert resumes - outcomes["stream.checkpoint.restored"] > 0, outcomes
    return results


class TestChaosSoakFull:
    """The ISSUE's chaos soak: byte + process faults, kill/restart."""

    def test_eight_tenants_survive_chaos(self, stream_fixture, tmp_path):
        _run_chaos_soak(
            stream_fixture, tmp_path, tenants=8, chunks=28,
            seed_base=6_600_000, kills=2,
        )


class TestChaosSoakSmoke:
    """Reduced chaos soak for the CI ``resilience-soak`` job."""

    def test_chaos_smoke(self, stream_fixture, tmp_path):
        _run_chaos_soak(
            stream_fixture, tmp_path, tenants=3, chunks=12,
            seed_base=6_700_000, kills=1,
        )
