"""Multi-tenant soak: hostile live tails never escape the supervisor.

Eight tenants tail-follow archives whose bytes were mutated by
:class:`~repro.pt.faults.FaultInjector` *before* being revealed
chunk-by-chunk -- so every fault lands mid-stream, on a live tail.  Two
tenants additionally see their file *shrink* mid-follow (a salvage
truncation, not an append), which must flip the reader dirty rather
than corrupt state.  The contract under soak:

* no exception escapes ``poll_all``/``finalize_all`` (no-crash);
* every tenant's salvage byte-accounting balances against its final
  file (``salvaged + dropped + converted == file_size``);
* the resumable scanner's final stats equal a one-shot batch
  ``read_archive`` of the same bytes (non-shrunk tenants);
* memory high-water stays bounded: the raw tail buffer never exceeds
  the archive itself.

``TestStreamSoakSmoke`` is the reduced-tenant variant CI's
``stream-soak`` job runs; the full eight-tenant soak runs with tier-1.
"""

from __future__ import annotations

import os
import random
import shutil

from repro.pt.archive import read_archive, write_archive
from repro.pt.faults import FaultInjector
from repro.stream import StreamSupervisor

from ..integration.test_archive_salvage import salvage_contract
from .conftest import SEGMENT_PACKETS


def _run_soak(fixture, tmp_path, tenants: int, chunks: int, seed_base: int):
    clean_path = tmp_path / "clean.rpt2"
    write_archive(
        fixture["lossy"], fixture["database"], clean_path,
        segment_packets=SEGMENT_PACKETS,
    )
    clean_bytes = open(clean_path, "rb").read()
    snapshot_src = str(clean_path) + ".meta"

    plans = {}
    with StreamSupervisor(max_workers=4) as supervisor:
        for index in range(tenants):
            name = "tenant%d" % index
            rng = random.Random(seed_base + index)
            injector = FaultInjector(seed=seed_base + index)
            mutated, faults = injector.corrupt_archive(
                clean_bytes, faults=1 + index % 3
            )
            path = str(tmp_path / ("%s.rpt2" % name))
            shutil.copy(snapshot_src, path + ".meta")
            cuts = sorted(
                rng.sample(range(1, len(mutated)), min(chunks - 1, len(mutated) - 1))
            ) + [len(mutated)]
            shrink_at = rng.randrange(1, len(cuts)) if index % 4 == 2 else None
            plans[name] = {
                "path": path,
                "bytes": mutated,
                "cuts": cuts,
                "shrink_at": shrink_at,
                "faults": faults,
                "written": 0,
                "step": 0,
            }
            supervisor.add_tenant(name, path, fixture["jportal"])

        live = set(plans)
        while live:
            for name in sorted(live):
                plan = plans[name]
                step = plan["step"]
                if step >= len(plan["cuts"]):
                    live.discard(name)
                    continue
                if plan["shrink_at"] is not None and step == plan["shrink_at"]:
                    # The file shrinks under the reader: rewrite a
                    # shorter prefix, then keep appending next steps.
                    keep = max(1, plan["written"] // 2)
                    with open(plan["path"], "wb") as sink:
                        sink.write(plan["bytes"][:keep])
                    plan["written"] = keep
                    plan["shrink_at"] = None
                    continue
                target = plan["cuts"][step]
                if target > plan["written"]:
                    with open(plan["path"], "ab") as sink:
                        sink.write(plan["bytes"][plan["written"]:target])
                    plan["written"] = target
                plan["step"] = step + 1
            supervisor.poll_all()  # must never raise, whatever the bytes

        results = supervisor.finalize_all()  # must never raise either
        metrics = supervisor.metrics

    assert sorted(results) == sorted(plans)
    for name, result in results.items():
        plan = plans[name]
        final_size = os.path.getsize(plan["path"])
        assert final_size == len(plan["bytes"]), name
        note = "%s faults=%r" % (name, [f.kind for f in plan["faults"]])
        assert result.salvage is not None, note
        salvage_contract(result.salvage, final_size, note)
        tenant = supervisor._tenants[name]
        if not tenant.reader.dirty:
            # The resumable scanner saw the same bytes as a batch read
            # would: its accounting must be byte-for-byte identical.
            batch = read_archive(plan["path"], snapshot_path=plan["path"] + ".meta")
            assert tenant.reader.stats == batch.stats, note

    # Memory high-water: the undecoded tail buffer is bounded by the
    # archive itself (pending bytes are discarded once determinate).
    assert metrics.maximum("stream.buffer_bytes") <= len(clean_bytes) + 64
    assert metrics.counter("stream.polls") > 0
    return results


class TestStreamSoakFull:
    """The ISSUE's soak: 8 tenants, faults on live tails, no escapes."""

    def test_eight_tenants_survive_hostile_tails(
        self, stream_fixture, tmp_path
    ):
        _run_soak(
            stream_fixture, tmp_path, tenants=8, chunks=40,
            seed_base=6_000_000,
        )


class TestStreamSoakSmoke:
    """Reduced soak for the CI ``stream-soak`` job."""

    def test_soak_smoke(self, stream_fixture, tmp_path):
        _run_soak(
            stream_fixture, tmp_path, tenants=3, chunks=12,
            seed_base=6_500_000,
        )
