"""Fixtures for the streaming suite: a writer that grows an archive
record by record, with controllable pacing and crash points.

The simulator replays exactly the event sequence
:func:`repro.pt.archive.write_archive` would commit (via
:func:`~repro.pt.archive.iter_archive_events`), so a simulator that runs
to ``finish()`` leaves a file byte-identical to a one-shot
``write_archive`` of the same trace -- the property suite's batch
baselines therefore apply to every pacing schedule.
"""

from __future__ import annotations

import pytest

from repro.core import JPortal
from repro.core.metadata import collect_metadata
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.pt.archive import (
    ArchiveWriter,
    iter_archive_events,
    write_archive_event,
)
from repro.pt.perf import collect

from ..conftest import build_figure2_program, lossless_config, lossy_config

#: Segment size used throughout the streaming suite (matches the
#: archive-salvage suite: small enough for many records per trace).
SEGMENT_PACKETS = 48


class GrowingArchiveSimulator:
    """Commit a collected trace to disk one archive record at a time."""

    def __init__(self, trace, database, path, snapshot_path=None,
                 segment_packets: int = SEGMENT_PACKETS):
        self.path = str(path)
        self.writer = ArchiveWriter(self.path, snapshot_path=snapshot_path)
        self.writer.snapshot_metadata(database, include_dumps=False)
        self._events = list(
            iter_archive_events(trace, database, segment_packets)
        )
        self._cursor = 0
        self.closed = False

    @property
    def remaining(self) -> int:
        return len(self._events) - self._cursor

    def step(self, count: int = 1) -> int:
        """Commit up to *count* records; returns how many committed."""
        done = 0
        while done < count and self._cursor < len(self._events):
            write_archive_event(self.writer, self._events[self._cursor])
            self._cursor += 1
            done += 1
        return done

    def crash(self) -> None:
        """Stop without sealing (writer process died between records)."""
        self.writer.abort()
        self.closed = True

    def crash_mid_record(self) -> None:
        """Stop with a torn record on disk: sync + partial header."""
        self.writer.abort()
        with open(self.path, "ab") as sink:
            sink.write(b"\xa5\x5a\x01\x07\x00")
        self.closed = True

    def finish(self):
        """Seal the archive; the file now equals ``write_archive``'s."""
        report = self.writer.close()
        self.closed = True
        return report


def _three_thread_run():
    program = build_figure2_program(iterations=40)
    config = RuntimeConfig(cores=2, quantum=50, jit=JITPolicy(hot_threshold=8))
    runtime = JVMRuntime(program, config)
    runtime.add_thread(name="main")
    for _ in range(2):
        runtime.add_thread("Test", "main", ())
    return program, runtime.run()


def _interpreted_run():
    """Same workload, JIT disabled: no code dumps ever commit, so the
    streaming fast path has no replay trigger to hit."""
    program = build_figure2_program(iterations=40)
    config = RuntimeConfig(
        cores=2, quantum=50, jit=JITPolicy(hot_threshold=10**9)
    )
    runtime = JVMRuntime(program, config)
    runtime.add_thread(name="main")
    for _ in range(2):
        runtime.add_thread("Test", "main", ())
    return program, runtime.run()


@pytest.fixture(scope="package")
def stream_fixture():
    """One deterministic multi-thread run per flavour, collected once."""
    program, run = _three_thread_run()
    interp_program, interp_run = _interpreted_run()
    return {
        "program": program,
        "jportal": JPortal(program, engine="array"),
        "lossless": collect(run, lossless_config()),
        "lossy": collect(run, lossy_config(capacity=600, bandwidth=0.1)),
        "database": collect_metadata(run),
        "interp_program": interp_program,
        "interp_jportal": JPortal(interp_program, engine="array"),
        "interp_trace": collect(interp_run, lossless_config()),
        "interp_database": collect_metadata(interp_run),
    }


def assert_results_identical(result, baseline, note: str) -> None:
    """The engine-equivalence suite's bit-identity contract."""
    __tracebackhide__ = True
    assert result.flows == baseline.flows, note
    assert result.anomalies == baseline.anomalies, note
    assert result.anomalies_by_kind == baseline.anomalies_by_kind, note
    assert result.synthetic_holes == baseline.synthetic_holes, note
    for tid, flow in baseline.flows.items():
        other = result.flows[tid]
        assert other.flow.stats == flow.flow.stats, note
        assert other.projection == flow.projection, note
