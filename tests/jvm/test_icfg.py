"""Unit tests for the interprocedural CFG."""

from repro.jvm.assembler import MethodAssembler
from repro.jvm.icfg import ICFG, IEdgeKind
from repro.jvm.model import JClass, JProgram


def _simple_call_program():
    callee = MethodAssembler("T", "callee", arg_count=1, returns_value=True)
    callee.load(0).ireturn()
    caller = MethodAssembler("T", "main", arg_count=0, returns_value=True)
    caller.const(1).invokestatic("T", "callee", 1, True).ireturn()
    cls = JClass("T")
    cls.add_method(callee.build())
    cls.add_method(caller.build())
    program = JProgram("p")
    program.add_class(cls)
    program.set_entry("T", "main")
    return program


def _virtual_program():
    program = JProgram("v")
    base = JClass("Base")
    bf = MethodAssembler("Base", "f", arg_count=1, returns_value=True, is_static=False)
    bf.const(1).ireturn()
    base.add_method(bf.build())
    sub = JClass("Sub", superclass="Base")
    sf = MethodAssembler("Sub", "f", arg_count=1, returns_value=True, is_static=False)
    sf.const(2).ireturn()
    sub.add_method(sf.build())
    main = MethodAssembler("Base", "main", arg_count=0, returns_value=True)
    main.new("Sub").invokevirtual("Base", "f", 1, True).ireturn()
    base.add_method(main.build())
    program.add_class(base)
    program.add_class(sub)
    program.set_entry("Base", "main")
    return program


class TestCallEdges:
    def test_call_edge_to_callee_entry(self):
        icfg = ICFG(_simple_call_program())
        successors = icfg.successors(("T.main", 1))
        assert (("T.callee", 0), IEdgeKind.CALL) in successors

    def test_call_site_has_no_intra_fallthrough(self):
        icfg = ICFG(_simple_call_program())
        successors = icfg.successors(("T.main", 1))
        kinds = {kind for _dst, kind in successors}
        assert IEdgeKind.INTRA not in kinds

    def test_return_edge_to_return_site(self):
        icfg = ICFG(_simple_call_program())
        successors = icfg.successors(("T.callee", 1))
        assert (("T.main", 2), IEdgeKind.RETURN) in successors

    def test_virtual_call_covers_all_overrides(self):
        icfg = ICFG(_virtual_program())
        successors = icfg.successors(("Base.main", 1))
        targets = {dst for dst, kind in successors if kind is IEdgeKind.CALL}
        assert ("Base.f", 0) in targets
        assert ("Sub.f", 0) in targets

    def test_callers_of(self):
        icfg = ICFG(_simple_call_program())
        assert icfg.callers_of("T.callee") == [("T.main", 1)]


class TestOpaqueSites:
    def test_opaque_site_has_no_call_edges(self):
        program = _simple_call_program()
        icfg = ICFG(program, opaque_call_sites=[("T.main", 1)])
        assert icfg.successors(("T.main", 1)) == []

    def test_opaque_site_kills_return_edges_too(self):
        program = _simple_call_program()
        icfg = ICFG(program, opaque_call_sites=[("T.main", 1)])
        # callee's return has nowhere to go: the caller was invisible.
        successors = icfg.successors(("T.callee", 1))
        assert successors == []


class TestThrowEdges:
    def _throwing_program(self, handler_in_caller: bool):
        thrower = MethodAssembler("T", "boom", arg_count=0, returns_value=True)
        thrower.new("E").athrow()
        if not handler_in_caller:
            thrower.handler(0, 2, 0)
        main = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        main.label("try")
        main.invokestatic("T", "boom", 0, True)
        main.label("endtry")
        main.ireturn()
        main.label("catch")
        main.pop().const(-1).ireturn()
        if handler_in_caller:
            main.handler("try", "endtry", "catch")
        cls = JClass("T")
        cls.add_method(thrower.build())
        cls.add_method(main.build())
        program = JProgram("p")
        program.add_class(cls)
        program.add_class(JClass("E"))
        program.set_entry("T", "main")
        return program

    def test_local_handler_edge(self):
        icfg = ICFG(self._throwing_program(handler_in_caller=False))
        successors = icfg.successors(("T.boom", 1))
        assert (("T.boom", 0), IEdgeKind.THROW) in successors

    def test_unwind_to_caller_handler(self):
        icfg = ICFG(self._throwing_program(handler_in_caller=True))
        successors = icfg.successors(("T.boom", 1))
        throws = [dst for dst, kind in successors if kind is IEdgeKind.THROW]
        assert ("T.main", 2) in throws

    def test_uncaught_throw_has_no_edges(self):
        thrower = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        thrower.new("E").athrow()
        cls = JClass("T")
        cls.add_method(thrower.build())
        program = JProgram("p")
        program.add_class(cls)
        program.add_class(JClass("E"))
        program.set_entry("T", "main")
        icfg = ICFG(program)
        assert icfg.successors(("T.main", 1)) == []


class TestShape:
    def test_node_and_edge_counts(self, figure2):
        icfg = ICFG(figure2)
        total_instructions = sum(len(m.code) for m in figure2.methods())
        assert icfg.node_count() == total_instructions
        assert icfg.edge_count() > 0
        assert len(list(icfg.nodes())) == total_instructions

    def test_predecessors_inverse_of_successors(self, figure2):
        icfg = ICFG(figure2)
        for node in icfg.nodes():
            for dst, kind in icfg.successors(node):
                assert (node, kind) in icfg.predecessors(dst)

    def test_instruction_lookup(self, figure2):
        icfg = ICFG(figure2)
        inst = icfg.instruction(("Test.fun", 0))
        assert inst.bci == 0
