"""Tests for speculative inlining and deoptimisation."""

from repro.core import JPortal
from repro.jvm.assembler import MethodAssembler
from repro.jvm.jit import (
    CodeCache,
    JITCompiler,
    JITPolicy,
    SemGuard,
    SemInlineEnter,
)
from repro.jvm.machine import MIKind
from repro.jvm.model import JClass, JProgram
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.jvm.verifier import verify_program

from ..conftest import analyze_lossless


def _polymorphic_program(sub_every: int):
    """driver.run loops calling ``Base.f`` virtually; every ``sub_every``-th
    receiver is a Sub (guard failure), the rest are Base."""
    base = JClass("Base")
    bf = MethodAssembler("Base", "f", arg_count=1, returns_value=True, is_static=False)
    bf.const(1).ireturn()
    base.add_method(bf.build())
    sub = JClass("Sub", superclass="Base")
    sf = MethodAssembler("Sub", "f", arg_count=1, returns_value=True, is_static=False)
    sf.const(2).ireturn()
    sub.add_method(sf.build())

    work = MethodAssembler("Base", "work", arg_count=1, returns_value=True)
    # locals: 0=receiver, 1=result
    work.aload(0).invokevirtual("Base", "f", 1, True).store(1)
    work.load(1).ireturn()
    base.add_method(work.build())

    main = MethodAssembler("Base", "main", arg_count=0, returns_value=True)
    # locals: 0=i, 1=acc, 2=obj
    main.const(0).store(0)
    main.const(0).store(1)
    main.label("head")
    main.load(0).const(120).if_icmpge("done")
    main.load(0).const(sub_every).irem().ifne("mk_base")
    main.new("Sub").astore(2)
    main.goto("call")
    main.label("mk_base")
    main.new("Base").astore(2)
    main.label("call")
    main.aload(2).invokestatic("Base", "work", 1, True)
    main.load(1).iadd().store(1)
    main.iinc(0, 1).goto("head")
    main.label("done")
    main.load(1).ireturn()
    base.add_method(main.build())

    program = JProgram("spec")
    program.add_class(base)
    program.add_class(sub)
    program.set_entry("Base", "main")
    verify_program(program)
    return program


def _run(program, speculative, threshold=5):
    config = RuntimeConfig(
        cores=1,
        jit=JITPolicy(hot_threshold=threshold, speculative_inlining=speculative),
    )
    runtime = JVMRuntime(program, config)
    runtime.add_thread(name="main")
    return runtime.run()


class TestCodegen:
    def _compile(self, speculative=True):
        program = _polymorphic_program(sub_every=10)
        cache = CodeCache()
        compiler = JITCompiler(
            program, cache, JITPolicy(speculative_inlining=speculative)
        )
        return program, compiler.compile(program.method("Base", "work"))

    def test_guard_emitted_for_polymorphic_site(self):
        _program, code = self._compile()
        guards = [s for s in code.semantic.values() if isinstance(s, SemGuard)]
        enters = [s for s in code.semantic.values() if isinstance(s, SemInlineEnter)]
        assert len(guards) == 1
        assert len(enters) == 1
        assert guards[0].expected_qname == "Base.f"

    def test_guard_is_a_conditional_branch_to_the_stub(self):
        _program, code = self._compile()
        guard_address = next(
            addr for addr, s in code.semantic.items() if isinstance(s, SemGuard)
        )
        mi = code.at(guard_address)
        assert mi.kind is MIKind.COND_BRANCH
        stub = code.at(mi.target)
        assert stub.kind is MIKind.JMP_INDIRECT
        assert stub.text == "deopt-stub"

    def test_guard_has_no_debug_record(self):
        _program, code = self._compile()
        guard_address = next(
            addr for addr, s in code.semantic.items() if isinstance(s, SemGuard)
        )
        assert guard_address not in code.debug

    def test_no_guard_without_speculation(self):
        _program, code = self._compile(speculative=False)
        assert not any(isinstance(s, SemGuard) for s in code.semantic.values())
        # Polymorphic site: no inlining at all, a real call remains.
        kinds = [mi.kind for mi in code.instructions]
        assert MIKind.CALL_INDIRECT in kinds


class TestDeoptExecution:
    def test_results_identical_with_and_without_speculation(self):
        program = _polymorphic_program(sub_every=7)
        plain = _run(program, speculative=False)
        spec = _run(program, speculative=True)
        assert plain.threads[0].result == spec.threads[0].result
        assert plain.threads[0].truth == spec.threads[0].truth

    def test_deopts_counted_on_guard_failures(self):
        program = _polymorphic_program(sub_every=7)
        run = _run(program, speculative=True)
        assert run.counters["deopts"] > 0

    def test_monomorphic_receivers_never_deopt(self):
        # sub_every beyond the loop bound: receivers are always Base.
        program = _polymorphic_program(sub_every=10**6)
        run = _run(program, speculative=True)
        assert run.counters["deopts"] == 0

    def test_deopt_through_nested_inlining(self):
        """work is small enough to inline into main's compiled code? No --
        main is the entry and never compiled; instead check deopt when the
        guard sits inside an inlined body (work inlined would need main
        compiled).  Exercise nested inline frames via OSR-compiled main."""
        program = _polymorphic_program(sub_every=5)
        config = RuntimeConfig(
            cores=1,
            jit=JITPolicy(
                hot_threshold=5,
                speculative_inlining=True,
                osr_threshold=20,
                inline_max_size=20,
            ),
        )
        runtime = JVMRuntime(program, config)
        runtime.add_thread(name="main")
        run = runtime.run()
        plain = _run(program, speculative=False)
        assert run.threads[0].result == plain.threads[0].result
        assert run.counters["deopts"] > 0


class TestDeoptReconstruction:
    def test_lossless_reconstruction_exact_across_deopts(self):
        """The guard's TNT bit makes deoptimisation decodable: a taken
        guard leads the walker to the trap stub, and the interpreter's
        dispatch TIPs take over -- no phantom instructions, exact flow."""
        program = _polymorphic_program(sub_every=6)
        run = _run(program, speculative=True)
        assert run.counters["deopts"] > 0
        result = analyze_lossless(program, run)
        assert result.flow_of(0).reconstructed_nodes() == run.threads[0].truth


class TestRecompilation:
    def test_hot_trap_triggers_recompile_without_speculation(self):
        """After repeated guard failures the method goes not-entrant and is
        recompiled unspeculated; deopts stop afterwards."""
        program = _polymorphic_program(sub_every=2)  # every other call traps
        config = RuntimeConfig(
            cores=1,
            jit=JITPolicy(hot_threshold=3, speculative_inlining=True),
            deopt_recompile_threshold=4,
        )
        runtime = JVMRuntime(program, config)
        runtime.add_thread(name="main")
        run = runtime.run()
        assert run.counters["recompiles"] >= 1
        # The replacement code has no guards.
        new_code = run.code_cache.lookup("Base.work")
        assert new_code is not None
        assert not any(isinstance(s, SemGuard) for s in new_code.semantic.values())
        # Deopts happened only before the recompilation (4 per recompile).
        assert run.counters["deopts"] == 4 * run.counters["recompiles"]

    def test_recompiled_run_still_reconstructs_exactly(self):
        program = _polymorphic_program(sub_every=2)
        config = RuntimeConfig(
            cores=1,
            jit=JITPolicy(hot_threshold=3, speculative_inlining=True),
            deopt_recompile_threshold=4,
        )
        runtime = JVMRuntime(program, config)
        runtime.add_thread(name="main")
        run = runtime.run()
        assert run.counters["recompiles"] >= 1
        result = analyze_lossless(program, run)
        assert result.flow_of(0).reconstructed_nodes() == run.threads[0].truth

    def test_results_unchanged_by_recompilation(self):
        program = _polymorphic_program(sub_every=2)
        plain = _run(program, speculative=False)
        config = RuntimeConfig(
            cores=1,
            jit=JITPolicy(hot_threshold=3, speculative_inlining=True),
            deopt_recompile_threshold=3,
        )
        runtime = JVMRuntime(program, config)
        runtime.add_thread(name="main")
        spec = runtime.run()
        assert plain.threads[0].result == spec.threads[0].result
        assert plain.threads[0].truth == spec.threads[0].truth
