"""Unit tests for bytecode semantics (the semantic step function)."""

import pytest

from repro.jvm.assembler import MethodAssembler
from repro.jvm.interpreter import (
    Frame,
    JArray,
    JObject,
    OutcomeKind,
    Statics,
    TrapKind,
    i32,
    step,
)
from repro.jvm.model import JClass, JProgram
from repro.jvm.opcodes import Op


def _program():
    program = JProgram("t")
    program.add_class(JClass("T"))
    return program


def _run_straight(build, args=(), program=None, max_steps=10_000):
    """Assemble with *build*, run the single method, return final value."""
    asm = MethodAssembler("T", "m", arg_count=len(args), returns_value=True)
    build(asm)
    method = asm.build()
    program = program or _program()
    program.classes["T"].add_method(method)
    frame = Frame.for_call(method, args)
    statics = Statics()
    for _ in range(max_steps):
        outcome = step(frame, program, statics)
        if outcome.kind is OutcomeKind.RETURN:
            return outcome.value
        if outcome.kind is OutcomeKind.THROW:
            return outcome.exception
        frame.bci = outcome.next_bci
    raise AssertionError("did not terminate")


class TestI32:
    def test_wraps_overflow(self):
        assert i32(2**31) == -(2**31)
        assert i32(2**31 - 1) == 2**31 - 1
        assert i32(-(2**31) - 1) == 2**31 - 1
        assert i32(2**32) == 0

    def test_identity_in_range(self):
        for value in (-1, 0, 1, 12345, -99999):
            assert i32(value) == value


class TestArithmetic:
    @pytest.mark.parametrize(
        "emit,expected",
        [
            (lambda a: a.const(3).const(4).iadd(), 7),
            (lambda a: a.const(3).const(4).isub(), -1),
            (lambda a: a.const(3).const(4).imul(), 12),
            (lambda a: a.const(9).const(4).idiv(), 2),
            (lambda a: a.const(9).const(4).irem(), 1),
            (lambda a: a.const(5).ineg(), -5),
            (lambda a: a.const(1).const(3).ishl(), 8),
            (lambda a: a.const(16).const(2).ishr(), 4),
            (lambda a: a.const(0b1100).const(0b1010).iand(), 0b1000),
            (lambda a: a.const(0b1100).const(0b1010).ior(), 0b1110),
            (lambda a: a.const(0b1100).const(0b1010).ixor(), 0b0110),
        ],
    )
    def test_binary_ops(self, emit, expected):
        assert _run_straight(lambda a: (emit(a), a.ireturn())) == expected

    def test_division_truncates_toward_zero(self):
        # JVM semantics, not Python floor division.
        assert _run_straight(lambda a: (a.const(-7).const(2).idiv(), a.ireturn())) == -3
        assert _run_straight(lambda a: (a.const(7).const(-2).idiv(), a.ireturn())) == -3
        assert _run_straight(lambda a: (a.const(-7).const(2).irem(), a.ireturn())) == -1
        assert _run_straight(lambda a: (a.const(7).const(-2).irem(), a.ireturn())) == 1

    def test_divide_by_zero_traps(self):
        result = _run_straight(lambda a: (a.const(1).const(0).idiv(), a.ireturn()))
        assert isinstance(result, JObject)
        assert result.class_name == TrapKind.ARITHMETIC.value

    def test_multiplication_wraps(self):
        result = _run_straight(
            lambda a: (a.const(2**30).const(4).imul(), a.ireturn())
        )
        assert result == 0

    def test_iinc_wraps(self):
        def build(a):
            a.const(2**31 - 1).store(0)
            a.iinc(0, 1)
            a.load(0).ireturn()

        assert _run_straight(build) == -(2**31)


class TestStackOps:
    def test_dup(self):
        assert _run_straight(lambda a: (a.const(5).dup(), a.iadd(), a.ireturn())) == 10

    def test_swap(self):
        assert _run_straight(lambda a: (a.const(8).const(3).swap(), a.isub(), a.ireturn())) == -5

    def test_dup_x1(self):
        # [a, b] -> [b, a, b]; then isub twice: b - (a - b)
        def build(a):
            a.const(10).const(3).dup_x1()
            a.isub()  # a - b = 7
            a.isub()  # b - 7 = -4
            a.ireturn()

        assert _run_straight(build) == -4

    def test_pop(self):
        assert _run_straight(lambda a: (a.const(1).const(2).pop(), a.ireturn())) == 1


class TestBranches:
    @pytest.mark.parametrize(
        "op_name,value,taken",
        [
            ("ifeq", 0, True), ("ifeq", 1, False),
            ("ifne", 0, False), ("ifne", 3, True),
            ("iflt", -1, True), ("iflt", 0, False),
            ("ifge", 0, True), ("ifge", -1, False),
            ("ifgt", 1, True), ("ifgt", 0, False),
            ("ifle", 0, True), ("ifle", 1, False),
        ],
    )
    def test_unary_compares(self, op_name, value, taken):
        def build(a):
            a.const(value)
            getattr(a, op_name)("yes")
            a.const(0).ireturn()
            a.label("yes")
            a.const(1).ireturn()

        assert _run_straight(build) == (1 if taken else 0)

    @pytest.mark.parametrize(
        "op_name,left,right,taken",
        [
            ("if_icmpeq", 2, 2, True), ("if_icmpeq", 2, 3, False),
            ("if_icmpne", 2, 3, True),
            ("if_icmplt", 1, 2, True), ("if_icmplt", 2, 2, False),
            ("if_icmpge", 2, 2, True),
            ("if_icmpgt", 3, 2, True),
            ("if_icmple", 2, 2, True), ("if_icmple", 3, 2, False),
        ],
    )
    def test_binary_compares(self, op_name, left, right, taken):
        def build(a):
            a.const(left).const(right)
            getattr(a, op_name)("yes")
            a.const(0).ireturn()
            a.label("yes")
            a.const(1).ireturn()

        assert _run_straight(build) == (1 if taken else 0)

    def test_reference_compares(self):
        def build(a):
            a.aconst_null().aconst_null().if_acmpeq("same")
            a.const(0).ireturn()
            a.label("same")
            a.const(1).ireturn()

        assert _run_straight(build) == 1

    def test_ifnull_and_ifnonnull(self):
        def build(a):
            a.aconst_null().ifnull("isnull")
            a.const(0).ireturn()
            a.label("isnull")
            a.new("T").ifnonnull("nonnull")
            a.const(1).ireturn()
            a.label("nonnull")
            a.const(2).ireturn()

        assert _run_straight(build) == 2

    def test_tableswitch_dispatch(self):
        def build(a):
            a.const(1).tableswitch({0: "zero", 1: "one"}, "other")
            a.label("zero")
            a.const(100).ireturn()
            a.label("one")
            a.const(200).ireturn()
            a.label("other")
            a.const(300).ireturn()

        assert _run_straight(build) == 200

    def test_switch_default(self):
        def build(a):
            a.const(42).lookupswitch({0: "zero"}, "other")
            a.label("zero")
            a.const(1).ireturn()
            a.label("other")
            a.const(2).ireturn()

        assert _run_straight(build) == 2


class TestArrays:
    def test_store_and_load(self):
        def build(a):
            a.const(4).newarray().astore(0)
            a.aload(0).const(2).const(77).iastore()
            a.aload(0).const(2).iaload().ireturn()

        assert _run_straight(build) == 77

    def test_arraylength(self):
        def build(a):
            a.const(9).newarray().arraylength().ireturn()

        assert _run_straight(build) == 9

    def test_bounds_trap(self):
        def build(a):
            a.const(2).newarray().const(5).iaload().ireturn()

        result = _run_straight(build)
        assert isinstance(result, JObject)
        assert result.class_name == TrapKind.ARRAY_BOUNDS.value

    def test_negative_size_trap(self):
        def build(a):
            a.const(-3).newarray().arraylength().ireturn()

        result = _run_straight(build)
        assert result.class_name == TrapKind.NEGATIVE_ARRAY.value

    def test_null_array_trap(self):
        def build(a):
            a.aconst_null().const(0).iaload().ireturn()

        assert _run_straight(build).class_name == TrapKind.NULL_POINTER.value

    def test_object_arrays(self):
        def build(a):
            a.const(3).anewarray("T").astore(0)
            a.aload(0).const(1).new("T").aastore()
            a.aload(0).const(1).aaload().ifnonnull("ok")
            a.const(0).ireturn()
            a.label("ok")
            a.const(1).ireturn()

        assert _run_straight(build) == 1


class TestObjectsAndFields:
    def test_new_and_fields(self):
        def build(a):
            a.new("T").astore(0)
            a.aload(0).const(5).putfield("T", "x")
            a.aload(0).getfield("T", "x").ireturn()

        assert _run_straight(build) == 5

    def test_uninitialized_field_reads_zero(self):
        def build(a):
            a.new("T").getfield("T", "y").ireturn()

        assert _run_straight(build) == 0

    def test_null_field_access_traps(self):
        def build(a):
            a.aconst_null().getfield("T", "x").ireturn()

        assert _run_straight(build).class_name == TrapKind.NULL_POINTER.value

    def test_statics(self):
        def build(a):
            a.const(9).putstatic("T", "g")
            a.getstatic("T", "g").ireturn()

        assert _run_straight(build) == 9

    def test_statics_default_zero(self):
        def build(a):
            a.getstatic("T", "never_written").ireturn()

        assert _run_straight(build) == 0


class TestCallsAndThrows:
    def test_call_outcome_carries_args(self):
        callee = MethodAssembler("T", "callee", arg_count=2, returns_value=True)
        callee.load(0).load(1).iadd().ireturn()
        caller = MethodAssembler("T", "m", arg_count=0, returns_value=True)
        caller.const(3).const(4).invokestatic("T", "callee", 2, True).ireturn()
        program = _program()
        program.classes["T"].add_method(callee.build())
        method = caller.build()
        program.classes["T"].add_method(method)
        frame = Frame.for_call(method, ())
        statics = Statics()
        outcome = step(frame, program, statics)  # const 3
        frame.bci = outcome.next_bci
        outcome = step(frame, program, statics)  # const 4
        frame.bci = outcome.next_bci
        outcome = step(frame, program, statics)  # invokestatic
        assert outcome.kind is OutcomeKind.CALL
        assert outcome.callee.qualified_name == "T.callee"
        assert outcome.args == (3, 4)
        assert frame.stack == []  # args consumed

    def test_virtual_dispatch_resolves_by_receiver(self):
        program = JProgram("vd")
        base = JClass("Base")
        base_m = MethodAssembler("Base", "f", arg_count=1, returns_value=True, is_static=False)
        base_m.const(1).ireturn()
        base.add_method(base_m.build())
        sub = JClass("Sub", superclass="Base")
        sub_m = MethodAssembler("Sub", "f", arg_count=1, returns_value=True, is_static=False)
        sub_m.const(2).ireturn()
        sub.add_method(sub_m.build())
        program.add_class(base)
        program.add_class(sub)
        caller = MethodAssembler("Base", "m", arg_count=0, returns_value=True)
        caller.new("Sub").invokevirtual("Base", "f", 1, True).ireturn()
        method = caller.build()
        base.add_method(method)
        frame = Frame.for_call(method, ())
        statics = Statics()
        outcome = step(frame, program, statics)  # new Sub
        frame.bci = outcome.next_bci
        outcome = step(frame, program, statics)  # invokevirtual
        assert outcome.kind is OutcomeKind.CALL
        assert outcome.callee.qualified_name == "Sub.f"

    def test_virtual_call_on_null_traps(self):
        def build(a):
            a.aconst_null().invokevirtual("T", "f", 1, True).ireturn()

        assert _run_straight(build).class_name == TrapKind.NULL_POINTER.value

    def test_athrow_explicit(self):
        def build(a):
            a.new("MyError").athrow()

        result = _run_straight(build)
        assert isinstance(result, JObject)
        assert result.class_name == "MyError"

    def test_athrow_null_traps_as_npe(self):
        def build(a):
            a.aconst_null().athrow()

        assert _run_straight(build).class_name == TrapKind.NULL_POINTER.value
