"""Unit tests for the JIT compiler: codegen, debug info, inlining, cache."""

import pytest

from repro.jvm.assembler import MethodAssembler
from repro.jvm.jit import (
    CodeCache,
    JITCompiler,
    JITError,
    JITPolicy,
    SemBytecode,
    SemInlineEnter,
    SemInlineReturn,
)
from repro.jvm.machine import DEFAULT_ADDRESS_SPACE, MIKind
from repro.jvm.model import JClass, JProgram


def _program_with(*assemblers, entry="main"):
    cls = JClass("T")
    for asm in assemblers:
        cls.add_method(asm.build())
    program = JProgram("p")
    program.add_class(cls)
    program.set_entry("T", entry)
    return program


def _diamond_main():
    asm = MethodAssembler("T", "main", arg_count=1, returns_value=True)
    asm.load(0).ifeq("else_")
    asm.const(10).goto("join")
    asm.label("else_")
    asm.const(20)
    asm.label("join")
    asm.ireturn()
    return asm


def _compile(program, qname="T.main", policy=None):
    cache = CodeCache()
    compiler = JITCompiler(program, cache, policy or JITPolicy())
    class_name, method_name = qname.rsplit(".", 1)
    return compiler.compile(program.method(class_name, method_name)), cache


class TestCodegenStructure:
    def test_addresses_in_code_cache(self):
        program = _program_with(_diamond_main())
        code, _cache = _compile(program)
        for mi in code.instructions:
            assert DEFAULT_ADDRESS_SPACE.in_code_cache(mi.address)
        assert code.entry == code.instructions[0].address

    def test_instructions_contiguous(self):
        program = _program_with(_diamond_main())
        code, _cache = _compile(program)
        for a, b in zip(code.instructions, code.instructions[1:]):
            assert b.address == a.end

    def test_every_bytecode_has_a_semantic_mi(self):
        program = _program_with(_diamond_main())
        code, _cache = _compile(program)
        method = program.method("T", "main")
        covered = {
            (sem.qname, sem.bci)
            for sem in code.semantic.values()
            if isinstance(sem, SemBytecode)
        }
        for inst in method.code:
            assert ("T.main", inst.bci) in covered

    def test_conditional_targets_resolved(self):
        program = _program_with(_diamond_main())
        code, _cache = _compile(program)
        branches = [mi for mi in code.instructions if mi.kind is MIKind.COND_BRANCH]
        assert len(branches) == 1
        target = branches[0].target
        # target must be the address of the else-arm bytecode (bci 4)
        assert target == code.entry_points[((), "T.main", 4)]

    def test_prologue_has_no_semantic(self):
        program = _program_with(_diamond_main())
        code, _cache = _compile(program)
        first = code.instructions[0]
        assert first.address not in code.semantic
        assert first.address not in code.debug

    def test_returns_become_ret(self):
        program = _program_with(_diamond_main())
        code, _cache = _compile(program)
        rets = [mi for mi in code.instructions if mi.kind is MIKind.RET]
        assert len(rets) == 1

    def test_layout_bridges_have_no_debug_records(self):
        program = _program_with(_diamond_main())
        code, _cache = _compile(program)
        for mi in code.instructions:
            if mi.text == "jmp-layout":
                assert mi.address not in code.debug
                assert mi.kind is MIKind.JMP_DIRECT

    def test_at_and_after(self):
        program = _program_with(_diamond_main())
        code, _cache = _compile(program)
        first = code.instructions[0]
        assert code.at(first.address) is first
        assert code.after(first) is code.instructions[1]
        assert code.after(code.instructions[-1]) is None

    def test_switch_compiles_to_indirect_jump(self):
        asm = MethodAssembler("T", "main", arg_count=1, returns_value=True)
        asm.load(0).tableswitch({0: "a"}, "b")
        asm.label("a")
        asm.const(1).ireturn()
        asm.label("b")
        asm.const(2).ireturn()
        program = _program_with(asm)
        code, _cache = _compile(program)
        indirect = [mi for mi in code.instructions if mi.kind is MIKind.JMP_INDIRECT]
        assert len(indirect) == 1

    def test_athrow_compiles_to_indirect_jump(self):
        asm = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        asm.new("E").athrow()
        program = _program_with(asm)
        program.add_class(JClass("E"))
        code, _cache = _compile(program)
        indirect = [mi for mi in code.instructions if mi.kind is MIKind.JMP_INDIRECT]
        assert len(indirect) == 1


class TestDebugInfo:
    def test_debug_frames_point_to_root_method(self):
        program = _program_with(_diamond_main())
        code, _cache = _compile(program)
        for address, frames in code.debug.items():
            assert frames[-1][0] == "T.main"
            assert frames[-1][1] >= 0

    def test_debug_covers_all_semantic_addresses(self):
        program = _program_with(_diamond_main())
        code, _cache = _compile(program)
        assert set(code.debug) == set(code.semantic)


class TestCalls:
    def _caller_callee(self, callee_len=30):
        callee = MethodAssembler("T", "callee", arg_count=1, returns_value=True)
        for _ in range(callee_len):
            callee.nop()
        callee.load(0).ireturn()
        caller = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        caller.const(1).invokestatic("T", "callee", 1, True).ireturn()
        return caller, callee

    def test_uncompiled_callee_gets_indirect_call(self):
        caller, callee = self._caller_callee()
        program = _program_with(caller, callee)
        code, _cache = _compile(program)
        kinds = [mi.kind for mi in code.instructions]
        assert MIKind.CALL_INDIRECT in kinds
        assert MIKind.CALL_DIRECT not in kinds

    def test_compiled_callee_gets_direct_call(self):
        caller, callee = self._caller_callee()
        program = _program_with(caller, callee)
        cache = CodeCache()
        compiler = JITCompiler(program, cache, JITPolicy())
        callee_code = compiler.compile(program.method("T", "callee"))
        caller_code = compiler.compile(program.method("T", "main"))
        directs = [
            mi for mi in caller_code.instructions if mi.kind is MIKind.CALL_DIRECT
        ]
        assert len(directs) == 1
        assert directs[0].target == callee_code.entry

    def test_virtual_calls_always_indirect(self):
        program = JProgram("v")
        base = JClass("Base")
        bf = MethodAssembler("Base", "f", arg_count=1, returns_value=True, is_static=False)
        for _ in range(30):
            bf.nop()
        bf.const(1).ireturn()
        base.add_method(bf.build())
        sub = JClass("Sub", superclass="Base")
        sf = MethodAssembler("Sub", "f", arg_count=1, returns_value=True, is_static=False)
        sf.const(2).ireturn()
        sub.add_method(sf.build())
        main = MethodAssembler("Base", "main", arg_count=0, returns_value=True)
        main.new("Sub").invokevirtual("Base", "f", 1, True).ireturn()
        base.add_method(main.build())
        program.add_class(base)
        program.add_class(sub)
        program.set_entry("Base", "main")
        cache = CodeCache()
        compiler = JITCompiler(program, cache, JITPolicy())
        code = compiler.compile(program.method("Base", "main"))
        kinds = [mi.kind for mi in code.instructions]
        assert MIKind.CALL_INDIRECT in kinds


class TestInlining:
    def _inline_pair(self):
        callee = MethodAssembler("T", "tiny", arg_count=1, returns_value=True)
        callee.load(0).const(1).iadd().ireturn()
        caller = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        caller.const(5).invokestatic("T", "tiny", 1, True).ireturn()
        return caller, callee

    def test_small_callee_is_inlined(self):
        caller, callee = self._inline_pair()
        program = _program_with(caller, callee)
        code, _cache = _compile(program)
        enters = [
            sem for sem in code.semantic.values() if isinstance(sem, SemInlineEnter)
        ]
        assert len(enters) == 1
        assert enters[0].callee_qname == "T.tiny"
        # no call instruction remains
        assert all(
            mi.kind not in (MIKind.CALL_DIRECT, MIKind.CALL_INDIRECT)
            for mi in code.instructions
        )

    def test_inline_return_jumps_to_continuation(self):
        caller, callee = self._inline_pair()
        program = _program_with(caller, callee)
        code, _cache = _compile(program)
        returns = [
            (address, sem)
            for address, sem in code.semantic.items()
            if isinstance(sem, SemInlineReturn)
        ]
        assert len(returns) == 1
        address, sem = returns[0]
        mi = code.at(address)
        assert mi.kind is MIKind.JMP_DIRECT
        assert mi.target == code.entry_points[((), "T.main", 1, "cont")]

    def test_inlined_debug_frames_include_call_site(self):
        caller, callee = self._inline_pair()
        program = _program_with(caller, callee)
        code, _cache = _compile(program)
        inlined_frames = [
            frames for frames in code.debug.values() if len(frames) == 2
        ]
        assert inlined_frames
        for frames in inlined_frames:
            assert frames[0] == ("T.main", 1)  # the call site
            assert frames[1][0] == "T.tiny"

    def test_inlining_disabled_by_policy(self):
        caller, callee = self._inline_pair()
        program = _program_with(caller, callee)
        code, _cache = _compile(program, policy=JITPolicy(enable_inlining=False))
        assert not any(
            isinstance(sem, SemInlineEnter) for sem in code.semantic.values()
        )

    def test_no_self_inlining(self):
        rec = MethodAssembler("T", "main", arg_count=1, returns_value=True)
        rec.load(0).ifgt("go")
        rec.const(0).ireturn()
        rec.label("go")
        rec.load(0).const(1).isub().invokestatic("T", "main", 1, True).ireturn()
        program = _program_with(rec)
        code, _cache = _compile(program)
        assert not any(
            isinstance(sem, SemInlineEnter) for sem in code.semantic.values()
        )

    def test_polymorphic_site_not_inlined(self):
        program = JProgram("v")
        base = JClass("Base")
        bf = MethodAssembler("Base", "f", arg_count=1, returns_value=True, is_static=False)
        bf.const(1).ireturn()
        base.add_method(bf.build())
        sub = JClass("Sub", superclass="Base")
        sf = MethodAssembler("Sub", "f", arg_count=1, returns_value=True, is_static=False)
        sf.const(2).ireturn()
        sub.add_method(sf.build())
        main = MethodAssembler("Base", "main", arg_count=0, returns_value=True)
        main.new("Sub").invokevirtual("Base", "f", 1, True).ireturn()
        base.add_method(main.build())
        program.add_class(base)
        program.add_class(sub)
        program.set_entry("Base", "main")
        cache = CodeCache()
        code = JITCompiler(program, cache, JITPolicy()).compile(
            program.method("Base", "main")
        )
        assert not any(
            isinstance(sem, SemInlineEnter) for sem in code.semantic.values()
        )

    def test_nested_inlining_respects_depth(self):
        c = MethodAssembler("T", "c", arg_count=1, returns_value=True)
        c.load(0).const(1).iadd().ireturn()
        b = MethodAssembler("T", "b", arg_count=1, returns_value=True)
        b.load(0).invokestatic("T", "c", 1, True).ireturn()
        a = MethodAssembler("T", "a", arg_count=1, returns_value=True)
        a.load(0).invokestatic("T", "b", 1, True).ireturn()
        main = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        main.const(1).invokestatic("T", "a", 1, True).ireturn()
        program = _program_with(main, a, b, c)
        code, _cache = _compile(program, policy=JITPolicy(inline_max_depth=2))
        depths = [len(frames) for frames in code.debug.values()]
        assert max(depths) == 3  # main -> a -> b inlined; c called


class TestCodeCache:
    def test_lookup_and_code_at(self):
        program = _program_with(_diamond_main())
        code, cache = _compile(program)
        assert cache.lookup("T.main") is code
        assert cache.code_at(code.entry) is code
        assert cache.code_at(code.entry - 1) is None

    def test_eviction_records_unload(self):
        program = _program_with(_diamond_main())
        code, cache = _compile(program)
        cache.evict("T.main", tsc=500)
        assert cache.lookup("T.main") is None
        assert code.unload_tsc == 500
        assert code in cache.all_code()

    def test_exhaustion_raises(self):
        program = _program_with(_diamond_main())
        cache = CodeCache()
        with pytest.raises(JITError):
            cache.allocate(10**12)

    def test_should_compile_threshold(self):
        program = _program_with(_diamond_main())
        compiler = JITCompiler(program, CodeCache(), JITPolicy(hot_threshold=5))
        method = program.method("T", "main")
        assert not compiler.should_compile(method, 4)
        assert compiler.should_compile(method, 5)

    def test_oversized_method_not_compiled(self):
        asm = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        for _ in range(50):
            asm.nop()
        asm.const(0).ireturn()
        program = _program_with(asm)
        compiler = JITCompiler(
            program, CodeCache(), JITPolicy(hot_threshold=1, max_compile_size=10)
        )
        assert not compiler.should_compile(program.method("T", "main"), 100)
