"""Tests for the textual disassembler."""

from repro.jvm.disasm import (
    debug_info_listing,
    disassemble_method,
    disassemble_native,
    disassemble_program,
    template_metadata_listing,
)
from repro.jvm.jit import CodeCache, JITCompiler, JITPolicy
from repro.jvm.templates import TemplateTable

from ..conftest import build_figure2_program


class TestBytecodeListing:
    def test_method_listing_contains_all_bcis(self):
        program = build_figure2_program()
        method = program.method("Test", "fun")
        listing = disassemble_method(method)
        for inst in method.code:
            assert "%4d: " % inst.bci in listing
        assert "Test.fun" in listing

    def test_handlers_rendered(self):
        from repro.jvm.assembler import MethodAssembler

        asm = MethodAssembler("T", "m", arg_count=0, returns_value=True)
        asm.const(1).const(0).idiv().ireturn()
        asm.pop().const(-1).ireturn()
        asm.handler(0, 4, 4)
        listing = disassemble_method(asm.build())
        assert "catch [0, 4) -> 4" in listing

    def test_program_listing_covers_all_methods(self):
        program = build_figure2_program()
        listing = disassemble_program(program)
        assert "Test.fun" in listing and "Test.main" in listing


class TestTemplateListing:
    def test_selected_mnemonics(self):
        table = TemplateTable()
        listing = template_metadata_listing(table, ["iload_0", "ifeq"])
        lines = listing.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("iload_0")
        assert "[0x" in lines[0]
        # Conditionals have two sub-ranges.
        assert lines[1].count("[0x") == 2

    def test_full_listing_sorted(self):
        table = TemplateTable()
        listing = template_metadata_listing(table)
        lines = listing.splitlines()
        assert lines == sorted(lines, key=lambda l: l.split()[0])


class TestNativeListing:
    def _compiled(self):
        program = build_figure2_program()
        cache = CodeCache()
        compiler = JITCompiler(program, cache, JITPolicy())
        return compiler.compile(program.method("Test", "fun"))

    def test_native_listing_shows_every_instruction(self):
        code = self._compiled()
        listing = disassemble_native(code)
        assert listing.count("0x") >= len(code.instructions)
        assert "Test.fun@" in listing

    def test_debug_listing_matches_records(self):
        code = self._compiled()
        listing = debug_info_listing(code)
        assert len(listing.splitlines()) == len(code.debug)
        assert "pc=0x" in listing
