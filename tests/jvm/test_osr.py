"""Tests for on-stack replacement (OSR)."""

from repro.core import JPortal
from repro.jvm.assembler import MethodAssembler
from repro.jvm.jit import JITPolicy
from repro.jvm.model import JClass, JProgram
from repro.jvm.runtime import RuntimeConfig, run_program
from repro.jvm.verifier import verify_program

from ..conftest import analyze_lossless, build_figure2_program


def _long_loop_program(iterations=2_000):
    """A single main with one hot loop: without OSR it never compiles."""
    asm = MethodAssembler("T", "main", arg_count=0, returns_value=True)
    asm.const(iterations).store(0)
    asm.const(0).store(1)
    asm.label("head")
    asm.load(0).ifle("done")
    asm.load(1).load(0).iadd().const(0x7FFFFFFF).iand().store(1)
    asm.iinc(0, -1).goto("head")
    asm.label("done")
    asm.load(1).ireturn()
    cls = JClass("T")
    cls.add_method(asm.build())
    program = JProgram("osr")
    program.add_class(cls)
    program.set_entry("T", "main")
    verify_program(program)
    return program


def _config(osr_threshold):
    return RuntimeConfig(
        cores=1, jit=JITPolicy(hot_threshold=10**9, osr_threshold=osr_threshold)
    )


class TestOSRTransition:
    def test_disabled_by_default(self):
        result = run_program(_long_loop_program(), RuntimeConfig(cores=1))
        assert result.counters["osr_transitions"] == 0

    def test_hot_loop_triggers_osr(self):
        result = run_program(_long_loop_program(), _config(osr_threshold=100))
        assert result.counters["osr_transitions"] == 1
        assert result.counters["compiles"] == 1
        assert result.counters["steps_compiled"] > result.counters["steps_interp"]

    def test_result_unchanged_by_osr(self):
        baseline = run_program(_long_loop_program(), _config(osr_threshold=0))
        osr = run_program(_long_loop_program(), _config(osr_threshold=100))
        assert baseline.threads[0].result == osr.threads[0].result

    def test_truth_unchanged_by_osr(self):
        baseline = run_program(_long_loop_program(500), _config(osr_threshold=0))
        osr = run_program(_long_loop_program(500), _config(osr_threshold=50))
        assert baseline.threads[0].truth == osr.threads[0].truth

    def test_osr_entry_mid_method(self):
        """After OSR the activation executes compiled code from the loop
        header, not the method entry."""
        program = _long_loop_program(500)
        result = run_program(program, _config(osr_threshold=50))
        code = result.code_cache.lookup("T.main")
        assert code is not None
        # No invoke ever ran (main is the thread entry), so invocation-based
        # tiering cannot explain the compiled steps.
        assert result.counters["invocations"] == 0


class TestOSRReconstruction:
    def test_lossless_reconstruction_across_osr(self):
        """The decoder sees an unexplained TIP into the code cache at the
        loop header and must pick up the walk there; the projection must
        still be exact."""
        program = _long_loop_program(800)
        result = run_program(program, _config(osr_threshold=100))
        assert result.counters["osr_transitions"] == 1
        analysis = analyze_lossless(program, result)
        assert analysis.flow_of(0).reconstructed_nodes() == result.threads[0].truth

    def test_osr_with_calls_in_loop(self):
        program = build_figure2_program(iterations=300)
        config = RuntimeConfig(
            cores=1, jit=JITPolicy(hot_threshold=10**9, osr_threshold=50)
        )
        result = run_program(program, config)
        assert result.counters["osr_transitions"] >= 1
        analysis = analyze_lossless(program, result)
        assert analysis.flow_of(0).reconstructed_nodes() == result.threads[0].truth
