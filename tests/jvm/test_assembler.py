"""Unit tests for the label-based assembler."""

import pytest

from repro.jvm.assembler import AssemblyError, MethodAssembler, assemble_counting_loop
from repro.jvm.instructions import MethodRef
from repro.jvm.opcodes import Op


def _asm(**kwargs):
    defaults = dict(class_name="T", name="m", arg_count=0, returns_value=True)
    defaults.update(kwargs)
    return MethodAssembler(**defaults)


class TestBasics:
    def test_bcis_are_sequential(self):
        asm = _asm()
        asm.const(1).const(2).iadd().ireturn()
        method = asm.build()
        assert [inst.bci for inst in method.code] == [0, 1, 2, 3]

    def test_chaining_returns_self(self):
        asm = _asm()
        assert asm.const(0) is asm

    def test_empty_method_rejected(self):
        with pytest.raises(AssemblyError):
            _asm().build()

    def test_qualified_name(self):
        asm = _asm(class_name="Foo", name="bar")
        asm.return_()
        assert asm.build().qualified_name == "Foo.bar"


class TestConstants:
    def test_small_constants_specialize(self):
        asm = _asm()
        for value in (-1, 0, 1, 2, 3, 4, 5):
            asm.const(value)
        asm.const(0).ireturn()
        method = asm.build()
        expected = [
            Op.ICONST_M1, Op.ICONST_0, Op.ICONST_1, Op.ICONST_2,
            Op.ICONST_3, Op.ICONST_4, Op.ICONST_5,
        ]
        assert [inst.op for inst in method.code[:7]] == expected

    def test_byte_and_short_and_wide_constants(self):
        asm = _asm()
        asm.const(100).const(30000).const(100000).const(0).ireturn()
        method = asm.build()
        assert method.code[0].op is Op.BIPUSH
        assert method.code[0].const == 100
        assert method.code[1].op is Op.SIPUSH
        assert method.code[2].op is Op.LDC
        assert method.code[2].const == 100000

    def test_negative_boundaries(self):
        asm = _asm()
        asm.const(-128).const(-129).const(-32768).const(-32769).const(0).ireturn()
        method = asm.build()
        assert method.code[0].op is Op.BIPUSH
        assert method.code[1].op is Op.SIPUSH
        assert method.code[2].op is Op.SIPUSH
        assert method.code[3].op is Op.LDC


class TestLocals:
    def test_loads_and_stores_specialize(self):
        asm = _asm()
        asm.const(0).store(0)
        asm.const(0).store(4)
        asm.load(0).load(4).iadd().ireturn()
        method = asm.build()
        ops = [inst.op for inst in method.code]
        assert Op.ISTORE_0 in ops
        assert Op.ISTORE in ops  # index 4 stays generic
        assert Op.ILOAD_0 in ops
        assert Op.ILOAD in ops

    def test_max_locals_tracked(self):
        asm = _asm()
        asm.const(0).store(7).const(0).ireturn()
        assert asm.build().max_locals == 8

    def test_max_locals_override_checked(self):
        asm = _asm(max_locals=2)
        asm.const(0).store(5).const(0).ireturn()
        with pytest.raises(AssemblyError):
            asm.build()

    def test_negative_local_rejected(self):
        with pytest.raises(AssemblyError):
            _asm().load(-1)

    def test_args_count_toward_max_locals(self):
        asm = _asm(arg_count=3)
        asm.const(0).ireturn()
        assert asm.build().max_locals == 3


class TestLabels:
    def test_forward_and_backward_references(self):
        asm = _asm()
        asm.label("start")
        asm.const(1).ifeq("end")
        asm.goto("start")
        asm.label("end")
        asm.const(0).ireturn()
        method = asm.build()
        assert method.code[1].target == 3  # forward to "end"
        assert method.code[2].target == 0  # backward to "start"

    def test_duplicate_label_rejected(self):
        asm = _asm()
        asm.label("x")
        with pytest.raises(AssemblyError):
            asm.label("x")

    def test_undefined_label_rejected(self):
        asm = _asm()
        asm.goto("nowhere").const(0).ireturn()
        with pytest.raises(AssemblyError):
            asm.build()

    def test_integer_targets_pass_through(self):
        asm = _asm()
        asm.goto(2)
        asm.nop()
        asm.const(0).ireturn()
        assert asm.build().code[0].target == 2

    def test_here_reports_next_bci(self):
        asm = _asm()
        assert asm.here() == 0
        asm.nop()
        assert asm.here() == 1


class TestSwitch:
    def test_tableswitch_resolution(self):
        asm = _asm()
        asm.const(1).tableswitch({0: "a", 1: "b"}, "d")
        asm.label("a")
        asm.const(10).ireturn()
        asm.label("b")
        asm.const(20).ireturn()
        asm.label("d")
        asm.const(0).ireturn()
        method = asm.build()
        table = method.code[1].switch
        assert table.target_for(0) == 2
        assert table.target_for(1) == 4
        assert table.target_for(99) == 6
        assert set(table.all_targets()) == {2, 4, 6}

    def test_lookupswitch_sparse_keys(self):
        asm = _asm()
        asm.const(7).lookupswitch({-5: "a", 700: "a"}, "a")
        asm.label("a")
        asm.const(0).ireturn()
        table = asm.build().code[1].switch
        assert table.target_for(-5) == 2
        assert table.target_for(700) == 2
        assert table.target_for(0) == 2


class TestCallsAndHandlers:
    def test_invokestatic_ref(self):
        asm = _asm()
        asm.const(1).invokestatic("Lib", "f", 1, True).ireturn()
        ref = asm.build().code[1].methodref
        assert ref == MethodRef("Lib", "f", 1, True)

    def test_handler_ranges_resolve(self):
        asm = _asm()
        asm.label("try")
        asm.const(1).const(0).idiv()
        asm.label("endtry")
        asm.ireturn()
        asm.label("catch")
        asm.pop().const(-1).ireturn()
        asm.handler("try", "endtry", "catch")
        method = asm.build()
        handler = method.handlers[0]
        assert (handler.start, handler.end, handler.handler) == (0, 3, 4)
        assert handler.covers(1)
        assert not handler.covers(3)


class TestCountingLoopHelper:
    def test_structure_and_verifies(self):
        from repro.jvm.verifier import verify_method

        method = assemble_counting_loop("T", "loop", iterations=5)
        verify_method(method)
        assert method.returns_value
