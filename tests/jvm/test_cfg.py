"""Unit tests for basic-block CFG construction."""

from repro.jvm.assembler import MethodAssembler
from repro.jvm.cfg import CFG, EdgeKind, loop_depths


def _asm(**kwargs):
    defaults = dict(class_name="T", name="m", arg_count=0, returns_value=True)
    defaults.update(kwargs)
    return MethodAssembler(**defaults)


def _diamond():
    asm = _asm()
    asm.const(1).ifeq("else_")
    asm.const(10).goto("join")
    asm.label("else_")
    asm.const(20)
    asm.label("join")
    asm.ireturn()
    return asm.build()


def _loop():
    asm = _asm()
    asm.const(5).store(0)
    asm.label("head")
    asm.load(0).ifle("done")
    asm.iinc(0, -1).goto("head")
    asm.label("done")
    asm.const(0).ireturn()
    return asm.build()


class TestBlocks:
    def test_straightline_is_one_block(self):
        asm = _asm()
        asm.const(1).const(2).iadd().ireturn()
        cfg = CFG(asm.build())
        assert len(cfg.blocks) == 1
        assert len(cfg.blocks[0]) == 4

    def test_diamond_block_structure(self):
        cfg = CFG(_diamond())
        # entry, then-arm, else-arm, join
        assert len(cfg.blocks) == 4
        assert cfg.entry.start == 0

    def test_block_of_maps_every_bci(self):
        method = _diamond()
        cfg = CFG(method)
        for inst in method.code:
            block = cfg.block_of(inst.bci)
            assert block.start <= inst.bci < block.end

    def test_blocks_partition_the_method(self):
        method = _loop()
        cfg = CFG(method)
        covered = sorted(bci for block in cfg.blocks for bci in block.bcis())
        assert covered == list(range(len(method.code)))


class TestEdges:
    def test_diamond_edges(self):
        cfg = CFG(_diamond())
        entry = cfg.blocks[0]
        kinds = {edge.kind for edge in entry.successors}
        assert kinds == {EdgeKind.FALLTHROUGH, EdgeKind.TAKEN}
        join = cfg.block_of(5)
        assert len(join.predecessors) == 2

    def test_return_block_has_no_successors(self):
        cfg = CFG(_diamond())
        exit_block = cfg.block_of(5)
        assert exit_block.successors == []

    def test_switch_edges(self):
        asm = _asm()
        asm.const(0).tableswitch({0: "a", 1: "b"}, "c")
        asm.label("a")
        asm.const(1).ireturn()
        asm.label("b")
        asm.const(2).ireturn()
        asm.label("c")
        asm.const(3).ireturn()
        cfg = CFG(asm.build())
        switch_block = cfg.block_of(1)
        assert len(switch_block.successors) == 3
        assert all(e.kind is EdgeKind.SWITCH for e in switch_block.successors)

    def test_exception_edges(self):
        asm = _asm()
        asm.label("try")
        asm.const(1).const(0).idiv().ireturn()
        asm.label("catch")
        asm.pop().const(-1).ireturn()
        asm.handler("try", 4, "catch")
        cfg = CFG(asm.build())
        handler_block = cfg.block_of(4)
        assert any(
            edge.kind is EdgeKind.EXCEPTION for edge in handler_block.predecessors
        )


class TestOrdersAndLoops:
    def test_reverse_postorder_starts_at_entry(self):
        cfg = CFG(_loop())
        order = cfg.reverse_postorder()
        assert order[0] == 0
        assert sorted(order) == [b.block_id for b in cfg.blocks]

    def test_back_edges_found(self):
        cfg = CFG(_loop())
        back = cfg.back_edges()
        assert len(back) == 1
        # latch jumps back to the loop head (block containing bci 2)
        assert back[0].dst == cfg.block_of(2).block_id

    def test_acyclic_has_no_back_edges(self):
        assert CFG(_diamond()).back_edges() == []

    def test_loop_depths(self):
        cfg = CFG(_loop())
        depths = loop_depths(cfg)
        head = cfg.block_of(2).block_id
        assert depths[head] == 1
        assert depths[cfg.entry.block_id] == 0

    def test_nested_loops_depth_two(self):
        asm = _asm()
        asm.const(3).store(0)
        asm.label("outer")
        asm.load(0).ifle("done")
        asm.const(3).store(1)
        asm.label("inner")
        asm.load(1).ifle("outer_next")
        asm.iinc(1, -1).goto("inner")
        asm.label("outer_next")
        asm.iinc(0, -1).goto("outer")
        asm.label("done")
        asm.const(0).ireturn()
        cfg = CFG(asm.build())
        depths = loop_depths(cfg)
        assert max(depths.values()) == 2

    def test_unreachable_blocks_still_ordered(self):
        asm = _asm()
        asm.goto("end")
        asm.const(99).ireturn()  # unreachable
        asm.label("end")
        asm.const(0).ireturn()
        cfg = CFG(asm.build())
        order = cfg.reverse_postorder()
        assert sorted(order) == [b.block_id for b in cfg.blocks]
