"""Unit/integration tests for the tiered runtime."""

import pytest

from repro.jvm.assembler import MethodAssembler
from repro.jvm.jit import JITPolicy
from repro.jvm.machine import (
    DisableEvent,
    EnableEvent,
    FupEvent,
    TipEvent,
    TntEvent,
)
from repro.jvm.model import JClass, JProgram
from repro.jvm.runtime import (
    ExecutionBudgetExceeded,
    JVMRuntime,
    RuntimeConfig,
    run_program,
)
from repro.jvm.verifier import verify_program

from ..conftest import build_figure2_program


def _program(*assemblers, entry="main", extra_classes=()):
    cls = JClass("T")
    for asm in assemblers:
        cls.add_method(asm.build())
    program = JProgram("p")
    program.add_class(cls)
    for extra in extra_classes:
        program.add_class(extra)
    program.set_entry("T", entry)
    verify_program(program)
    return program


def _fib_program():
    fib = MethodAssembler("T", "fib", arg_count=1, returns_value=True)
    fib.load(0).const(2).if_icmpge("rec")
    fib.load(0).ireturn()
    fib.label("rec")
    fib.load(0).const(1).isub().invokestatic("T", "fib", 1, True)
    fib.load(0).const(2).isub().invokestatic("T", "fib", 1, True)
    fib.iadd().ireturn()
    main = MethodAssembler("T", "main", arg_count=0, returns_value=True)
    main.const(12).invokestatic("T", "fib", 1, True).ireturn()
    return _program(main, fib)


class TestExecutionCorrectness:
    def test_figure2_result(self):
        program = build_figure2_program(iterations=50)
        result = run_program(program, RuntimeConfig(cores=1))
        assert result.threads[0].result == 50  # fun() is always true here

    def test_recursive_fib(self):
        result = run_program(_fib_program(), RuntimeConfig(cores=1))
        assert result.threads[0].result == 144

    def test_result_independent_of_tiering(self):
        for threshold in (1, 3, 1000):
            config = RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=threshold))
            result = run_program(_fib_program(), config)
            assert result.threads[0].result == 144

    def test_result_independent_of_inlining(self):
        for inlining in (True, False):
            config = RuntimeConfig(
                cores=1, jit=JITPolicy(hot_threshold=2, enable_inlining=inlining)
            )
            result = run_program(_fib_program(), config)
            assert result.threads[0].result == 144

    def test_truth_identical_across_tiering(self):
        """Ground-truth bytecode paths must not depend on execution mode."""
        paths = []
        for threshold in (2, 10**9):
            config = RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=threshold))
            result = run_program(_fib_program(), config)
            paths.append(result.threads[0].truth)
        assert paths[0] == paths[1]


class TestTiering:
    def test_hot_method_compiled(self):
        config = RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=5))
        result = run_program(_fib_program(), config)
        assert result.counters["compiles"] >= 1
        assert result.code_cache.lookup("T.fib") is not None

    def test_cold_threshold_never_compiles(self):
        config = RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=10**9))
        result = run_program(_fib_program(), config)
        assert result.counters["compiles"] == 0
        assert result.counters["steps_compiled"] == 0

    def test_mixed_mode_steps_counted(self):
        config = RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=5))
        result = run_program(_fib_program(), config)
        counters = result.counters
        assert counters["steps_interp"] > 0
        assert counters["steps_compiled"] > 0
        assert counters["steps"] == counters["steps_interp"] + counters["steps_compiled"]


class TestEventEmission:
    def test_one_tip_per_interpreted_step(self):
        config = RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=10**9))
        result = run_program(build_figure2_program(10), config)
        tips = [e for e in result.core_events[0] if isinstance(e, TipEvent)]
        assert len(tips) == result.counters["steps_interp"]

    def test_tnt_per_interpreted_conditional(self):
        config = RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=10**9))
        result = run_program(build_figure2_program(10), config)
        tnts = [e for e in result.core_events[0] if isinstance(e, TntEvent)]
        from repro.jvm.opcodes import Kind, info

        cond_steps = sum(
            1
            for qname, bci in result.threads[0].truth
            if info(
                result.program.method(*qname.rsplit(".", 1)).code[bci].op
            ).kind
            is Kind.COND
        )
        assert len(tnts) == cond_steps

    def test_compiled_code_emits_fewer_events(self):
        interp = run_program(
            build_figure2_program(60),
            RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=10**9)),
        )
        mixed = run_program(
            build_figure2_program(60),
            RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=3)),
        )
        assert mixed.event_count() < interp.event_count()

    def test_timestamps_monotonic(self):
        result = run_program(build_figure2_program(20), RuntimeConfig(cores=1))
        timestamps = [e.tsc for e in result.core_events[0]]
        assert timestamps == sorted(timestamps)

    def test_trace_starts_with_enable(self):
        result = run_program(build_figure2_program(5), RuntimeConfig(cores=1))
        assert isinstance(result.core_events[0][0], EnableEvent)
        assert isinstance(result.core_events[0][-1], DisableEvent)


class TestExceptions:
    def _thrower(self, caught: bool):
        boom = MethodAssembler("T", "boom", arg_count=0, returns_value=True)
        boom.new("E").athrow()
        main = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        main.label("try")
        main.invokestatic("T", "boom", 0, True)
        main.label("endtry")
        main.ireturn()
        main.label("catch")
        main.pop().const(-1).ireturn()
        if caught:
            main.handler("try", "endtry", "catch")
        return _program(main, boom, extra_classes=(JClass("E"),))

    def test_caught_exception_reaches_handler(self):
        result = run_program(self._thrower(caught=True), RuntimeConfig(cores=1))
        assert result.threads[0].result == -1
        assert result.threads[0].uncaught is None
        assert result.counters["exceptions"] == 1

    def test_uncaught_exception_terminates_thread(self):
        result = run_program(self._thrower(caught=False), RuntimeConfig(cores=1))
        thread = result.threads[0]
        assert thread.finished
        assert thread.uncaught is not None
        assert thread.uncaught.class_name == "E"

    def test_implicit_trap_emits_fup(self):
        asm = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        asm.label("try")
        asm.const(1).const(0).idiv().ireturn()
        asm.label("catch")
        asm.pop().const(-1).ireturn()
        asm.handler("try", 4, "catch")
        result = run_program(_program(asm), RuntimeConfig(cores=1))
        assert result.threads[0].result == -1
        fups = [e for e in result.core_events[0] if isinstance(e, FupEvent)]
        assert len(fups) == 1

    def test_exception_in_compiled_code(self):
        """A hot method that traps must dispatch correctly when compiled."""
        helper = MethodAssembler("T", "divide", arg_count=2, returns_value=True)
        helper.load(0).load(1).idiv().ireturn()
        main = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        # locals: 0=i, 1=acc
        main.const(0).store(0)
        main.const(0).store(1)
        main.label("head")
        main.load(0).const(30).if_icmpge("done")
        main.label("try")
        main.const(100).load(0).const(5).irem().invokestatic("T", "divide", 2, True)
        main.load(1).iadd().store(1)
        main.label("endtry")
        main.goto("next")
        main.label("catch")
        main.pop().iinc(1, -1)
        main.label("next")
        main.iinc(0, 1).goto("head")
        main.label("done")
        main.load(1).ireturn()
        main.handler("try", "endtry", "catch")
        program = _program(main, helper)
        for threshold in (3, 10**9):
            result = run_program(
                program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=threshold))
            )
            # i % 5 == 0 for 6 of 30 iterations -> 6 traps, 24 sums
            assert result.counters["exceptions"] == 6
            expected = sum(100 // (i % 5) for i in range(30) if i % 5) - 6
            assert result.threads[0].result == expected


class TestThreadsAndScheduling:
    def _two_thread_program(self):
        work = MethodAssembler("T", "work", arg_count=1, returns_value=True)
        work.const(200).store(1)
        work.label("head")
        work.load(1).ifle("done")
        work.iinc(0, 1).iinc(1, -1).goto("head")
        work.label("done")
        work.load(0).ireturn()
        main = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        main.const(7).invokestatic("T", "work", 1, True).ireturn()
        return _program(main, work)

    def test_extra_threads_run_to_completion(self):
        program = self._two_thread_program()
        runtime = JVMRuntime(program, RuntimeConfig(cores=2))
        runtime.add_thread(name="main")
        runtime.add_thread("T", "work", (100,))
        result = runtime.run()
        assert result.threads[0].result == 207
        assert result.threads[1].result == 300

    def test_switch_records_cover_all_threads(self):
        program = self._two_thread_program()
        runtime = JVMRuntime(program, RuntimeConfig(cores=2, quantum=50))
        runtime.add_thread(name="main")
        runtime.add_thread("T", "work", (0,))
        result = runtime.run()
        tids = {record.tid for record in result.thread_switches}
        assert tids == {0, 1}

    def test_threads_migrate_across_cores(self):
        program = self._two_thread_program()
        runtime = JVMRuntime(program, RuntimeConfig(cores=2, quantum=20))
        runtime.add_thread(name="main")
        runtime.add_thread("T", "work", (0,))
        runtime.add_thread("T", "work", (0,))
        result = runtime.run()
        cores_of_t0 = {r.core for r in result.thread_switches if r.tid == 0}
        assert len(cores_of_t0) > 1

    def test_jitter_perturbs_switch_timestamps(self):
        program = self._two_thread_program()
        base = JVMRuntime(program, RuntimeConfig(cores=2, quantum=20))
        base.add_thread(name="main")
        base.add_thread("T", "work", (0,))
        clean = base.run().thread_switches
        jittered_rt = JVMRuntime(
            program, RuntimeConfig(cores=2, quantum=20, switch_timestamp_jitter=9)
        )
        jittered_rt.add_thread(name="main")
        jittered_rt.add_thread("T", "work", (0,))
        jittered = jittered_rt.run().thread_switches
        assert any(a.tsc != b.tsc for a, b in zip(clean, jittered))


class TestGCAndBudget:
    def test_gc_pause_emits_disable_enable(self):
        asm = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        asm.const(300).store(0)
        asm.label("head")
        asm.load(0).ifle("done")
        asm.const(1).newarray().pop()
        asm.iinc(0, -1).goto("head")
        asm.label("done")
        asm.const(0).ireturn()
        program = _program(asm)
        config = RuntimeConfig(cores=1, gc_period_allocations=100)
        result = run_program(program, config)
        assert result.counters["gc_pauses"] == 3
        switches = result.counters["thread_switches"]
        disables = [e for e in result.core_events[0] if isinstance(e, DisableEvent)]
        enables = [e for e in result.core_events[0] if isinstance(e, EnableEvent)]
        # One PGE/PGD pair per scheduling quantum plus one per GC pause.
        assert len(enables) == switches + 3
        assert len(disables) == switches + 3

    def test_step_budget_enforced(self):
        asm = MethodAssembler("T", "main", arg_count=0, returns_value=True)
        asm.label("spin")
        asm.goto("spin")
        program = _program(asm)
        with pytest.raises(ExecutionBudgetExceeded):
            run_program(program, RuntimeConfig(cores=1, max_steps=1000))


class TestSampling:
    def test_samples_recorded_at_interval(self):
        config = RuntimeConfig(cores=1, sample_interval=500)
        result = run_program(build_figure2_program(100), config)
        assert result.counters["samples"] > 0
        assert len(result.samples) == result.counters["samples"]
        timestamps = [tsc for tsc, _q in result.samples]
        assert timestamps == sorted(timestamps)

    def test_sampling_disabled_by_default(self):
        result = run_program(build_figure2_program(10), RuntimeConfig(cores=1))
        assert result.samples == []

    def test_samples_name_executing_methods(self):
        config = RuntimeConfig(cores=1, sample_interval=200)
        result = run_program(build_figure2_program(100), config)
        names = {qname for _tsc, qname in result.samples}
        assert names <= {"Test.main", "Test.fun"}
