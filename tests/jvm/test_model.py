"""Unit tests for the program model (classes, dispatch, stats)."""

import pytest

from repro.jvm.assembler import MethodAssembler
from repro.jvm.model import ExceptionHandler, JClass, JProgram, ProgramError


def _method(class_name, name, value):
    asm = MethodAssembler(class_name, name, arg_count=1, returns_value=True)
    asm.const(value).ireturn()
    return asm.build()


def _hierarchy():
    program = JProgram("h")
    animal = JClass("Animal")
    animal.add_method(_method("Animal", "speak", 0))
    dog = JClass("Dog", superclass="Animal")
    dog.add_method(_method("Dog", "speak", 1))
    puppy = JClass("Puppy", superclass="Dog")
    cat = JClass("Cat", superclass="Animal")
    cat.add_method(_method("Cat", "speak", 2))
    for jclass in (animal, dog, puppy, cat):
        program.add_class(jclass)
    return program


class TestClassRegistry:
    def test_duplicate_class_rejected(self):
        program = JProgram("p")
        program.add_class(JClass("A"))
        with pytest.raises(ProgramError, match="duplicate"):
            program.add_class(JClass("A"))

    def test_unknown_class_lookup(self):
        with pytest.raises(ProgramError, match="unknown class"):
            JProgram("p").jclass("Nope")

    def test_method_must_match_class(self):
        jclass = JClass("A")
        with pytest.raises(ProgramError):
            jclass.add_method(_method("B", "m", 0))

    def test_entry_resolution(self):
        program = _hierarchy()
        program.set_entry("Animal", "speak")
        assert program.entry_method().qualified_name == "Animal.speak"

    def test_missing_entry(self):
        with pytest.raises(ProgramError, match="no entry"):
            JProgram("p").entry_method()


class TestDispatch:
    def test_inherited_method_found(self):
        program = _hierarchy()
        # Puppy has no speak; inherits Dog's.
        assert program.method("Puppy", "speak").qualified_name == "Dog.speak"

    def test_resolve_virtual_walks_hierarchy(self):
        program = _hierarchy()
        assert program.resolve_virtual("Cat", "speak").qualified_name == "Cat.speak"
        assert program.resolve_virtual("Puppy", "speak").qualified_name == "Dog.speak"

    def test_unknown_method(self):
        program = _hierarchy()
        with pytest.raises(ProgramError, match="unknown method"):
            program.method("Animal", "fly")

    def test_subclasses_transitive(self):
        program = _hierarchy()
        assert set(program.subclasses_of("Animal")) == {"Dog", "Puppy", "Cat"}
        assert program.subclasses_of("Puppy") == []

    def test_possible_targets_virtual(self):
        program = _hierarchy()
        ref = _method("Animal", "speak", 0).ref
        targets = {
            m.qualified_name for m in program.possible_targets(ref, virtual=True)
        }
        assert targets == {"Animal.speak", "Dog.speak", "Cat.speak"}

    def test_possible_targets_static(self):
        program = _hierarchy()
        ref = _method("Animal", "speak", 0).ref
        targets = program.possible_targets(ref, virtual=False)
        assert [m.qualified_name for m in targets] == ["Animal.speak"]


class TestHandlersAndStats:
    def test_handler_covers_range(self):
        handler = ExceptionHandler(start=2, end=5, handler=7)
        assert not handler.covers(1)
        assert handler.covers(2)
        assert handler.covers(4)
        assert not handler.covers(5)

    def test_handler_for_innermost_first(self):
        asm = MethodAssembler("A", "m", arg_count=0, returns_value=True)
        asm.const(1).const(0).idiv().ireturn()
        asm.pop().const(-1).ireturn()
        asm.handler(1, 3, 4)  # listed first: wins
        asm.handler(0, 4, 4)
        method = asm.build()
        assert method.handler_for(2).start == 1
        assert method.handler_for(0).start == 0
        assert method.handler_for(4) is None

    def test_stats(self):
        program = _hierarchy()
        stats = program.stats()
        assert stats["classes"] == 4
        assert stats["methods"] == 3
        assert stats["instructions"] == 6  # const + ireturn per method
        assert stats["branches"] == 0
        assert stats["call_sites"] == 0

    def test_methods_iteration_deterministic(self):
        program = _hierarchy()
        names = [m.qualified_name for m in program.methods()]
        assert names == sorted(names)
