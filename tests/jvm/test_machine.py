"""Unit tests for the machine-level model (address space, instructions)."""

from repro.jvm.machine import (
    DEFAULT_ADDRESS_SPACE,
    AddressSpace,
    DisableEvent,
    EnableEvent,
    FupEvent,
    MIKind,
    MachineInstruction,
    ThreadSwitchRecord,
    TipEvent,
    TntEvent,
)


class TestAddressSpace:
    def test_template_and_code_cache_disjoint(self):
        space = DEFAULT_ADDRESS_SPACE
        assert space.template_limit <= space.code_cache_base

    def test_filter_range_covers_both(self):
        space = DEFAULT_ADDRESS_SPACE
        assert space.in_filter_range(space.template_base)
        assert space.in_filter_range(space.code_cache_limit - 1)
        assert not space.in_filter_range(space.code_cache_limit)
        assert not space.in_filter_range(0)

    def test_classifiers(self):
        space = DEFAULT_ADDRESS_SPACE
        assert space.in_template_space(space.template_base)
        assert not space.in_template_space(space.code_cache_base)
        assert space.in_code_cache(space.code_cache_base)
        assert not space.in_code_cache(space.template_base)

    def test_custom_space(self):
        space = AddressSpace(
            template_base=0x1000,
            template_limit=0x2000,
            code_cache_base=0x3000,
            code_cache_limit=0x4000,
        )
        assert space.in_filter_range(0x1800)
        assert not space.in_filter_range(0x2800)
        assert space.in_filter_range(0x3800)


class TestMachineInstruction:
    def test_end_and_branch_flags(self):
        mi = MachineInstruction(address=0x100, size=6, kind=MIKind.COND_BRANCH, target=0x200)
        assert mi.end == 0x106
        assert mi.is_branch
        plain = MachineInstruction(address=0x100, size=3, kind=MIKind.OTHER)
        assert not plain.is_branch

    def test_str_with_and_without_target(self):
        mi = MachineInstruction(address=0x10, size=5, kind=MIKind.JMP_DIRECT, target=0x40)
        assert "0x10" in str(mi) and "0x40" in str(mi)
        plain = MachineInstruction(address=0x10, size=1, kind=MIKind.RET)
        assert "ret" in str(plain)

    def test_immutability(self):
        mi = MachineInstruction(address=0x10, size=1, kind=MIKind.RET)
        try:
            mi.address = 0x20
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestEvents:
    def test_events_carry_tsc(self):
        for event in (
            TipEvent(tsc=5, target=1),
            TntEvent(tsc=6, taken=True),
            EnableEvent(tsc=7, ip=2),
            DisableEvent(tsc=8, ip=3),
            FupEvent(tsc=9, ip=4),
        ):
            assert event.tsc >= 5

    def test_events_are_value_objects(self):
        assert TipEvent(tsc=1, target=2) == TipEvent(tsc=1, target=2)
        assert TntEvent(tsc=1, taken=True) != TntEvent(tsc=1, taken=False)

    def test_thread_switch_record(self):
        record = ThreadSwitchRecord(core=1, tid=3, tsc=99)
        assert (record.core, record.tid, record.tsc) == (1, 3, 99)
