"""Unit tests for the template interpreter's address-range table."""

from repro.jvm.machine import DEFAULT_ADDRESS_SPACE
from repro.jvm.opcodes import Kind, Op, info
from repro.jvm.templates import TemplateTable


class TestLayout:
    def setup_method(self):
        self.table = TemplateTable()

    def test_every_opcode_has_a_range(self):
        assert len(self.table) == len(Op)
        for op in Op:
            ranges = self.table.ranges(op)
            assert ranges
            for start, end in ranges:
                assert start < end

    def test_ranges_are_disjoint(self):
        intervals = []
        for op in Op:
            intervals.extend(self.table.ranges(op))
        intervals.append(self.table.return_stub)
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2

    def test_ranges_within_template_space(self):
        space = DEFAULT_ADDRESS_SPACE
        for op in Op:
            for start, end in self.table.ranges(op):
                assert space.in_template_space(start)
                assert space.in_template_space(end - 1)

    def test_conditionals_have_two_subranges(self):
        for op in Op:
            expected = 2 if info(op).kind is Kind.COND else 1
            assert len(self.table.ranges(op)) == expected

    def test_entry_is_first_range_start(self):
        for op in Op:
            assert self.table.entry(op) == self.table.ranges(op)[0][0]


class TestReverseLookup:
    def setup_method(self):
        self.table = TemplateTable()

    def test_entry_resolves_to_op(self):
        for op in Op:
            assert self.table.op_at(self.table.entry(op)) is op

    def test_every_address_in_every_subrange_resolves(self):
        for op in Op:
            for start, end in self.table.ranges(op):
                assert self.table.op_at(start) is op
                assert self.table.op_at(end - 1) is op
                assert self.table.op_at((start + end) // 2) is op

    def test_gap_addresses_resolve_to_none(self):
        first = self.table.entry(sorted(Op, key=lambda o: self.table.entry(o))[0])
        assert self.table.op_at(first - 1) is None

    def test_below_template_space_is_none(self):
        assert self.table.op_at(0) is None
        assert self.table.op_at(DEFAULT_ADDRESS_SPACE.template_base - 10) is None


class TestReturnStub:
    def setup_method(self):
        self.table = TemplateTable()

    def test_stub_detection(self):
        entry = self.table.return_stub_entry
        assert self.table.is_return_stub(entry)
        assert not self.table.is_return_stub(entry - 1)

    def test_stub_not_an_opcode_template(self):
        assert self.table.op_at(self.table.return_stub_entry) is None

    def test_metadata_contains_stub(self):
        metadata = self.table.metadata()
        assert "<return-stub>" in metadata
        assert metadata["iload_0"]
        assert len(metadata) == len(Op) + 1
