"""Unit tests for the structural bytecode verifier."""

import pytest

from repro.jvm.assembler import MethodAssembler
from repro.jvm.model import JClass, JProgram
from repro.jvm.verifier import VerificationError, verify_method, verify_program


def _asm(**kwargs):
    defaults = dict(class_name="T", name="m", arg_count=0, returns_value=True)
    defaults.update(kwargs)
    return MethodAssembler(**defaults)


class TestStructure:
    def test_valid_straightline(self):
        asm = _asm()
        asm.const(1).const(2).iadd().ireturn()
        verify_method(asm.build())

    def test_branch_target_out_of_range(self):
        asm = _asm()
        asm.const(0).ifeq(99).const(0).ireturn()
        with pytest.raises(VerificationError, match="out of range"):
            verify_method(asm.build())

    def test_fall_off_end(self):
        asm = _asm()
        asm.const(1).pop()
        with pytest.raises(VerificationError, match="falls off"):
            verify_method(asm.build())

    def test_conditional_fallthrough_off_end(self):
        asm = _asm()
        asm.const(1).ifeq(0)
        with pytest.raises(VerificationError, match="out of range|off the end"):
            verify_method(asm.build())

    def test_local_out_of_range(self):
        asm = _asm(max_locals=9)
        asm.load(8).ireturn()
        method = asm.build()
        # Manually shrink max_locals to trigger the check.
        method.max_locals = 3
        with pytest.raises(VerificationError, match="max_locals"):
            verify_method(method)

    def test_bad_handler_range(self):
        asm = _asm()
        asm.const(0).ireturn()
        asm.handler(1, 1, 0)
        with pytest.raises(VerificationError, match="handler range"):
            verify_method(asm.build())

    def test_handler_target_out_of_range(self):
        asm = _asm()
        asm.const(0).ireturn()
        asm.handler(0, 1, 99)
        with pytest.raises(VerificationError, match="handler target"):
            verify_method(asm.build())


class TestStackDepth:
    def test_underflow(self):
        asm = _asm()
        asm.iadd().const(0).ireturn()
        with pytest.raises(VerificationError, match="underflow"):
            verify_method(asm.build())

    def test_inconsistent_join_depth(self):
        asm = _asm()
        asm.const(0).ifeq("b")
        asm.const(1).const(2)  # depth 2 on this arm
        asm.goto("join")
        asm.label("b")
        asm.const(1)  # depth 1 on this arm
        asm.label("join")
        asm.ireturn()
        with pytest.raises(VerificationError, match="inconsistent"):
            verify_method(asm.build())

    def test_return_needs_value(self):
        asm = _asm()
        # ireturn with empty stack
        asm.nop().ireturn()
        with pytest.raises(VerificationError, match="underflow|empty"):
            verify_method(asm.build())

    def test_handler_entry_depth_is_one(self):
        asm = _asm()
        asm.label("try")
        asm.const(1).const(0).idiv().ireturn()
        asm.label("catch")
        asm.pop().const(-1).ireturn()
        asm.handler("try", 4, "catch")
        verify_method(asm.build())

    def test_loop_depth_consistency(self):
        asm = _asm()
        asm.const(10).store(0)
        asm.label("head")
        asm.load(0).ifle("done")
        asm.iinc(0, -1).goto("head")
        asm.label("done")
        asm.const(0).ireturn()
        verify_method(asm.build())

    def test_unbalanced_loop_rejected(self):
        asm = _asm()
        asm.const(0)
        asm.label("head")
        asm.const(1)  # pushes every iteration: depth grows
        asm.const(0).ifeq("head")
        asm.ireturn()
        with pytest.raises(VerificationError, match="inconsistent"):
            verify_method(asm.build())


class TestProgramChecks:
    def _program_with_call(self, arg_count, returns_value):
        callee = _asm(name="callee", arg_count=1, returns_value=True)
        callee.load(0).ireturn()
        caller = _asm(name="caller")
        caller.const(1)
        caller.emit_index = None
        from repro.jvm.instructions import MethodRef
        from repro.jvm.opcodes import Op

        caller.emit(
            Op.INVOKESTATIC, methodref=MethodRef("T", "callee", arg_count, returns_value)
        )
        caller.ireturn()
        cls = JClass("T")
        cls.add_method(callee.build())
        cls.add_method(caller.build())
        program = JProgram("p")
        program.add_class(cls)
        program.set_entry("T", "caller")
        return program

    def test_matching_signature_ok(self):
        verify_program(self._program_with_call(1, True))

    def test_arg_count_mismatch(self):
        with pytest.raises(VerificationError, match="args|underflow"):
            verify_program(self._program_with_call(2, True))

    def test_return_kind_mismatch(self):
        # callee returns a value but the ref says void: the call pushes
        # nothing, so the caller's ireturn underflows -- either error is
        # acceptable, but the program must not verify.
        with pytest.raises(VerificationError):
            verify_program(self._program_with_call(1, False))

    def test_missing_entry(self):
        program = JProgram("empty")
        with pytest.raises(Exception):
            verify_program(program)
