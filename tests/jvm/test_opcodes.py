"""Unit tests for the opcode table and its metadata."""

from repro.jvm.opcodes import (
    DESPECIALIZED,
    ICONST_VALUE,
    MNEMONICS,
    OP_TABLE,
    Kind,
    Op,
    iconst_for,
    info,
    specialize,
    tier,
)


class TestOpTable:
    def test_every_opcode_described(self):
        assert set(OP_TABLE) == set(Op)

    def test_mnemonics_unique_and_roundtrip(self):
        assert len(MNEMONICS) == len(OP_TABLE)
        for op, op_info in OP_TABLE.items():
            assert MNEMONICS[op_info.mnemonic] is op

    def test_info_matches_table(self):
        for op in Op:
            assert info(op).op is op

    def test_branch_opcodes_take_target(self):
        for op, op_info in OP_TABLE.items():
            if op_info.kind is Kind.COND:
                assert op_info.operands == ("target",)
            if op_info.kind is Kind.GOTO:
                assert op_info.operands == ("target",)

    def test_call_opcodes_take_methodref(self):
        for op, op_info in OP_TABLE.items():
            if op_info.kind is Kind.CALL:
                assert op_info.operands == ("methodref",)
                assert op_info.pops == -1

    def test_returns_have_no_successor_operands(self):
        for op, op_info in OP_TABLE.items():
            if op_info.kind is Kind.RETURN:
                assert op_info.operands == ()

    def test_conditionals_pop_operands(self):
        assert info(Op.IFEQ).pops == 1
        assert info(Op.IF_ICMPLT).pops == 2
        assert info(Op.IFNULL).pops == 1
        assert info(Op.IF_ACMPEQ).pops == 2


class TestSpecialization:
    def test_iload_specializes_for_small_indices(self):
        assert specialize(Op.ILOAD, 0) is Op.ILOAD_0
        assert specialize(Op.ILOAD, 3) is Op.ILOAD_3
        assert specialize(Op.ILOAD, 4) is None

    def test_despecialize_inverts_specialize(self):
        for spec, (generic, index) in DESPECIALIZED.items():
            assert specialize(generic, index) is spec

    def test_iconst_values(self):
        assert iconst_for(0) is Op.ICONST_0
        assert iconst_for(-1) is Op.ICONST_M1
        assert iconst_for(5) is Op.ICONST_5
        assert iconst_for(6) is None
        for op, value in ICONST_VALUE.items():
            assert iconst_for(value) is op

    def test_specialized_forms_have_no_operands(self):
        for spec in DESPECIALIZED:
            assert info(spec).operands == ()


class TestTiers:
    def test_calls_and_returns_are_tier1(self):
        assert tier(Op.INVOKESTATIC) == 1
        assert tier(Op.INVOKEVIRTUAL) == 1
        assert tier(Op.IRETURN) == 1
        assert tier(Op.RETURN) == 1
        assert tier(Op.ATHROW) == 1

    def test_branches_are_tier2(self):
        assert tier(Op.IFEQ) == 2
        assert tier(Op.GOTO) == 2
        assert tier(Op.TABLESWITCH) == 2
        assert tier(Op.LOOKUPSWITCH) == 2

    def test_data_instructions_are_tier3(self):
        assert tier(Op.IADD) == 3
        assert tier(Op.ILOAD_0) == 3
        assert tier(Op.GETFIELD) == 3
        assert tier(Op.NEW) == 3

    def test_tier_hierarchy_is_nested(self):
        # Every tier-1 opcode is also control (tier <= 2).
        for op in Op:
            if tier(op) == 1:
                assert info(op).is_control
            if info(op).kind is Kind.NORMAL:
                assert tier(op) == 3
