"""Unit tests for instruction objects and their successor relation."""

from repro.jvm.instructions import (
    FieldRef,
    Instruction,
    MethodRef,
    SwitchTable,
)
from repro.jvm.opcodes import Kind, Op


class TestSwitchTable:
    def setup_method(self):
        self.table = SwitchTable(cases=((0, 10), (1, 20), (5, 10)), default=30)

    def test_target_for_known_keys(self):
        assert self.table.target_for(0) == 10
        assert self.table.target_for(1) == 20
        assert self.table.target_for(5) == 10

    def test_target_for_unknown_key_is_default(self):
        assert self.table.target_for(99) == 30
        assert self.table.target_for(-1) == 30

    def test_all_targets_deduplicated(self):
        assert self.table.all_targets() == (10, 20, 30)


class TestSuccessors:
    def test_normal_falls_through(self):
        inst = Instruction(op=Op.IADD, bci=3)
        assert inst.successors_within(10) == (4,)

    def test_normal_at_end_has_none(self):
        inst = Instruction(op=Op.IADD, bci=9)
        assert inst.successors_within(10) == ()

    def test_conditional_has_both_arms(self):
        inst = Instruction(op=Op.IFEQ, bci=2, target=7)
        assert inst.successors_within(10) == (3, 7)

    def test_goto_has_target_only(self):
        inst = Instruction(op=Op.GOTO, bci=2, target=0)
        assert inst.successors_within(10) == (0,)

    def test_switch_targets(self):
        table = SwitchTable(cases=((0, 4), (1, 6)), default=8)
        inst = Instruction(op=Op.TABLESWITCH, bci=1, switch=table)
        assert set(inst.successors_within(10)) == {4, 6, 8}

    def test_return_and_throw_terminal(self):
        assert Instruction(op=Op.IRETURN, bci=2).successors_within(10) == ()
        assert Instruction(op=Op.ATHROW, bci=2).successors_within(10) == ()

    def test_call_falls_through(self):
        ref = MethodRef("A", "f", 1, True)
        inst = Instruction(op=Op.INVOKESTATIC, bci=2, methodref=ref)
        assert inst.successors_within(10) == (3,)


class TestSymbolsAndDisplay:
    def test_symbol_is_opcode(self):
        inst = Instruction(op=Op.ILOAD_2, bci=0)
        assert inst.symbol() is Op.ILOAD_2

    def test_kind_classification(self):
        assert Instruction(op=Op.IFEQ, bci=0, target=1).kind is Kind.COND
        assert Instruction(op=Op.IADD, bci=0).is_control is False
        assert Instruction(op=Op.GOTO, bci=0, target=1).is_control is True

    def test_str_forms(self):
        assert "iload" in str(Instruction(op=Op.ILOAD, bci=0, index=5))
        assert "-> 7" in str(Instruction(op=Op.GOTO, bci=0, target=7))
        ref = MethodRef("A", "f", 2, True)
        assert "A.f/2" in str(Instruction(op=Op.INVOKESTATIC, bci=0, methodref=ref))
        field = FieldRef("A", "x")
        assert "A.x" in str(Instruction(op=Op.GETFIELD, bci=0, fieldref=field))
        table = SwitchTable(cases=((1, 3),), default=5)
        rendered = str(Instruction(op=Op.TABLESWITCH, bci=0, switch=table))
        assert "default -> 5" in rendered

    def test_refs_are_value_objects(self):
        assert MethodRef("A", "f", 1, True) == MethodRef("A", "f", 1, True)
        assert FieldRef("A", "x") == FieldRef("A", "x")
        assert FieldRef("A", "x") != FieldRef("A", "y")
