"""Static analysis cost: the decodability checks stay off the decode path.

The paper's offline phases (Table 5) are decode + reconstruction +
recovery; our static decodability analysis (observability, ambiguity,
metadata lint -- see DESIGN.md §3d) runs once per program *before* any
trace is read, so its cost must be (a) reported separately from the
decode-side timings and (b) amortised: repeated runs against the same
``JPortal`` reuse the report instead of re-analysing.

Shape claims:
  * every subject's static analysis completes and is fully decodable;
  * ``analysis_seconds`` is surfaced per run but excluded from
    ``total_seconds`` (the Table 5 columns stay pure);
  * the per-run analysis cost after the first run is only the database
    lint (small), not the full static pass.
"""

from conftest import print_table, subject_run

from repro.workloads import SUBJECT_NAMES


def test_analysis_cost_breakdown(benchmark):
    def evaluate():
        rows = []
        for name in SUBJECT_NAMES:
            sr = subject_run(name)
            jportal = sr.jportal()
            report = jportal.analysis_report

            first = jportal.analyze_run(sr.run, sr.pt_config())
            second = jportal.analyze_run(sr.run, sr.pt_config())

            # Per-run analysis time = static pass (amortised, constant)
            # + database lint (the only per-run component).
            lint_first = first.metrics.timings_by_prefix("analysis")
            assert lint_first, "analysis timer missing for %s" % name
            per_run_lint = sum(lint_first.values())

            rows.append(
                (
                    name,
                    len(report.checks),
                    report.decodable(),
                    report.summary()["edges_silent"],
                    report.static_seconds,
                    per_run_lint,
                    first.timings.analysis_seconds,
                    second.timings.analysis_seconds,
                    first.timings.total_seconds,
                )
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "Static decodability analysis cost (off the decode path)",
        (
            "Subject", "methods", "decodable", "silent",
            "static(s)", "lint(s)", "run1(s)", "run2(s)", "decode total(s)",
        ),
        [
            (
                name,
                methods,
                decodable,
                silent,
                "%.4f" % static_seconds,
                "%.4f" % lint_seconds,
                "%.4f" % first_seconds,
                "%.4f" % second_seconds,
                "%.4f" % total_seconds,
            )
            for name, methods, decodable, silent, static_seconds,
                lint_seconds, first_seconds, second_seconds, total_seconds
                in rows
        ],
    )

    for (
        name, methods, decodable, _silent, static_seconds,
        lint_seconds, first_seconds, second_seconds, _total,
    ) in rows:
        assert methods > 0 and decodable, name
        assert static_seconds > 0.0, name
        # Each run reports the (shared) static cost plus its own lint.
        assert first_seconds >= static_seconds, name
        assert second_seconds >= static_seconds, name
        # The per-run component is just the database lint, so run 2 does
        # not pay the static pass again: both runs report the same
        # amortised static share.
        assert lint_seconds >= 0.0, name
        assert abs(first_seconds - second_seconds) < static_seconds + 0.5, name
