"""Table 2: runtime slowdown of JPortal vs. the baseline profilers.

Paper columns: JPortal, SC, PF, CF (instrumentation-based), HM, and the
sampling profilers xprof / JProfiler.  Slowdowns here come from the cost
model in :mod:`repro.profiling.overhead`, evaluated on each subject's real
dynamic event counts (blocks executed, BL probes fired, PT bytes
generated, samples taken).

Shape claims checked (from the paper):
  * JPortal stays in a low single-digit-to-~20% overhead band while
    instrumentation ranges from ~1.1x to thousands;
  * CF tracing is the most expensive technique on every subject;
  * sampling is cheap but costlier than JPortal on average;
  * loop-dense subjects (avrora-like) hurt instrumentation the most.
"""

from conftest import print_table, subject_run

from repro.core.metadata import collect_metadata
from repro.profiling.overhead import compute_slowdowns
from repro.pt.encoder import PTEncoder
from repro.workloads import SUBJECT_NAMES, build_subject, default_config


def _sample_counts(name):
    """Run the subject under each sampling profiler's interval."""
    counts = []
    for interval in (2_000, 5_000):  # xprof-ish, JProfiler-ish periods
        subject = build_subject(name)
        config = default_config(sample_interval=interval)
        run = subject.run(config)
        counts.append(run.counters["samples"])
    return tuple(counts)


def test_table2_slowdowns(benchmark):
    def compute_rows():
        rows = []
        for name in SUBJECT_NAMES:
            sr = subject_run(name)
            run = sr.run
            trace_bytes = sum(
                sum(p.size for p in PTEncoder().encode(events))
                for events in run.core_events
            )
            metadata_bytes = collect_metadata(run).metadata_bytes()
            row = compute_slowdowns(
                name,
                run,
                trace_bytes=trace_bytes,
                metadata_bytes=metadata_bytes,
                sample_counts=_sample_counts(name),
            )
            rows.append(row)
        return rows

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "Table 2: Slowdown (x) per profiling technique",
        ("Subject", "JPortal", "SC", "PF", "CF", "HM", "xprof", "JProfiler"),
        [
            (
                row.subject,
                "%.3f" % row.jportal,
                "%.2f" % row.statement_coverage,
                "%.2f" % row.path_frequency,
                "%.1f" % row.control_flow,
                "%.2f" % row.hot_methods,
                "%.3f" % row.xprof,
                "%.3f" % row.jprofiler,
            )
            for row in rows
        ],
    )

    # --- shape assertions --------------------------------------------------
    for row in rows:
        # JPortal's band: low overhead on every subject (paper: 4-16%).
        assert 1.0 < row.jportal < 1.35, row
        # CF tracing dominates all instrumentation everywhere.
        assert row.control_flow > max(row.path_frequency, row.statement_coverage)
        assert row.control_flow > 2.0
        # JPortal beats every instrumentation technique.
        assert row.jportal < row.statement_coverage
    # Path profiling costs at least as much as statement coverage on most
    # subjects (chord placement can undercut block flags on switch-dense
    # code, hence not universally).
    pf_wins = sum(1 for r in rows if r.path_frequency >= r.statement_coverage)
    assert pf_wins >= len(rows) // 2
    # Sampling cheap-but-not-free; JPortal wins on average (paper Sect 7.1).
    mean = lambda xs: sum(xs) / len(xs)
    assert mean([r.jportal for r in rows]) < mean([r.jprofiler for r in rows])
    # Instrumentation cost is wildly heterogeneous across subjects (the
    # paper spans 5.3x-3555x); per-block probes hurt fast (compiled-heavy)
    # code relatively most, so the worst CF subject must be one whose
    # execution is dominated by compiled steps.
    cf_values = [r.control_flow for r in rows]
    assert max(cf_values) / min(cf_values) > 4
    assert max(cf_values) > 10
    worst = max(rows, key=lambda r: r.control_flow).subject
    sr = subject_run(worst)
    share = sr.run.counters["steps_compiled"] / sr.run.counters["steps"]
    assert share > 0.5, (worst, share)
