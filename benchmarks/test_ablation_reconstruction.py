"""Ablation A: reconstruction algorithm comparison.

Compares, on generated programs of growing size:

  * Algorithm 1 (enumerate-and-test) -- the naive O(|Q| |w| t^2) baseline;
  * Algorithm 2 (abstraction-guided) -- the paper's contribution: the
    abstract (ANFA) pre-filter prunes start states before concrete
    matching;
  * the production subset-simulation projector, in paper-faithful NFA
    mode and in context-sensitive (PDA) mode.

Checked shapes: all matchers agree on feasibility; Algorithm 2 never
tries more concrete starts than Algorithm 1; the projector is the
fastest; PDA mode resolves return-site ambiguity that NFA mode gets
wrong (exactness on lossless traces).
"""

import time

from conftest import lossless_pt, print_table

from repro.core import JPortal
from repro.core.nfa import ProgramNFA
from repro.core.observed import ObservedStep
from repro.core.reconstruct import (
    Projector,
    _abstract_accepts,
    abstraction_guided,
    enumerate_and_test,
    match_from,
)
from repro.jvm.icfg import ICFG
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.jvm.opcodes import tier
from repro.workloads.generator import GeneratorConfig, generate_program


def _observed_prefix(program, length=120):
    config = RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=10**9))
    runtime = JVMRuntime(program, config)
    runtime.add_thread(name="main")
    run = runtime.run()
    truth = run.threads[0].truth
    # Start mid-stream (like a post-loss segment): skip the entry prefix.
    offset = min(len(truth) // 3, 50)
    window = truth[offset : offset + length]
    steps = []
    for qname, bci in window:
        class_name, method_name = qname.rsplit(".", 1)
        inst = program.method(class_name, method_name).code[bci]
        taken = None
        from repro.jvm.opcodes import Kind, info

        if info(inst.op).kind is Kind.COND:
            # Recompute the taken bit from the successor in truth.
            taken = None  # assigned below from the next node
        steps.append([inst.op, taken, (qname, bci)])
    # Fill taken bits using the next executed node.
    for i in range(len(window) - 1):
        qname, bci = window[i]
        class_name, method_name = qname.rsplit(".", 1)
        inst = program.method(class_name, method_name).code[bci]
        from repro.jvm.opcodes import Kind, info

        if info(inst.op).kind is Kind.COND:
            steps[i][1] = window[i + 1][1] == inst.target and window[i + 1][0] == qname
    return [
        (op, taken) for op, taken, _loc in steps
    ], window


def _count_abstract_survivors(nfa, sequence):
    steps = [
        ObservedStep(symbol=op, taken=taken, location=None, source="interp", tsc=0)
        for op, taken in sequence
    ]
    abstract_steps = [s for s in steps if tier(s.symbol) <= 2]
    survivors = 0
    for start in range(len(nfa)):
        if steps and nfa.op_of[start] is not steps[0].symbol:
            continue
        if _abstract_accepts(nfa, start, abstract_steps):
            survivors += 1
    return survivors


def test_ablation_reconstruction_algorithms(benchmark):
    seeds = (11, 23, 37)
    configs = [
        GeneratorConfig(methods=3, max_depth=3),
        GeneratorConfig(methods=5, max_depth=4),
        GeneratorConfig(methods=8, max_depth=4, call_probability=0.6),
    ]
    rows = []
    agreement_checked = 0
    for size_index, generator_config in enumerate(configs):
        for seed in seeds:
            program = generate_program(seed + size_index * 1000, generator_config)
            nfa = ProgramNFA(ICFG(program))
            sequence, _window = _observed_prefix(program)
            if len(sequence) < 10:
                continue

            started = time.perf_counter()
            result1 = enumerate_and_test(nfa, sequence)
            time1 = time.perf_counter() - started

            started = time.perf_counter()
            result2 = abstraction_guided(nfa, sequence)
            time2 = time.perf_counter() - started

            projector = Projector(nfa, context_sensitive=False)
            steps = [
                ObservedStep(symbol=op, taken=taken, location=None, source="interp", tsc=0)
                for op, taken in sequence
            ]
            started = time.perf_counter()
            projection = projector.project(steps)
            time3 = time.perf_counter() - started

            # Agreement: all three find a full match of the same length.
            assert result1 is not None
            assert result2 is not None
            assert result1 == result2
            assert projection.stats.matched == len(sequence)
            agreement_checked += 1

            candidate_starts = len(nfa.initial_states(sequence[0][0]))
            survivors = _count_abstract_survivors(nfa, sequence)
            assert survivors <= candidate_starts
            rows.append(
                (
                    "m%d/s%d" % (generator_config.methods, seed),
                    len(nfa),
                    len(sequence),
                    candidate_starts,
                    survivors,
                    "%.4f" % time1,
                    "%.4f" % time2,
                    "%.4f" % time3,
                )
            )

    def kernel():
        # Benchmark the production projector on the largest instance.
        program = generate_program(9999, configs[-1])
        nfa = ProgramNFA(ICFG(program))
        sequence, _ = _observed_prefix(program, length=200)
        projector = Projector(nfa)
        steps = [
            ObservedStep(symbol=op, taken=taken, location=None, source="interp", tsc=0)
            for op, taken in sequence
        ]
        return projector.project(steps).stats.matched

    benchmark(kernel)

    print_table(
        "Ablation A: reconstruction matchers (times in seconds)",
        ("Instance", "|Q|", "|w|", "starts", "abs-survivors",
         "Alg1", "Alg2", "Projector"),
        rows,
    )
    assert agreement_checked >= 5


def test_ablation_nfa_vs_pda_exactness(benchmark):
    """PDA-mode projection is exact on lossless traces; NFA mode may pick
    a wrong (but feasible) return site when call-site continuations look
    identical -- the paper's NFA/PDA trade-off made measurable."""
    from repro.workloads import build_subject
    from repro.profiling.accuracy import run_accuracy

    def evaluate():
        subject = build_subject("avrora", size=1500)
        run = subject.run()
        outcomes = {}
        for label, sensitive in (("NFA", False), ("PDA", True)):
            jportal = JPortal(subject.program, context_sensitive=sensitive)
            result = jportal.analyze_run(run, lossless_pt())
            outcomes[label] = run_accuracy(run, result).overall
        return outcomes

    outcomes = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "Ablation A2: NFA vs PDA projection on a lossless trace (avrora)",
        ("Mode", "Accuracy"),
        [(label, "%.3f%%" % (100 * value)) for label, value in outcomes.items()],
    )
    assert outcomes["PDA"] == 1.0
    assert outcomes["NFA"] <= outcomes["PDA"]
    assert outcomes["NFA"] > 0.95  # still highly accurate, as the paper argues
