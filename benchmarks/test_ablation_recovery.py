"""Ablation B: recovery design choices.

Measures, on a lossy run of ``h2`` (the paper's recovery-heavy subject):

  * recovery ON vs. OFF (holes left empty): overall accuracy gain;
  * Algorithm 4's tier pruning vs. Algorithm 3's exhaustive scan: same
    winner, fewer concrete comparisons;
  * top-N sensitivity: accuracy as a function of how many ranked CS
    candidates the filler may try.
"""

import time

from conftest import BUFFER_128, print_table, subject_run

from repro.core.recovery import RecoveryConfig, RecoveryEngine, basic_search
from repro.profiling.accuracy import run_accuracy, sequence_similarity


def _segments_of(result, tid=0):
    flow = result.flow_of(tid)
    return flow.segments, flow.observed.holes()


def test_ablation_recovery_on_off(benchmark):
    def evaluate():
        sr = subject_run("h2")
        outcomes = {}
        # ON: the normal pipeline.
        result = sr.jportal().analyze_run(sr.run, sr.pt_config(BUFFER_128))
        outcomes["recovery ON"] = run_accuracy(sr.run, result).overall

        # OFF: same decode/projection, holes left unfilled.
        truth_by_tid = {t.tid: t.truth for t in sr.run.threads}
        total = 0.0
        weight = 0
        for tid, flow in result.flows.items():
            decoded = [
                entry for entry, provenance in flow.flow.entries
                if provenance == "decoded"
            ]
            truth = truth_by_tid[tid]
            total += sequence_similarity(truth, decoded) * len(truth)
            weight += len(truth)
        outcomes["recovery OFF"] = total / weight if weight else 0.0
        return outcomes

    outcomes = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "Ablation B1: recovery on/off (h2, 128-scale buffer)",
        ("Variant", "Overall accuracy"),
        [(k, "%.1f%%" % (100 * v)) for k, v in outcomes.items()],
    )
    assert outcomes["recovery ON"] >= outcomes["recovery OFF"]


def test_ablation_tier_pruning_vs_basic(benchmark):
    """Algorithm 4 must find a CS as good as Algorithm 3's, cheaper."""
    sr = subject_run("h2")
    result = sr.jportal().analyze_run(sr.run, sr.pt_config(BUFFER_128))
    segments, _holes = _segments_of(result)
    # Pick ISes: segments with enough content.
    is_ids = [i for i, seg in enumerate(segments) if len(seg) >= 10][:8]
    assert is_ids, "need lossy segments for this ablation"

    basic_times = []
    basic_results = {}

    def run_basic():
        for is_id in is_ids:
            started = time.perf_counter()
            basic_results[is_id] = basic_search(segments, is_id, anchor_length=3)
            basic_times.append(time.perf_counter() - started)
        return len(basic_results)

    benchmark.pedantic(run_basic, rounds=1, iterations=1)

    engine = RecoveryEngine(sr.jportal().icfg, RecoveryConfig())
    stats_rows = []
    for is_id in is_ids:
        best = basic_results[is_id]
        stats_rows.append(
            (is_id, len(segments[is_id]), "-" if best is None else best[2])
        )
    print_table(
        "Ablation B2: Algorithm 3 exhaustive winners per IS (h2)",
        ("IS segment", "length", "best common suffix"),
        stats_rows,
    )
    # Algorithm 4 path (inside the pipeline) recorded pruning activity.
    flow = result.flow_of(0)
    recovery_stats = flow.flow.stats
    print(
        "\nAlgorithm 4 stats: tested=%d tier1-pruned=%d tier2-pruned=%d "
        "cs-filled=%d fallback=%d"
        % (
            recovery_stats.candidates_tested,
            recovery_stats.tier1_pruned,
            recovery_stats.tier2_pruned,
            recovery_stats.filled_from_cs,
            recovery_stats.filled_fallback,
        )
    )
    assert recovery_stats.candidates_tested >= 0


def test_ablation_top_n(benchmark):
    def evaluate():
        sr = subject_run("h2")
        outcomes = []
        for top_n in (1, 3, 5, 10):
            jportal = sr.jportal(
                recovery=RecoveryConfig(
                    top_n=top_n,
                    cost_per_instruction=sr.run.config.compiled_step_cost,
                )
            )
            result = jportal.analyze_run(sr.run, sr.pt_config(BUFFER_128))
            accuracy = run_accuracy(sr.run, result)
            filled = sum(
                f.flow.stats.filled_from_cs for f in result.flows.values()
            )
            outcomes.append((top_n, accuracy.overall, filled))
        return outcomes

    outcomes = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "Ablation B3: top-N CS candidates (h2)",
        ("top-N", "overall accuracy", "holes filled from CS"),
        [(n, "%.1f%%" % (100 * acc), filled) for n, acc, filled in outcomes],
    )
    # More candidates never fill fewer holes.
    fills = [filled for _n, _acc, filled in outcomes]
    assert fills == sorted(fills)
