"""Table 3: data captured/lost and accuracy breakdown vs. buffer size.

Paper: batik, h2, sunflow under 256/128/64 MB buffers; rows PMD, PR, RA,
PDC, PD, DA.  We use the same three subjects under 2x/1x/0.5x of the
scaled "128" buffer, with per-subject calibrated drain bandwidth.

Shape claims (paper Section 7.2):
  * for each subject, the smaller the buffer, the more data is missing;
  * most accuracy loss stems from data loss: DA stays roughly flat across
    buffer sizes while loss varies;
  * recovery accuracy is well below decoding accuracy.
"""

from conftest import BUFFER_128, print_table, subject_run

from repro.profiling.accuracy import run_accuracy

SUBJECTS = ("batik", "h2", "sunflow")
BUFFERS = {"256": BUFFER_128 * 2, "128": BUFFER_128, "64": BUFFER_128 // 2}


def test_table3_breakdown(benchmark):
    def evaluate():
        table = {}
        for name in SUBJECTS:
            sr = subject_run(name)
            jportal = sr.jportal()
            for label, capacity in BUFFERS.items():
                result = jportal.analyze_run(sr.run, sr.pt_config(capacity))
                accuracy = run_accuracy(sr.run, result)
                table[(name, label)] = accuracy
        return table

    table = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    rows = []
    for metric, getter in (
        ("PMD (missing)", lambda a: a.percent_missing_data),
        ("PR (recovered)", lambda a: a.percent_recovered),
        ("RA (recovery acc)", lambda a: a.recovery_accuracy),
        ("PDC (captured)", lambda a: a.percent_data_captured),
        ("PD (decoded)", lambda a: a.percent_decoded),
        ("DA (decoding acc)", lambda a: a.decoding_accuracy),
    ):
        row = [metric]
        for name in SUBJECTS:
            for label in BUFFERS:
                row.append("%.1f%%" % (100 * getter(table[(name, label)])))
        rows.append(tuple(row))

    header = ["Metric"]
    for name in SUBJECTS:
        for label in BUFFERS:
            header.append("%s/%s" % (name[:4], label))
    print_table(
        "Table 3: Breakdown under 256/128/64-scale buffers",
        tuple(header),
        rows,
    )

    # --- shape assertions ---------------------------------------------------
    for name in SUBJECTS:
        loss = [table[(name, label)].percent_missing_data for label in ("256", "128", "64")]
        # Loss grows monotonically as the buffer shrinks.
        assert loss[0] <= loss[1] <= loss[2], (name, loss)
        # Meaningful loss at the 64-scale buffer.
        assert loss[2] > 0.05, (name, loss)
        da = [table[(name, label)].decoding_accuracy for label in ("256", "128", "64")]
        # Decoding accuracy degrades far more slowly than capture volume
        # (paper: roughly flat; our 256-scale buffer is lossless, so DA=1
        # there by construction).
        assert max(da) - min(da) < 0.30, (name, da)
        a128 = table[(name, "128")]
        if a128.percent_recovered > 0:
            assert a128.recovery_accuracy <= a128.decoding_accuracy + 0.05
