"""Ablation C: multi-threaded splitting vs. sideband timestamp skew.

The paper attributes part of its multi-threaded accuracy loss to
thread-switch timestamps that "can be inconsistent with those embedded in
the hardware trace" (Section 7.2).  Our runtime can inject exactly that
skew; this ablation sweeps the jitter magnitude on ``h2`` and shows the
monotone accuracy degradation, isolating the effect from buffer loss
(lossless collection).
"""

import pickle
import time

from conftest import lossless_pt, print_table

from repro.core import JPortal
from repro.core.parallel import ParallelPipeline, ideal_makespan
from repro.profiling.accuracy import run_accuracy
from repro.workloads import build_subject, default_config

# A core's consecutive quanta are separated by (cores x quantum-cost) TSC
# (~10k here), so only jitter on that scale can misattribute boundary
# packets -- the skew regime the paper describes.
JITTERS = (0, 1_000, 6_000, 20_000)

#: Worker counts for the per-thread decode fan-out sweep.
WORKER_COUNTS = (1, 2, 4)


def test_ablation_switch_jitter(benchmark):
    def evaluate():
        rows = []
        for jitter in JITTERS:
            subject = build_subject("h2", size=120)
            # Two cores for four threads: cores are shared, so a skewed
            # switch record can hand one thread's boundary packets to
            # another (with one core per thread, ownership never changes
            # and jitter is harmless).
            config = default_config(cores=2, switch_timestamp_jitter=jitter)
            run = subject.run(config)
            jportal = JPortal(subject.program)
            result = jportal.analyze_run(run, lossless_pt())
            accuracy = run_accuracy(run, result)
            rows.append((jitter, accuracy.overall, result.anomalies))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "Ablation C: accuracy vs. thread-switch timestamp jitter (h2, lossless)",
        ("jitter (tsc)", "overall accuracy", "decode anomalies"),
        [(j, "%.2f%%" % (100 * a), n) for j, a, n in rows],
    )

    # --- shape assertions ---------------------------------------------------
    accuracies = [a for _j, a, _n in rows]
    # Perfect with no jitter; once jitter crosses the inter-quantum gap,
    # boundary packets land in the wrong thread's stream and accuracy
    # drops -- the paper's multi-threaded separation mistakes.
    assert accuracies[0] == 1.0
    assert min(accuracies[1:]) < 1.0
    assert min(accuracies) > 0.35


def test_ablation_parallel_decode_workers(benchmark):
    """Per-thread decode fan-out: sweep the worker count over one
    multi-threaded h2 run.

    Each thread's decode->lift->project->recover chain is independent, so
    the pipeline fans them out to a pool.  Decode wall-clock improves with
    worker count: the scheduled makespan over the *measured* per-thread
    phase timings shrinks from the serial sum toward the critical path
    (slowest thread).  We report the modeled makespan alongside the
    measured wall clock because a GIL-bound single-core CI host serialises
    the workers physically; on such hosts we only require that the fan-out
    adds bounded overhead, never that it beats serial wall time.
    """

    def evaluate():
        subject = build_subject("h2", size=120)
        run = subject.run(default_config(cores=2))
        durations = None
        rows = []
        blobs = []
        for workers in WORKER_COUNTS:
            jportal = JPortal(subject.program)
            pipeline = ParallelPipeline(jportal, max_workers=workers)
            started = time.perf_counter()
            result = pipeline.analyze_run(run, lossless_pt())
            wall = time.perf_counter() - started
            per_thread = result.timings.per_thread
            if durations is None:
                # Model every schedule from the uncontended serial run's
                # per-thread timings: one fixed duration vector swept over
                # worker counts (timings measured under pool contention
                # would conflate scheduling with GIL interference).
                durations = [t.total_seconds for t in per_thread.values()]
            rows.append(
                (
                    workers,
                    len(per_thread),
                    sum(durations),
                    ideal_makespan(durations, workers),
                    max(durations),
                    wall,
                )
            )
            blobs.append(pickle.dumps(result.flows))
        return rows, blobs

    rows, blobs = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "Ablation: decode makespan vs. worker count (h2, lossless)",
        ("workers", "threads", "serial(s)", "makespan(s)", "crit(s)", "wall(s)"),
        [
            (w, n, "%.3f" % s, "%.3f" % m, "%.3f" % c, "%.3f" % wall)
            for w, n, s, m, c, wall in rows
        ],
    )

    # --- shape assertions ---------------------------------------------------
    # Worker count must not change the answer: flows byte-identical.
    assert all(blob == blobs[0] for blob in blobs)
    thread_count = rows[0][1]
    assert thread_count >= 2, "h2 must be multi-threaded for this ablation"
    makespans = [m for _w, _n, _s, m, _c, _wall in rows]
    # One worker = the serial sum; more workers strictly shrink the
    # schedule until it floors at the critical path (slowest thread).
    assert abs(makespans[0] - rows[0][2]) < 1e-9
    assert all(a >= b - 1e-12 for a, b in zip(makespans, makespans[1:]))
    assert makespans[1] < makespans[0]
    critical_path = rows[0][4]
    assert makespans[-1] >= critical_path - 1e-9
    # Measured wall stays within a generous envelope of the serial chain
    # (pool overhead only; no speedup promised on a 1-core GIL host).
    for _w, _n, serial_seconds, _m, _c, wall in rows:
        assert wall < 3.0 * serial_seconds + 1.0
