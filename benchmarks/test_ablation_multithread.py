"""Ablation C: multi-threaded splitting vs. sideband timestamp skew.

The paper attributes part of its multi-threaded accuracy loss to
thread-switch timestamps that "can be inconsistent with those embedded in
the hardware trace" (Section 7.2).  Our runtime can inject exactly that
skew; this ablation sweeps the jitter magnitude on ``h2`` and shows the
monotone accuracy degradation, isolating the effect from buffer loss
(lossless collection).
"""

from conftest import lossless_pt, print_table

from repro.core import JPortal
from repro.profiling.accuracy import run_accuracy
from repro.workloads import build_subject, default_config

# A core's consecutive quanta are separated by (cores x quantum-cost) TSC
# (~10k here), so only jitter on that scale can misattribute boundary
# packets -- the skew regime the paper describes.
JITTERS = (0, 1_000, 6_000, 20_000)


def test_ablation_switch_jitter(benchmark):
    def evaluate():
        rows = []
        for jitter in JITTERS:
            subject = build_subject("h2", size=120)
            # Two cores for four threads: cores are shared, so a skewed
            # switch record can hand one thread's boundary packets to
            # another (with one core per thread, ownership never changes
            # and jitter is harmless).
            config = default_config(cores=2, switch_timestamp_jitter=jitter)
            run = subject.run(config)
            jportal = JPortal(subject.program)
            result = jportal.analyze_run(run, lossless_pt())
            accuracy = run_accuracy(run, result)
            rows.append((jitter, accuracy.overall, result.anomalies))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "Ablation C: accuracy vs. thread-switch timestamp jitter (h2, lossless)",
        ("jitter (tsc)", "overall accuracy", "decode anomalies"),
        [(j, "%.2f%%" % (100 * a), n) for j, a, n in rows],
    )

    # --- shape assertions ---------------------------------------------------
    accuracies = [a for _j, a, _n in rows]
    # Perfect with no jitter; once jitter crosses the inter-quantum gap,
    # boundary packets land in the wrong thread's stream and accuracy
    # drops -- the paper's multi-threaded separation mistakes.
    assert accuracies[0] == 1.0
    assert min(accuracies[1:]) < 1.0
    assert min(accuracies) > 0.35
