"""Figure 7: JPortal's overall control-flow profiling accuracy per subject.

The paper reports 69-91% per subject (80% overall) under the 128 MB
buffer, using instrumentation-collected control flow as ground truth.  We
measure alignment accuracy of the reconstructed flow against the
runtime's exact ground truth under the calibrated "128"-scale buffer.
"""

from conftest import BUFFER_128, print_table, subject_run

from repro.profiling.accuracy import run_accuracy
from repro.workloads import SUBJECT_NAMES


def test_figure7_overall_accuracy(benchmark):
    def evaluate():
        rows = []
        for name in SUBJECT_NAMES:
            sr = subject_run(name)
            jportal = sr.jportal()
            result = jportal.analyze_run(sr.run, sr.pt_config(BUFFER_128))
            accuracy = run_accuracy(sr.run, result)
            rows.append(
                (
                    name,
                    accuracy.overall,
                    accuracy.percent_missing_data,
                    accuracy.decoding_accuracy,
                    accuracy.recovery_accuracy,
                )
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "Figure 7: Overall accuracy per subject (128-scale buffer)",
        ("Subject", "Accuracy", "Loss", "DA", "RA"),
        [
            (
                name,
                "%.1f%%" % (100 * overall),
                "%.1f%%" % (100 * loss),
                "%.1f%%" % (100 * da),
                "%.1f%%" % (100 * ra),
            )
            for name, overall, loss, da, ra in rows
        ],
    )
    overall_mean = sum(r[1] for r in rows) / len(rows)
    print("\nOverall mean accuracy: %.1f%%  (paper: 80%%)" % (100 * overall_mean))

    # --- shape assertions ---------------------------------------------------
    for name, overall, loss, da, _ra in rows:
        # Every subject lands in a paper-like band (paper: 69-91%).
        assert overall > 0.45, (name, overall)
        # Decoding accuracy exceeds overall accuracy (captured data is the
        # trustworthy part; recovery is the weak one) -- paper Section 7.2.
        assert da >= overall - 0.05, (name, da, overall)
    assert 0.55 < overall_mean <= 1.0
