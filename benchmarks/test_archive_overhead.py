"""Durable-archive overhead: CRC-framed ``RPT2`` vs flat ``RPT1``.

Not a paper table -- an engineering benchmark for ISSUE 5's format
change.  The flat stream has zero framing but no crash safety; the
segmented archive pays ``RECORD_OVERHEAD`` bytes per record (sync,
header, header CRC, commit trailer) plus two CRC32 passes per segment.
The assertions pin the *shape*: framing overhead stays a small fraction
of the payload at realistic segment sizes, shrinks as segments grow,
and read/write throughput stays within an order of magnitude of the
unframed baseline.
"""

import os
import time

from repro.core.metadata import collect_metadata
from repro.pt.archive import merge_core_stream, read_archive, write_archive
from repro.pt.perf import collect
from repro.pt.serialize import dump_bytes, load_bytes

from conftest import print_table, subject_run


def _flat_blobs(trace):
    """Per-core flat RPT1 encodings (the pre-archive baseline)."""
    return {
        core.core: dump_bytes(merge_core_stream(core.packets, core.losses))
        for core in trace.cores
    }


def _time(callable_):
    started = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - started


def test_archive_framing_overhead(tmp_path):
    """Framing cost per segment size, against the flat-stream baseline."""
    subject = subject_run("sunflow")
    trace = collect(subject.run, subject.pt_config())
    database = collect_metadata(subject.run)
    flat = _flat_blobs(trace)
    flat_bytes = sum(len(blob) for blob in flat.values())

    rows = []
    overheads = []
    for segment_packets in (64, 256, 1024):
        path = tmp_path / ("trace_%d.rpt2" % segment_packets)
        report = write_archive(
            trace, database, path, segment_packets=segment_packets
        )
        archive_bytes = os.path.getsize(path)
        overhead = archive_bytes / flat_bytes - 1.0
        overheads.append(overhead)
        rows.append(
            (
                segment_packets,
                report.segments,
                flat_bytes,
                archive_bytes,
                "%.2f%%" % (overhead * 100.0),
            )
        )
    print_table(
        "RPT2 framing overhead vs flat RPT1 (sunflow subject)",
        ("seg_packets", "segments", "flat_bytes", "archive_bytes", "overhead"),
        rows,
    )
    # Larger segments amortise the 44-byte record framing.
    assert overheads[0] > overheads[-1]
    # At the default segment size the framing overhead is marginal.  The
    # archive also carries journal/sideband records the flat format
    # simply cannot represent, so the bound is deliberately loose.
    assert overheads[1] < 0.25, overheads


def test_archive_throughput(tmp_path):
    """Write and salvage-read throughput vs the unframed baseline."""
    subject = subject_run("sunflow")
    trace = collect(subject.run, subject.pt_config())
    database = collect_metadata(subject.run)
    flat = _flat_blobs(trace)
    flat_bytes = sum(len(blob) for blob in flat.values())
    path = tmp_path / "trace.rpt2"

    _, flat_write = _time(lambda: _flat_blobs(trace))
    _, flat_read = _time(
        lambda: [load_bytes(blob) for blob in flat.values()]
    )
    report, rpt2_write = _time(
        lambda: write_archive(trace, database, path, segment_packets=256)
    )
    contents, rpt2_read = _time(lambda: read_archive(path))
    assert contents.stats.clean

    def rate(num_bytes, seconds):
        return num_bytes / seconds / 1e6 if seconds > 0 else float("inf")

    rows = [
        ("RPT1 flat", "write", flat_bytes, "%.1f" % rate(flat_bytes, flat_write)),
        ("RPT1 flat", "read", flat_bytes, "%.1f" % rate(flat_bytes, flat_read)),
        (
            "RPT2 archive", "write", report.bytes_written,
            "%.1f" % rate(report.bytes_written, rpt2_write),
        ),
        (
            "RPT2 archive", "read+salvage", contents.stats.file_size,
            "%.1f" % rate(contents.stats.file_size, rpt2_read),
        ),
    ]
    print_table(
        "Archive throughput (sunflow subject)",
        ("format", "op", "bytes", "MB/s"),
        rows,
    )
    # Same order of magnitude: CRC framing must not dominate the cost of
    # the underlying packet serialisation (10x headroom absorbs CI noise).
    assert rpt2_write < flat_write * 10 + 0.5
    assert rpt2_read < flat_read * 10 + 0.5


def test_salvage_read_cost_under_damage(tmp_path):
    """Salvage of a damaged archive costs about the same as a clean read
    (the scanner is one pass either way)."""
    from repro.pt.faults import FaultInjector

    subject = subject_run("sunflow")
    trace = collect(subject.run, subject.pt_config())
    database = collect_metadata(subject.run)
    path = tmp_path / "trace.rpt2"
    write_archive(trace, database, path, segment_packets=256)
    data = open(path, "rb").read()
    _, clean_read = _time(lambda: read_archive(path))

    mutated, faults = FaultInjector(seed=11).corrupt_archive(data, faults=3)
    damaged = tmp_path / "damaged.rpt2"
    damaged.write_bytes(mutated)
    contents, damaged_read = _time(
        lambda: read_archive(damaged, snapshot_path=str(path) + ".meta")
    )
    print_table(
        "Salvage cost under damage",
        ("file", "seconds", "events"),
        [
            ("clean", "%.4f" % clean_read, 0),
            ("3 faults", "%.4f" % damaged_read, len(contents.stats.events)),
        ],
    )
    assert damaged_read < clean_read * 20 + 0.5
