"""Shared infrastructure for the evaluation benchmarks.

Each ``test_table*`` / ``test_figure*`` / ``test_ablation*`` file
regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index).  Subjects are executed once per session and
shared; absolute numbers differ from the paper (our substrate is a
simulator), but the benchmarks assert -- and print -- the *shapes* the
paper reports.

Buffer-size scaling: the paper's 64/128/256 MB per-core buffers are
scaled to bytes appropriate to our trace volumes while preserving the
ratios; the drain bandwidth is calibrated per subject so the "128"-sized
buffer loses roughly what the paper observes (~20-30%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import pytest

from repro.core import JPortal
from repro.core.recovery import RecoveryConfig
from repro.jvm.runtime import RunResult
from repro.pt.buffer import RingBufferConfig
from repro.pt.perf import PTConfig, calibrate_drain_period
from repro.workloads import SUBJECT_NAMES, Subject, build_subject, default_config

#: The "128 MB" equivalent in scaled bytes.
BUFFER_128 = 2048

LOSSLESS = PTConfig(
    buffer=RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1e9)
)


def lossless_pt() -> PTConfig:
    return PTConfig(
        buffer=RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1e9)
    )


@dataclass
class SubjectRun:
    """One executed subject plus its calibrated collection setup."""

    subject: Subject
    run: RunResult
    drain_period: int  # reader wakeup period, ~25% loss at BUFFER_128

    def pt_config(self, capacity: Optional[int] = None) -> PTConfig:
        if capacity is None:
            return lossless_pt()
        return PTConfig(
            buffer=RingBufferConfig(
                capacity_bytes=capacity, drain_period=self.drain_period
            )
        )

    def jportal(self, **kwargs) -> JPortal:
        kwargs.setdefault(
            "recovery",
            RecoveryConfig(cost_per_instruction=self.run.config.compiled_step_cost),
        )
        return JPortal(self.subject.program, **kwargs)


_CACHE: Dict[str, SubjectRun] = {}


def subject_run(name: str) -> SubjectRun:
    """Run a subject once per session (cached) and calibrate its buffer."""
    cached = _CACHE.get(name)
    if cached is None:
        subject = build_subject(name)
        run = subject.run(default_config())
        cached = SubjectRun(
            subject=subject,
            run=run,
            drain_period=calibrate_drain_period(run, BUFFER_128),
        )
        _CACHE[name] = cached
    return cached


@pytest.fixture(scope="session")
def all_subject_runs() -> Dict[str, SubjectRun]:
    return {name: subject_run(name) for name in SUBJECT_NAMES}


def print_table(title: str, header: Tuple[str, ...], rows) -> None:
    """Uniform table printer for benchmark output."""
    print("\n" + "=" * 78)
    print(title)
    print("=" * 78)
    widths = [max(len(str(header[i])), *(len(str(row[i])) for row in rows)) + 2
              for i in range(len(header))] if rows else [len(h) + 2 for h in header]
    print("".join(str(column).ljust(width) for column, width in zip(header, widths)))
    for row in rows:
        print("".join(str(column).ljust(width) for column, width in zip(row, widths)))
