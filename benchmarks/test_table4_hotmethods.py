"""Table 4: hot-method detection accuracy.

Paper: of the true top-10 hottest methods (instrumentation ground truth),
how many appear in each profiler's top-10?  JPortal scores 6-8, the
sampling profilers 0-6.  Our subjects have fewer methods, so we use
top-N with N = min(10, #executed methods) and check the same ordering:
JPortal's reconstructed-flow ranking beats both samplers.
"""

from conftest import BUFFER_128, print_table, subject_run

from repro.profiling.accuracy import hot_method_intersection
from repro.profiling.hotmethods import jportal_hot_methods
from repro.profiling.sampling import (
    JProfilerSampler,
    XProfSampler,
    ground_truth_hot_methods,
)
from repro.workloads import SUBJECT_NAMES, build_subject, default_config

MODE_COSTS = {"interp": 10.0, "jit": 1.0}


def test_table4_hot_method_detection(benchmark):
    def evaluate():
        rows = []
        for name in SUBJECT_NAMES:
            sr = subject_run(name)
            executed = [
                qname
                for qname in sr.run.method_self_cost
                if not qname.startswith("<")
            ]
            top = min(10, max(3, len(executed) - 1))
            truth = ground_truth_hot_methods(sr.run, top=top)

            # JPortal: analyse the lossy trace and rank by weight.
            result = sr.jportal().analyze_run(sr.run, sr.pt_config(BUFFER_128))
            jp = jportal_hot_methods(result, top=top, mode_costs=MODE_COSTS)

            # Sampling profilers: separate sampled runs (coarse periods).
            sampled = build_subject(name).run(
                default_config(sample_interval=20_000)
            )
            sample_truth = ground_truth_hot_methods(sampled, top=top)
            xprof = XProfSampler().profile(sampled).hot_methods(top=top)
            jprof = JProfilerSampler(stride=3).profile(sampled).hot_methods(top=top)

            rows.append(
                (
                    name,
                    top,
                    hot_method_intersection(sample_truth, xprof),
                    hot_method_intersection(sample_truth, jprof),
                    hot_method_intersection(truth, jp),
                )
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "Table 4: Hot methods found (of top-N ground truth)",
        ("Subject", "N", "xprof", "JProfiler", "JPortal"),
        rows,
    )

    # --- shape assertions ---------------------------------------------------
    for name, top, xprof, jprof, jportal in rows:
        assert 0 <= xprof <= top and 0 <= jprof <= top and 0 <= jportal <= top
        # JPortal's report is closest to ground truth (paper's claim).
        assert jportal >= xprof, (name, jportal, xprof)
        assert jportal >= jprof, (name, jportal, jprof)
        assert jportal >= max(2, top - 2), (name, jportal, top)
    total_jportal = sum(row[4] for row in rows)
    total_sampling = max(sum(row[2] for row in rows), sum(row[3] for row in rows))
    assert total_jportal > total_sampling
