"""Table 5: trace sizes and decoding/recovery time.

Paper columns: baseline (instrumentation control-flow tracing) trace size
and decode time vs. JPortal trace size, decode time, and recovery time.
Our equivalents: the instrumentation baseline's trace volume is one
record (8 bytes) per executed basic block; JPortal's is the PT packet
stream; times are measured wall-clock for our offline phases.

Shape claims:
  * PT's compressed trace is far denser than an explicit control-flow
    record stream (bytes per recorded control transfer);
  * decode time scales with trace size across subjects;
  * recovery time is nonzero only where data was lost.
"""

import time

from conftest import BUFFER_128, print_table, subject_run

from repro.profiling.ball_larus import block_executions
from repro.pt.encoder import PTEncoder
from repro.workloads import SUBJECT_NAMES

#: Bytes per record in an instrumentation-based control-flow trace.
BASELINE_RECORD_BYTES = 8


def test_table5_trace_sizes_and_times(benchmark):
    def evaluate():
        rows = []
        for name in SUBJECT_NAMES:
            sr = subject_run(name)
            run = sr.run

            # Baseline: explicit per-block trace records.
            blocks = block_executions(
                run.program, [t.truth for t in run.threads]
            )
            baseline_bytes = blocks * BASELINE_RECORD_BYTES
            started = time.perf_counter()
            # "Decoding" the baseline trace = replaying its records.
            for thread in run.threads:
                for _node in thread.truth:
                    pass
            baseline_seconds = time.perf_counter() - started

            # JPortal: PT packet stream + offline phases.
            pt_bytes = sum(
                sum(p.size for p in PTEncoder().encode(events))
                for events in run.core_events
            )
            result = sr.jportal().analyze_run(sr.run, sr.pt_config(BUFFER_128))
            timings = result.timings

            # Per-thread phase breakdown (the multi-threaded decode
            # ablation's raw material): aggregates must reconcile with
            # the per-thread metrics the registry recorded.
            per_thread = timings.per_thread
            assert per_thread, "per-thread breakdown missing for %s" % name
            split_decode = sum(t.decode_seconds for t in per_thread.values())
            assert abs(split_decode - timings.decode_seconds) < 1e-6
            assert result.metrics.counter("decode.packets") > 0
            assert (
                result.metrics.counter("decode.anomalies") == result.anomalies
            )

            rows.append(
                (
                    name,
                    baseline_bytes,
                    baseline_seconds,
                    pt_bytes,
                    timings.decode_seconds + timings.reconstruct_seconds,
                    timings.recovery_seconds,
                    result.loss_fraction,
                    len(per_thread),
                    timings.critical_path_seconds,
                )
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "Table 5: Trace size and decode/recovery time",
        (
            "Subject", "BL bytes", "BL time(s)", "PT bytes", "DT(s)", "RT(s)",
            "loss", "threads", "crit(s)",
        ),
        [
            (
                name,
                baseline_bytes,
                "%.3f" % baseline_seconds,
                pt_bytes,
                "%.3f" % decode_seconds,
                "%.3f" % recovery_seconds,
                "%.1f%%" % (100 * loss),
                threads,
                "%.3f" % critical_path,
            )
            for name, baseline_bytes, baseline_seconds, pt_bytes,
                decode_seconds, recovery_seconds, loss, threads, critical_path
                in rows
        ],
    )

    # --- shape assertions ---------------------------------------------------
    for (
        name, baseline_bytes, _bs, pt_bytes, decode_seconds,
        recovery_seconds, loss, threads, critical_path,
    ) in rows:
        # PT encodes a control transfer in ~1-3 bytes vs. 8 for records;
        # interpreted execution adds TIPs, so just require a clear win per
        # recorded transfer and sane totals.
        assert pt_bytes > 0 and baseline_bytes > 0
        assert decode_seconds >= 0
        if loss == 0:
            assert recovery_seconds < decode_seconds + 1.0
        # The critical path (slowest thread's chain) bounds the ideal
        # parallel wall clock: never more than the serial total, and for
        # multi-threaded subjects strictly informative.
        assert threads >= 1
        assert critical_path <= decode_seconds + recovery_seconds + 1e-6
    # Decode time correlates with trace volume (bigger traces, more time).
    ordered = sorted(rows, key=lambda row: row[3])
    assert ordered[-1][4] >= ordered[0][4]
