"""Table 1: characteristics of the subject programs.

Paper columns: version, #LoC, #Methods, #Classes, threaded.  Our
equivalents: bytecode instructions (the LoC analogue), methods, classes,
and threading, plus dynamic size for context.
"""

from conftest import print_table, subject_run

from repro.workloads import SUBJECT_NAMES

EXPECTED_THREADED = {"h2", "lusearch", "pmd"}


def test_table1_subject_characteristics(benchmark):
    def build_rows():
        rows = []
        for name in SUBJECT_NAMES:
            sr = subject_run(name)
            stats = sr.subject.program.stats()
            rows.append(
                (
                    name,
                    stats["instructions"],
                    stats["methods"],
                    stats["classes"],
                    stats["branches"],
                    stats["call_sites"],
                    "multiple" if sr.subject.threaded else "single",
                    sr.run.counters["steps"],
                )
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print_table(
        "Table 1: Characteristics of subject programs",
        ("Subject", "#Insts", "#Methods", "#Classes", "#Branches",
         "#CallSites", "Threaded", "DynSteps"),
        rows,
    )
    # Shape assertions mirroring the paper's Table 1.
    by_name = {row[0]: row for row in rows}
    for name in SUBJECT_NAMES:
        threaded = by_name[name][6] == "multiple"
        assert threaded == (name in EXPECTED_THREADED)
        assert by_name[name][1] > 20  # non-trivial static size
        assert by_name[name][7] > 10_000  # non-trivial dynamic size
