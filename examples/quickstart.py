"""Quickstart: trace a tiny program and reconstruct its control flow.

This walks the paper's running example (Figure 2) end to end:

1. assemble ``Test.fun`` / ``Test.main`` in the bytecode ISA;
2. execute them on the tiered runtime (interpreter -> JIT), which emits
   the branch events Intel PT would observe;
3. collect a PT trace (packets per core, lossless buffer here);
4. run JPortal: decode -> project onto the ICFG NFA -> recover;
5. compare the reconstruction against the runtime's ground truth.

Run:  python examples/quickstart.py
"""

from repro.core import JPortal
from repro.jvm import JClass, JProgram, MethodAssembler, verify_program
from repro.jvm.jit import JITPolicy
from repro.jvm.runtime import JVMRuntime, RuntimeConfig
from repro.profiling.accuracy import run_accuracy
from repro.profiling.profiles import ControlFlowProfile
from repro.pt.buffer import RingBufferConfig
from repro.pt.perf import PTConfig


def build_program() -> JProgram:
    """The paper's Figure 2: fun(a, b) = ((a ? b+1 : b-2) % 2 == 0)."""
    fun = MethodAssembler("Test", "fun", arg_count=2, returns_value=True)
    fun.load(0).ifeq("else_")
    fun.load(1).const(1).iadd().store(1).goto("join")
    fun.label("else_")
    fun.load(1).const(2).isub().store(1)
    fun.label("join")
    fun.load(1).const(2).irem().ifne("false_")
    fun.const(1).ireturn()
    fun.label("false_")
    fun.const(0).ireturn()

    main = MethodAssembler("Test", "main", arg_count=0, returns_value=True)
    main.const(0).store(0)
    main.const(0).store(1)
    main.label("head")
    main.load(0).const(100).if_icmpge("done")
    main.load(0).const(2).irem()  # a = i % 2
    main.load(0)  # b = i
    main.invokestatic("Test", "fun", 2, True)
    main.load(1).iadd().store(1)
    main.iinc(0, 1).goto("head")
    main.label("done")
    main.load(1).ireturn()

    cls = JClass("Test")
    cls.add_method(fun.build())
    cls.add_method(main.build())
    program = JProgram("quickstart")
    program.add_class(cls)
    program.set_entry("Test", "main")
    verify_program(program)
    return program


def main() -> None:
    program = build_program()
    print("Program:", program)
    for method in program.methods():
        print(method)
        print()

    # Execute with tracing.  fun becomes hot and is JIT-compiled.
    runtime = JVMRuntime(
        program, RuntimeConfig(cores=1, jit=JITPolicy(hot_threshold=10))
    )
    runtime.add_thread(name="main")
    run = runtime.run()
    print("Result of main():", run.threads[0].result)
    print(
        "Executed %d bytecodes (%d interpreted, %d compiled, %d JIT compiles)"
        % (
            run.counters["steps"],
            run.counters["steps_interp"],
            run.counters["steps_compiled"],
            run.counters["compiles"],
        )
    )

    # Offline analysis with a lossless buffer.
    jportal = JPortal(program)
    pt_config = PTConfig(
        buffer=RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1e9)
    )
    result = jportal.analyze_run(run, pt_config)
    print(
        "\nPT trace: %d packets, %d bytes, %.1f%% lost"
        % (
            result.trace.packet_count(),
            result.trace.bytes_generated,
            100 * result.loss_fraction,
        )
    )

    flow = result.flow_of(0)
    nodes = flow.reconstructed_nodes()
    print("Reconstructed %d bytecode instructions" % len(nodes))
    print("First 12:", nodes[:12])

    accuracy = run_accuracy(run, result)
    print("\nAccuracy vs. ground truth: %.2f%%" % (100 * accuracy.overall))
    assert accuracy.overall == 1.0, "lossless traces reconstruct exactly"

    profile = ControlFlowProfile.from_paths(program, [nodes])
    print("Statement coverage:", profile.statement_coverage())
    print("Hot methods:", profile.hot_methods(top=2))


if __name__ == "__main__":
    main()
