"""Data loss and recovery under shrinking PT buffers (paper Table 3).

Runs the ``batik`` subject once, then collects its trace through ring
buffers of decreasing size.  Smaller buffers overflow more, losing larger
chunks of trace; JPortal segments the stream at the loss records, projects
each segment, and fills the holes from matching complete segments
(falling back to ICFG walks).  The breakdown printed per buffer size
mirrors Table 3's rows: PMD, PDC, PD, PR, DA, RA.

Run:  python examples/data_loss_recovery.py
"""

from repro.core import JPortal
from repro.core.recovery import RecoveryConfig
from repro.profiling.accuracy import run_accuracy
from repro.pt.buffer import RingBufferConfig
from repro.pt.perf import PTConfig, calibrate_drain_period
from repro.workloads import build_subject


def main() -> None:
    subject = build_subject("batik", size=60)
    run = subject.run()
    print(
        "batik: %d executed bytecodes, %d hardware events"
        % (run.counters["steps"], run.event_count())
    )

    jportal = JPortal(
        subject.program,
        recovery=RecoveryConfig(
            cost_per_instruction=run.config.compiled_step_cost,
        ),
    )

    # Calibrate the perf reader's wakeup period so that the 2048-byte
    # ("128 MB"-scale) buffer loses ~25% of this workload's trace, the
    # regime the paper reports.
    period = calibrate_drain_period(run, capacity_bytes=2048)
    print("calibrated reader period: %d tsc" % period)

    header = (
        "buffer",
        "loss(PMD)",
        "captured(PDC)",
        "decoded(PD)",
        "recovered(PR)",
        "DA",
        "RA",
        "overall",
    )
    print("\n%-8s %-10s %-14s %-12s %-14s %-7s %-7s %-7s" % header)
    for capacity in (4096, 2048, 1024, 512):
        pt_config = PTConfig(
            buffer=RingBufferConfig(capacity_bytes=capacity, drain_period=period)
        )
        result = jportal.analyze_run(run, pt_config)
        accuracy = run_accuracy(run, result)
        print(
            "%-8d %-10s %-14s %-12s %-14s %-7s %-7s %-7s"
            % (
                capacity,
                "%.1f%%" % (100 * accuracy.percent_missing_data),
                "%.1f%%" % (100 * accuracy.percent_data_captured),
                "%.1f%%" % (100 * accuracy.percent_decoded),
                "%.1f%%" % (100 * accuracy.percent_recovered),
                "%.1f%%" % (100 * accuracy.decoding_accuracy),
                "%.1f%%" % (100 * accuracy.recovery_accuracy),
                "%.1f%%" % (100 * accuracy.overall),
            )
        )

    # Show what recovery actually did for the smallest buffer.
    result = jportal.analyze_run(
        run,
        PTConfig(buffer=RingBufferConfig(capacity_bytes=512, drain_period=period)),
    )
    stats = result.flow_of(0).flow.stats
    print(
        "\n512-byte buffer recovery details: %d holes, %d filled from "
        "matching complete segments, %d filled by ICFG walk, %d unfilled; "
        "%d instructions recovered"
        % (
            stats.holes,
            stats.filled_from_cs,
            stats.filled_fallback,
            stats.unfilled,
            stats.recovered_instructions,
        )
    )


if __name__ == "__main__":
    main()
