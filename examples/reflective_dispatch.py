"""Reconstruction across a reflective call the static ICFG cannot see.

The paper's Section 4 "Discussions": when the captured instruction
sequence contains a method invocation with no corresponding call node in
the ICFG (reflection), JPortal "inspects all potential callback methods in
the program to find a match".

Here the ``pmd`` subject's virtual rule-dispatch site (``Pmd.visit``
calling ``AstNode.check``) is hidden from the ICFG, so projection must
survive via the callback-entry search; we compare accuracy with and
without the gap, and with the paper-faithful context-insensitive NFA vs.
the PDA-style projection.

Run:  python examples/reflective_dispatch.py
"""

from repro.core import JPortal
from repro.profiling.accuracy import run_accuracy
from repro.pt.buffer import RingBufferConfig
from repro.pt.perf import PTConfig
from repro.workloads import build_subject

LOSSLESS = PTConfig(
    buffer=RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1e9)
)


def main() -> None:
    subject = build_subject("pmd", size=8)
    run = subject.run()
    print(
        "pmd: %d threads, %d executed bytecodes; opaque site: %s"
        % (len(run.threads), run.counters["steps"], subject.opaque_call_sites)
    )

    variants = [
        ("full ICFG, PDA projection", (), True),
        ("full ICFG, plain NFA", (), False),
        ("reflective gap, PDA projection", subject.opaque_call_sites, True),
        ("reflective gap, plain NFA", subject.opaque_call_sites, False),
    ]
    print("\n%-34s %-10s %-10s %-10s" % ("variant", "accuracy", "restarts", "fallbacks"))
    for label, opaque, sensitive in variants:
        jportal = JPortal(
            subject.program,
            opaque_call_sites=opaque,
            context_sensitive=sensitive,
        )
        result = jportal.analyze_run(run, LOSSLESS)
        accuracy = run_accuracy(run, result)
        restarts = sum(f.projection.restarts for f in result.flows.values())
        fallbacks = sum(
            f.projection.callback_fallbacks for f in result.flows.values()
        )
        print(
            "%-34s %-10s %-10d %-10d"
            % (label, "%.2f%%" % (100 * accuracy.overall), restarts, fallbacks)
        )


if __name__ == "__main__":
    main()
