"""Profiling clients on a reconstructed flow: coverage, paths, hot methods.

Exercises the client analyses the paper's introduction motivates --
"function and statement coverage, path profiles, call tree profiles ...
are all close at hand" -- on the ``luindex`` subject:

* statement coverage per method from the JPortal-reconstructed flow;
* Ball-Larus path profile (ground truth) with the hottest path
  regenerated from its path id;
* hot methods: ground truth vs. JPortal vs. the two sampling profilers.

Run:  python examples/profiling_clients.py
"""

from repro.core import JPortal
from repro.profiling.accuracy import hot_method_intersection
from repro.profiling.ball_larus import BallLarusProfiler
from repro.profiling.hotmethods import jportal_hot_methods
from repro.profiling.profiles import ControlFlowProfile
from repro.profiling.sampling import (
    JProfilerSampler,
    XProfSampler,
    ground_truth_hot_methods,
)
from repro.pt.buffer import RingBufferConfig
from repro.pt.perf import PTConfig
from repro.workloads import build_subject, default_config


def main() -> None:
    subject = build_subject("luindex", size=120)
    config = default_config(sample_interval=2_000)  # enable sampling too
    run = subject.run(config)

    jportal = JPortal(subject.program)
    result = jportal.analyze_run(
        run,
        PTConfig(buffer=RingBufferConfig(capacity_bytes=10**8, drain_bandwidth=1e9)),
    )
    flows = [flow.reconstructed_nodes() for flow in result.flows.values()]
    profile = ControlFlowProfile.from_paths(subject.program, flows)

    print("=== Statement coverage (from the reconstructed flow) ===")
    for qname, coverage in sorted(profile.statement_coverage().items()):
        print("  %-20s %5.1f%%" % (qname, 100 * coverage))
    print("  overall: %.1f%%" % (100 * profile.overall_coverage()))

    print("\n=== Ball-Larus path profile (Test harness ground truth) ===")
    profiler = BallLarusProfiler(subject.program)
    path_profile = profiler.profile([t.truth for t in run.threads])
    for qname in sorted(path_profile.per_method):
        counter = path_profile.per_method[qname]
        numbering = profiler.numbering(qname)
        hottest_id, count = counter.most_common(1)[0]
        print(
            "  %-20s %3d static paths, %5d dynamic; hottest id %d (x%d): blocks %s"
            % (
                qname,
                numbering.path_count,
                sum(counter.values()),
                hottest_id,
                count,
                numbering.regenerate(hottest_id),
            )
        )

    print("\n=== Hot methods (top 5) ===")
    truth = ground_truth_hot_methods(run, top=5)
    jp = jportal_hot_methods(result, top=5, mode_costs={"interp": 10.0, "jit": 1.0})
    xprof = XProfSampler().profile(run).hot_methods(top=5)
    jprofiler = JProfilerSampler().profile(run).hot_methods(top=5)
    print("  ground truth:", truth)
    print("  jportal     :", jp, "(%d/5 agree)" % hot_method_intersection(truth, jp))
    print("  xprof       :", xprof, "(%d/5)" % hot_method_intersection(truth, xprof))
    print("  jprofiler   :", jprofiler, "(%d/5)" % hot_method_intersection(truth, jprofiler))


if __name__ == "__main__":
    main()
