"""Per-edge observability classification of the ICFG.

What PT reveals about an ICFG edge depends on how its *source* instruction
is dispatched (see DESIGN.md and the paper's Section 3):

* a **conditional** emits a TNT bit, so both of its arms are directly
  observed -- ``TNT_OBSERVED``;
* any other transfer is witnessed only *indirectly*, by the template TIP
  of the **target** instruction: the edge is ``TIP_OBSERVED`` when that
  TIP discriminates it from every sibling edge of the same source, i.e.
  no other successor starts with the same observable opcode (template
  range);
* when two or more successors of one source share the target opcode the
  dispatch TIP cannot tell them apart -- those edges are ``SILENT``.
  Classic producers: identical-first-opcode switch arms (interpreted
  switches emit no TNT), virtual call edges whose possible callees open
  with the same opcode, and return edges to return sites that happen to
  begin identically.

The classification is purely static (opcode metadata plus, optionally,
the exported template table) and is consumed in two places: the recovery
engine scores hole anchors by how observable their out-edges are
(:meth:`ObservabilityMap.node_score`), and the ambiguity checker reports
silent regions alongside its path-level verdicts.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from ..jvm.icfg import ICFG, IEdge, IEdgeKind
from ..jvm.opcodes import Kind

Node = Tuple[str, int]


class EdgeObservability(enum.Enum):
    """How a PT trace witnesses one ICFG edge."""

    TNT_OBSERVED = "tnt"  # conditional arm: a TNT bit names it directly
    TIP_OBSERVED = "tip"  # the target's dispatch TIP discriminates it
    SILENT = "silent"  # indistinguishable from a sibling edge


class ObservabilityMap:
    """Static per-edge observability verdicts for a whole ICFG.

    Verdicts are keyed by the stable :class:`~repro.jvm.icfg.IEdge` id.
    When a template table is supplied, two target opcodes count as
    distinguishable only if their template address ranges are disjoint
    (:meth:`~repro.jvm.templates.TemplateTable.distinguishes`); without
    one, distinct opcodes are assumed to dispatch through distinct
    templates (true for our layout, and for HotSpot's).
    """

    def __init__(self, icfg: ICFG, template_table=None):
        self._classes: Dict[int, EdgeObservability] = {}
        self._node_scores: Dict[Node, float] = {}
        self._silent_edges: List[IEdge] = []
        for node in icfg.nodes():
            out = icfg.out_edges(node)
            if not out:
                continue
            source_kind = icfg.instruction(node).kind
            if source_kind is Kind.COND:
                for edge in out:
                    self._classes[edge.edge_id] = EdgeObservability.TNT_OBSERVED
                continue
            tokens = [
                self._token(icfg.instruction(edge.dst).symbol(), template_table)
                for edge in out
            ]
            for edge, token in zip(out, tokens):
                if tokens.count(token) > 1:
                    self._classes[edge.edge_id] = EdgeObservability.SILENT
                    self._silent_edges.append(edge)
                else:
                    self._classes[edge.edge_id] = EdgeObservability.TIP_OBSERVED
        # Anchor-quality scores: the fraction of a node's out-edges that
        # are observed at all (an empty out-set is trivially observable).
        for node in icfg.nodes():
            out = icfg.out_edges(node)
            if not out:
                self._node_scores[node] = 1.0
                continue
            observed = sum(
                1
                for edge in out
                if self._classes[edge.edge_id] is not EdgeObservability.SILENT
            )
            self._node_scores[node] = observed / len(out)

    @staticmethod
    def _token(symbol, template_table):
        """The equivalence token the dispatch TIP reveals for *symbol*."""
        if template_table is not None:
            ranges = template_table.ranges_of(symbol)
            if ranges is not None:
                return ranges
        return symbol

    # ---------------------------------------------------------------- queries
    def of(self, edge: IEdge) -> EdgeObservability:
        return self._classes[edge.edge_id]

    def of_id(self, edge_id: int) -> EdgeObservability:
        return self._classes[edge_id]

    def node_score(self, node: Node) -> float:
        """Fraction of *node*'s out-edges a trace can discriminate.

        1.0 means every outgoing transfer is pinned by a TNT bit or a
        unique dispatch TIP; lower values mean a trace through this node
        may be ambiguous about where it went next -- a weak recovery
        anchor.
        """
        return self._node_scores.get(node, 1.0)

    def silent_edges(self) -> List[IEdge]:
        """All SILENT edges, in edge-id order."""
        return list(self._silent_edges)

    def summary(self) -> Dict[str, int]:
        """Counts per observability class (taxonomy totals)."""
        counts = {kind.value: 0 for kind in EdgeObservability}
        for verdict in self._classes.values():
            counts[verdict.value] += 1
        return counts

    def silent_by_method(self) -> Dict[str, int]:
        """SILENT edge count per source method."""
        counts: Dict[str, int] = {}
        for edge in self._silent_edges:
            counts[edge.src[0]] = counts.get(edge.src[0], 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._classes)
