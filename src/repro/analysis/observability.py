"""Per-edge observability classification of the ICFG.

What a hardware trace reveals about an ICFG edge depends on how its
*source* instruction is dispatched (see DESIGN.md and the paper's
Section 3), filtered through the active frontend's
:class:`~repro.tracesource.projection.ProjectionModel`:

* a **conditional** emits an outcome bit (PT TNT, E-Trace branch-map
  bit), so both of its arms are directly observed -- ``TNT_OBSERVED``
  (alias ``OUTCOME_OBSERVED``) -- provided the model observes
  conditionals at all;
* any other transfer is witnessed only *indirectly*, by the target
  address the dispatch reveals (PT template TIP, E-Trace address
  packet): the edge is ``TIP_OBSERVED`` (alias ``TARGET_OBSERVED``)
  when that target discriminates it from every sibling edge of the same
  source, i.e. no other successor starts with the same observable
  opcode (template range);
* when two or more successors of one source share the observable target
  token the dispatch cannot tell them apart -- those edges are
  ``SILENT``.  Classic producers: identical-first-opcode switch arms
  (interpreted switches emit no outcome bit), virtual call edges whose
  possible callees open with the same opcode, and return edges to
  return sites that happen to begin identically.

The classification is purely static (opcode metadata plus, optionally,
the exported template table) and is consumed in two places: the recovery
engine scores hole anchors by how observable their out-edges are
(:meth:`ObservabilityMap.node_score`), and the ambiguity checker reports
silent regions alongside its path-level verdicts.  The default model is
Intel PT's, which reproduces the pre-parametric classification exactly.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from ..jvm.icfg import ICFG, IEdge, IEdgeKind
from ..jvm.opcodes import Kind

Node = Tuple[str, int]


def default_model():
    """The PT projection model: the analysis layer's historical default."""
    from ..tracesource import get_projection_model

    return get_projection_model("pt")


class EdgeObservability(enum.Enum):
    """How a trace witnesses one ICFG edge.

    The canonical names predate frontend pluggability; the frontend-
    neutral aliases (``OUTCOME_OBSERVED``, ``TARGET_OBSERVED``) share
    their values, so comparisons and serialized forms are unchanged.
    """

    TNT_OBSERVED = "tnt"  # conditional arm: an outcome bit names it directly
    OUTCOME_OBSERVED = "tnt"  # frontend-neutral alias
    TIP_OBSERVED = "tip"  # the target's dispatch address discriminates it
    TARGET_OBSERVED = "tip"  # frontend-neutral alias
    SILENT = "silent"  # indistinguishable from a sibling edge


class ObservabilityMap:
    """Static per-edge observability verdicts for a whole ICFG.

    Verdicts are keyed by the stable :class:`~repro.jvm.icfg.IEdge` id.
    When a template table is supplied, two target opcodes count as
    distinguishable only if their template address ranges are disjoint
    (:meth:`~repro.jvm.templates.TemplateTable.distinguishes`); without
    one, distinct opcodes are assumed to dispatch through distinct
    templates (true for our layout, and for HotSpot's).  *model* selects
    the frontend projection (default: PT).
    """

    def __init__(self, icfg: ICFG, template_table=None, model=None):
        if model is None:
            model = default_model()
        self.model = model
        self._classes: Dict[int, EdgeObservability] = {}
        self._node_scores: Dict[Node, float] = {}
        self._silent_edges: List[IEdge] = []
        for node in icfg.nodes():
            out = icfg.out_edges(node)
            if not out:
                continue
            source_kind = icfg.instruction(node).kind
            if source_kind is Kind.COND and model.observes_conditionals:
                for edge in out:
                    self._classes[edge.edge_id] = EdgeObservability.TNT_OBSERVED
                continue
            tokens = [
                self._token(
                    icfg.instruction(edge.dst).symbol(), template_table, model
                )
                for edge in out
            ]
            for edge, token in zip(out, tokens):
                if tokens.count(token) > 1:
                    self._classes[edge.edge_id] = EdgeObservability.SILENT
                    self._silent_edges.append(edge)
                else:
                    self._classes[edge.edge_id] = EdgeObservability.TIP_OBSERVED
        # Anchor-quality scores: the fraction of a node's out-edges that
        # are observed at all (an empty out-set is trivially observable).
        for node in icfg.nodes():
            out = icfg.out_edges(node)
            if not out:
                self._node_scores[node] = 1.0
                continue
            observed = sum(
                1
                for edge in out
                if self._classes[edge.edge_id] is not EdgeObservability.SILENT
            )
            self._node_scores[node] = observed / len(out)

    @staticmethod
    def _token(symbol, template_table, model):
        """The equivalence token the dispatch reveals for *symbol*."""
        ranges = None
        if template_table is not None:
            ranges = template_table.ranges_of(symbol)
        return model.target_token(symbol, ranges)

    # ---------------------------------------------------------------- queries
    def of(self, edge: IEdge) -> EdgeObservability:
        return self._classes[edge.edge_id]

    def of_id(self, edge_id: int) -> EdgeObservability:
        return self._classes[edge_id]

    def node_score(self, node: Node) -> float:
        """Fraction of *node*'s out-edges a trace can discriminate.

        1.0 means every outgoing transfer is pinned by a TNT bit or a
        unique dispatch TIP; lower values mean a trace through this node
        may be ambiguous about where it went next -- a weak recovery
        anchor.
        """
        return self._node_scores.get(node, 1.0)

    def silent_edges(self) -> List[IEdge]:
        """All SILENT edges, in edge-id order."""
        return list(self._silent_edges)

    def summary(self) -> Dict[str, int]:
        """Counts per observability class (taxonomy totals)."""
        counts = {kind.value: 0 for kind in EdgeObservability}
        for verdict in self._classes.values():
            counts[verdict.value] += 1
        return counts

    def silent_by_method(self) -> Dict[str, int]:
        """SILENT edge count per source method."""
        counts: Dict[str, int] = {}
        for edge in self._silent_edges:
            counts[edge.src[0]] = counts.get(edge.src[0], 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._classes)
