"""Well-formedness lint over exported metadata and program structure.

The decode pipeline degrades gracefully on bad metadata (PR 3's
hardening), but degradation at decode time is the *last* line of defence:
most corruption is visible statically, before a single packet is read.
This pass checks the artefacts the offline side consumes:

* **template table** -- unknown mnemonics, empty or inverted ranges,
  overlapping ranges (two opcodes claiming the same dispatch address
  would silently misdecode every interpreted step);
* **JIT code dumps** -- inverted address ranges, concurrently-live dumps
  overlapping in the code cache, debug records outside their dump,
  truncated debug images (an exported record count that no longer
  matches), and unresolvable debug entries: frames whose method name
  does not parse, names no method in the program, or carries a bytecode
  index out of range;
* **program structure** -- verifier cross-check, unreachable basic
  blocks (dead code cannot be traced, and a projection landing there is
  a bug), and ICFG call/return consistency: every non-opaque call edge
  should be answered by return edges back to its return site.

Severity is three-valued: ``ERROR`` findings mean decoding *will* be
wrong or impossible for some input; ``WARNING`` means a likely export or
construction defect worth a look; ``INFO`` is context (opaque sites,
callees that never return).  CI fails on ERROR.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..jvm.cfg import CFG
from ..jvm.icfg import ICFG, IEdgeKind
from ..jvm.model import JProgram, ProgramError
from ..jvm.opcodes import MNEMONICS, Kind
from ..jvm.verifier import VerificationError, verify_program

Node = Tuple[str, int]


class Severity(enum.IntEnum):
    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnostic."""

    check: str
    severity: Severity
    message: str
    qname: Optional[str] = None
    address: Optional[int] = None

    def __str__(self):
        where = ""
        if self.qname:
            where += " [%s]" % self.qname
        if self.address is not None:
            where += " @0x%x" % self.address
        return "%s %s:%s %s" % (
            self.severity.name,
            self.check,
            where,
            self.message,
        )


@dataclass
class LintReport:
    """All findings of one lint run."""

    findings: List[LintFinding] = field(default_factory=list)

    def errors(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)

    def by_check(self) -> Dict[str, List[LintFinding]]:
        grouped: Dict[str, List[LintFinding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.check, []).append(finding)
        return grouped

    def extend(self, findings: List[LintFinding]) -> "LintReport":
        self.findings.extend(findings)
        return self

    def __len__(self):
        return len(self.findings)

    def __str__(self):
        if not self.findings:
            return "lint: clean"
        return "\n".join(str(f) for f in self.findings)


# -------------------------------------------------------------- templates
def lint_templates(
    template_metadata: Dict[str, Tuple[Tuple[int, int], ...]]
) -> List[LintFinding]:
    """Validate an exported template-range table (Figure 2(c) metadata)."""
    findings: List[LintFinding] = []
    intervals: List[Tuple[int, int, str]] = []
    for mnemonic, ranges in template_metadata.items():
        if mnemonic != "<return-stub>" and mnemonic not in MNEMONICS:
            findings.append(
                LintFinding(
                    check="template-unknown-mnemonic",
                    severity=Severity.ERROR,
                    message="exported range for unknown mnemonic %r" % mnemonic,
                )
            )
        for start, end in ranges:
            if end <= start:
                findings.append(
                    LintFinding(
                        check="template-empty-range",
                        severity=Severity.ERROR,
                        message="%s has empty/inverted range [0x%x, 0x%x)"
                        % (mnemonic, start, end),
                        address=start,
                    )
                )
            intervals.append((start, end, mnemonic))
    intervals.sort()
    for (start_a, end_a, name_a), (start_b, end_b, name_b) in zip(
        intervals, intervals[1:]
    ):
        if start_b < end_a:
            findings.append(
                LintFinding(
                    check="template-overlap",
                    severity=Severity.ERROR,
                    message="%s [0x%x, 0x%x) overlaps %s [0x%x, 0x%x)"
                    % (name_a, start_a, end_a, name_b, start_b, end_b),
                    address=start_b,
                )
            )
    exported = set(template_metadata) - {"<return-stub>"}
    for mnemonic in sorted(set(MNEMONICS) - exported):
        findings.append(
            LintFinding(
                check="template-missing-op",
                severity=Severity.WARNING,
                message="no template range exported for %s" % mnemonic,
            )
        )
    return findings


# --------------------------------------------------------------- database
def _resolve_frame(
    program: Optional[JProgram], qname: str, bci: int
) -> Optional[str]:
    """Why a debug frame does not resolve, or ``None`` if it does."""
    if "." not in qname:
        return "frame method name %r does not parse" % qname
    if program is None:
        return None
    class_name, method_name = qname.rsplit(".", 1)
    try:
        method = program.method(class_name, method_name)
    except ProgramError:
        return "frame names unknown method %s" % qname
    if not 0 <= bci < len(method.code):
        return "frame bci %d out of range for %s (len %d)" % (
            bci,
            qname,
            len(method.code),
        )
    return None


def lint_database(database, program: Optional[JProgram] = None) -> List[LintFinding]:
    """Validate an exported code database against the (optional) program.

    *database* is a :class:`repro.core.metadata.CodeDatabase`; passing
    the program enables full debug-frame resolution checks.
    """
    findings: List[LintFinding] = []
    findings.extend(lint_templates(database.template_metadata))
    live: List[Tuple[int, int, int, float, str]] = []
    for dump in database.code_dumps:
        if dump.limit <= dump.entry:
            findings.append(
                LintFinding(
                    check="dump-empty-range",
                    severity=Severity.ERROR,
                    message="dump has empty/inverted range [0x%x, 0x%x)"
                    % (dump.entry, dump.limit),
                    qname=dump.qname,
                    address=dump.entry,
                )
            )
        if (
            dump.declared_debug_count is not None
            and dump.declared_debug_count != len(dump.debug)
        ):
            findings.append(
                LintFinding(
                    check="debug-count-mismatch",
                    severity=Severity.ERROR,
                    message="debug image truncated: %d records declared, %d present"
                    % (dump.declared_debug_count, len(dump.debug)),
                    qname=dump.qname,
                    address=dump.entry,
                )
            )
        unload = dump.unload_tsc if dump.unload_tsc is not None else float("inf")
        live.append((dump.entry, dump.limit, dump.load_tsc, unload, dump.qname))
        for address in sorted(dump.debug):
            if not dump.entry <= address < dump.limit:
                findings.append(
                    LintFinding(
                        check="debug-outside-dump",
                        severity=Severity.ERROR,
                        message="debug record at 0x%x outside [0x%x, 0x%x)"
                        % (address, dump.entry, dump.limit),
                        qname=dump.qname,
                        address=address,
                    )
                )
            for frame_qname, frame_bci in dump.debug[address]:
                reason = _resolve_frame(program, frame_qname, frame_bci)
                if reason is not None:
                    findings.append(
                        LintFinding(
                            check="debug-unresolvable",
                            severity=Severity.ERROR,
                            message=reason,
                            qname=dump.qname,
                            address=address,
                        )
                    )
    # PC overlap between concurrently-live dumps (address reuse across GC
    # reclamation is fine; the lifetimes must not intersect).
    live.sort()
    for index, (start_a, end_a, load_a, unload_a, name_a) in enumerate(live):
        for start_b, end_b, load_b, unload_b, name_b in live[index + 1 :]:
            if start_b >= end_a:
                break
            if load_a < unload_b and load_b < unload_a:
                findings.append(
                    LintFinding(
                        check="dump-pc-overlap",
                        severity=Severity.ERROR,
                        message="live dumps %s and %s overlap at 0x%x"
                        % (name_a, name_b, start_b),
                        qname=name_a,
                        address=start_b,
                    )
                )
    return findings


# ---------------------------------------------------------------- program
def unreachable_blocks(program: JProgram) -> Dict[str, List[int]]:
    """Per-method ids of basic blocks unreachable from the entry block."""
    result: Dict[str, List[int]] = {}
    for method in program.methods():
        cfg = CFG(method)
        seen = {0}
        work = [0]
        while work:
            current = work.pop()
            for succ in cfg.successor_ids(current):
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        dead = [block.block_id for block in cfg.blocks if block.block_id not in seen]
        if dead:
            result[method.qualified_name] = dead
    return result


def unreachable_nodes(program: JProgram) -> Set[Node]:
    """Instruction-level ``(qname, bci)`` nodes inside unreachable blocks."""
    nodes: Set[Node] = set()
    dead_blocks = unreachable_blocks(program)
    for method in program.methods():
        qname = method.qualified_name
        if qname not in dead_blocks:
            continue
        cfg = CFG(method)
        for block_id in dead_blocks[qname]:
            for bci in cfg.blocks[block_id].bcis():
                nodes.add((qname, bci))
    return nodes


def lint_program(
    program: JProgram, icfg: Optional[ICFG] = None
) -> List[LintFinding]:
    """Structural lint: verifier, dead code, call/return consistency."""
    findings: List[LintFinding] = []
    try:
        verify_program(program)
    except VerificationError as error:
        findings.append(
            LintFinding(
                check="verifier",
                severity=Severity.ERROR,
                message=str(error),
            )
        )
    for qname, blocks in sorted(unreachable_blocks(program).items()):
        method = None
        cfg = CFG(program.method(*qname.rsplit(".", 1)))
        for block_id in blocks:
            block = cfg.blocks[block_id]
            findings.append(
                LintFinding(
                    check="unreachable-block",
                    severity=Severity.WARNING,
                    message="block B%d [%d..%d) unreachable from entry"
                    % (block_id, block.start, block.end),
                    qname=qname,
                )
            )
    icfg = icfg or ICFG(program)
    findings.extend(_lint_call_return(icfg))
    for site in sorted(icfg.opaque_call_sites):
        findings.append(
            LintFinding(
                check="opaque-call-site",
                severity=Severity.INFO,
                message="call at bci %d has no static callees "
                "(reconstruction uses the callback search)" % site[1],
                qname=site[0],
            )
        )
    return findings


def _lint_call_return(icfg: ICFG) -> List[LintFinding]:
    """Every call edge should be answered by a return edge (or a reason)."""
    findings: List[LintFinding] = []
    for node in icfg.nodes():
        call_edges = [
            edge for edge in icfg.out_edges(node) if edge.kind is IEdgeKind.CALL
        ]
        if not call_edges:
            continue
        caller_qname, call_bci = node
        caller = icfg.method(caller_qname)
        return_site = call_bci + 1
        if return_site >= len(caller.code):
            findings.append(
                LintFinding(
                    check="call-without-return-site",
                    severity=Severity.WARNING,
                    message="call at bci %d is the last instruction; "
                    "returns cannot land in this method" % call_bci,
                    qname=caller_qname,
                )
            )
            continue
        for edge in call_edges:
            callee_qname = edge.dst[0]
            callee = icfg.method(callee_qname)
            returns = [
                inst for inst in callee.code if inst.kind is Kind.RETURN
            ]
            if not returns:
                findings.append(
                    LintFinding(
                        check="callee-never-returns",
                        severity=Severity.INFO,
                        message="callee %s has no return instruction"
                        % callee_qname,
                        qname=caller_qname,
                    )
                )
                continue
            answered = any(
                back.dst == (caller_qname, return_site)
                for inst in returns
                for back in icfg.out_edges((callee_qname, inst.bci))
                if back.kind is IEdgeKind.RETURN
            )
            if not answered:
                findings.append(
                    LintFinding(
                        check="call-missing-return-edge",
                        severity=Severity.ERROR,
                        message="call edge to %s has no return edge back to "
                        "bci %d" % (callee_qname, return_site),
                        qname=caller_qname,
                    )
                )
    return findings
