"""Command-line front end: ``python -m repro.analysis``.

Examples::

    PYTHONPATH=src python -m repro.analysis avrora
    PYTHONPATH=src python -m repro.analysis --all --fail-on-error
    PYTHONPATH=src python -m repro.analysis --all --all-frontends
    PYTHONPATH=src python -m repro.analysis pmd --frontend etrace --json
    PYTHONPATH=src python -m repro.analysis --generated 2416
    PYTHONPATH=src python -m repro.analysis pmd --static-only
    PYTHONPATH=src python -m repro.analysis plan sunflow
    PYTHONPATH=src python -m repro.analysis plan --all-frontends sunflow

Without ``--static-only`` each subject is also *run* once so the
exported code database (JIT dumps, debug images) goes through the
metadata lints; with it, only the program-level analysis runs.
``--fail-on-error`` exits non-zero when any subject has an ERROR lint
finding or a definitely-ambiguous method -- that is what CI gates on.
``--frontend`` selects the projection model the verdicts are computed
under; ``--all-frontends`` runs the full registered matrix.

The ``plan`` subcommand runs the trace-plan advisor instead: per
frontend it reports the ambiguous-method set, predicted bytes-per-branch
bounds from the packet grammar, silent-edge coverage loss and resync
exposure, and ranks the frontends.  ``--expect-best NAME`` turns the
ranking into an exit-code assertion (the CI advisor-smoke gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from ..jvm.templates import TemplateTable
from .report import AnalysisReport, analyze_program

#: The builtin frontend matrix ``--all-frontends`` expands to.
ALL_FRONTENDS = ("pt", "etrace")


def _analyze_subject(
    name: str, static_only: bool, frontend: str = "pt"
) -> AnalysisReport:
    from ..core.metadata import collect_metadata
    from ..workloads import build_subject, default_config

    subject = build_subject(name)
    database = None
    template_table = TemplateTable()
    if not static_only:
        run = subject.run(default_config())
        database = collect_metadata(run)
        template_table = run.template_table
    return analyze_program(
        subject.program,
        opaque_call_sites=subject.opaque_call_sites,
        template_table=template_table,
        database=database,
        frontend=frontend,
    )


def _analyze_generated(seed: int, frontend: str = "pt") -> AnalysisReport:
    from ..workloads.generator import generate_program

    program = generate_program(seed)
    return analyze_program(
        program, template_table=TemplateTable(), frontend=frontend
    )


def plan_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis plan",
        description="Static trace-plan advisor: rank frontends per subject.",
    )
    parser.add_argument("subject", nargs="*", help="subject name(s)")
    parser.add_argument(
        "--all", action="store_true", help="plan all bundled subjects"
    )
    parser.add_argument(
        "--frontends",
        default=",".join(ALL_FRONTENDS),
        help="comma-separated frontends to rank (default: %(default)s)",
    )
    parser.add_argument(
        "--all-frontends",
        action="store_true",
        help="rank the full builtin frontend matrix (the default set)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit plans as JSON"
    )
    parser.add_argument(
        "--expect-best",
        metavar="FRONTEND",
        help="exit 1 unless every plan recommends this frontend",
    )
    args = parser.parse_args(argv)

    from ..workloads import SUBJECT_NAMES, build_subject
    from .advisor import plan_trace

    targets = list(SUBJECT_NAMES) if args.all else list(args.subject)
    if not targets:
        parser.error("give a subject name or --all")
    frontends = tuple(
        name.strip() for name in args.frontends.split(",") if name.strip()
    )

    failed = False
    documents = []
    for name in targets:
        subject = build_subject(name)
        plan = plan_trace(
            subject.program,
            frontends=frontends,
            template_table=TemplateTable(),
            subject=name,
            opaque_call_sites=subject.opaque_call_sites,
        )
        if args.json:
            documents.append(plan.to_dict())
        else:
            print(plan.render())
            print()
        if (
            args.expect_best is not None
            and plan.recommended.frontend != args.expect_best
        ):
            print(
                "FAIL: %s recommends %r, expected %r"
                % (name, plan.recommended.frontend, args.expect_best),
                file=sys.stderr,
            )
            failed = True
    if args.json:
        print(json.dumps(documents, indent=1, sort_keys=True))
    return 1 if failed else 0


def main(argv: List[str] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "plan":
        return plan_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static decodability analysis over a subject program.",
    )
    parser.add_argument("subject", nargs="*", help="subject name(s), e.g. avrora")
    parser.add_argument(
        "--all", action="store_true", help="analyse all bundled subjects"
    )
    parser.add_argument(
        "--generated",
        type=int,
        metavar="SEED",
        help="analyse a generated workload with this seed instead",
    )
    parser.add_argument(
        "--static-only",
        action="store_true",
        help="skip running the subject (no database/metadata lint)",
    )
    parser.add_argument(
        "--fail-on-error",
        action="store_true",
        help="exit 1 on any ERROR finding or ambiguous method",
    )
    parser.add_argument(
        "--frontend",
        default="pt",
        help="projection model to analyse under (default: pt)",
    )
    parser.add_argument(
        "--all-frontends",
        action="store_true",
        help="analyse every subject under the full frontend matrix",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit per-(subject, frontend) summaries as JSON",
    )
    args = parser.parse_args(argv)

    targets: List[str] = list(args.subject)
    if args.all:
        from ..workloads import SUBJECT_NAMES

        targets = list(SUBJECT_NAMES)
    if not targets and args.generated is None:
        parser.error("give a subject name, --all, or --generated SEED")
    frontends = ALL_FRONTENDS if args.all_frontends else (args.frontend,)

    failed = False
    documents = []
    for frontend in frontends:
        if args.generated is not None:
            report = _analyze_generated(args.generated, frontend=frontend)
            if args.json:
                documents.append(
                    dict(
                        report.summary(),
                        subject="generated-%d" % args.generated,
                    )
                )
            else:
                print(
                    "=== generated seed %d [%s] ==="
                    % (args.generated, frontend)
                )
                print(report.render())
            failed = failed or report.has_errors
        for name in targets:
            report = _analyze_subject(name, args.static_only, frontend=frontend)
            if args.json:
                documents.append(dict(report.summary(), subject=name))
            else:
                print("=== %s [%s] ===" % (name, frontend))
                print(report.render())
                print()
            failed = failed or report.has_errors
    if args.json:
        print(json.dumps(documents, indent=1, sort_keys=True))
    if args.fail_on_error and failed:
        print("FAIL: errors or ambiguous methods found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
