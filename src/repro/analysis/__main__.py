"""Command-line front end: ``python -m repro.analysis``.

Examples::

    PYTHONPATH=src python -m repro.analysis avrora
    PYTHONPATH=src python -m repro.analysis --all --fail-on-error
    PYTHONPATH=src python -m repro.analysis --generated 2416
    PYTHONPATH=src python -m repro.analysis pmd --static-only

Without ``--static-only`` each subject is also *run* once so the
exported code database (JIT dumps, debug images) goes through the
metadata lints; with it, only the program-level analysis runs.
``--fail-on-error`` exits non-zero when any subject has an ERROR lint
finding or a definitely-ambiguous method -- that is what CI gates on.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..jvm.templates import TemplateTable
from .report import AnalysisReport, analyze_program


def _analyze_subject(name: str, static_only: bool) -> AnalysisReport:
    from ..core.metadata import collect_metadata
    from ..workloads import build_subject, default_config

    subject = build_subject(name)
    database = None
    template_table = TemplateTable()
    if not static_only:
        run = subject.run(default_config())
        database = collect_metadata(run)
        template_table = run.template_table
    return analyze_program(
        subject.program,
        opaque_call_sites=subject.opaque_call_sites,
        template_table=template_table,
        database=database,
    )


def _analyze_generated(seed: int) -> AnalysisReport:
    from ..workloads.generator import generate_program

    program = generate_program(seed)
    return analyze_program(program, template_table=TemplateTable())


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static decodability analysis over a subject program.",
    )
    parser.add_argument("subject", nargs="*", help="subject name(s), e.g. avrora")
    parser.add_argument(
        "--all", action="store_true", help="analyse all bundled subjects"
    )
    parser.add_argument(
        "--generated",
        type=int,
        metavar="SEED",
        help="analyse a generated workload with this seed instead",
    )
    parser.add_argument(
        "--static-only",
        action="store_true",
        help="skip running the subject (no database/metadata lint)",
    )
    parser.add_argument(
        "--fail-on-error",
        action="store_true",
        help="exit 1 on any ERROR finding or ambiguous method",
    )
    args = parser.parse_args(argv)

    targets: List[str] = list(args.subject)
    if args.all:
        from ..workloads import SUBJECT_NAMES

        targets = list(SUBJECT_NAMES)
    if not targets and args.generated is None:
        parser.error("give a subject name, --all, or --generated SEED")

    failed = False
    if args.generated is not None:
        report = _analyze_generated(args.generated)
        print("=== generated seed %d ===" % args.generated)
        print(report.render())
        failed = failed or report.has_errors
    for name in targets:
        report = _analyze_subject(name, args.static_only)
        print("=== %s ===" % name)
        print(report.render())
        print()
        failed = failed or report.has_errors
    if args.fail_on_error and failed:
        print("FAIL: errors or ambiguous methods found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
