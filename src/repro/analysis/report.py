"""Aggregate static-analysis report: one object per analysed program.

:func:`analyze_program` is the front door of the package.  It runs the
observability classification, the per-method decodability check, the
dispatch-collision scan, and the structural lints, and returns a single
:class:`AnalysisReport` that the pipeline attaches to every
``JPortalResult`` and the CLI renders.  Database lints (which need the
per-run exported metadata) are merged in later via
:meth:`AnalysisReport.with_database_findings` so the static part can be
computed once per program and reused across runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..jvm.icfg import ICFG
from ..jvm.model import JProgram

from .ambiguity import MethodCheck, check_program, dispatch_collisions
from .lint import LintFinding, LintReport, lint_database, lint_program, unreachable_blocks
from .observability import ObservabilityMap, default_model

Node = Tuple[str, int]


@dataclass(frozen=True)
class MethodVerdict:
    """The per-method slice of the report, for display."""

    qname: str
    decodable: bool
    ambiguous_dfa_states: int
    silent_edges: int

    def __str__(self):
        state = "decodable" if self.decodable else "AMBIGUOUS"
        extra = []
        if self.ambiguous_dfa_states:
            extra.append("%d transient" % self.ambiguous_dfa_states)
        if self.silent_edges:
            extra.append("%d silent edges" % self.silent_edges)
        suffix = (" (%s)" % ", ".join(extra)) if extra else ""
        return "%-40s %s%s" % (self.qname, state, suffix)


@dataclass(frozen=True)
class AnalysisReport:
    """Everything the static pass learned about one program.

    ``frontend`` names the projection model the verdicts were computed
    under (``"pt"`` unless the caller asked otherwise) -- reports are
    per-frontend artifacts, not program-global ones.
    """

    checks: Dict[str, MethodCheck]
    observability: ObservabilityMap
    lint: LintReport
    unreachable: Dict[str, List[int]]
    collisions: List[Tuple[str, int, str, str]]
    static_seconds: float
    frontend: str = "pt"

    # ------------------------------------------------------------ verdicts
    def decodable(self) -> bool:
        """Whether every method passed the definite-ambiguity check."""
        return all(check.decodable for check in self.checks.values())

    def ambiguous_methods(self) -> List[str]:
        return sorted(
            qname for qname, check in self.checks.items() if not check.decodable
        )

    def is_ambiguous(self, qname: str) -> bool:
        check = self.checks.get(qname)
        return check is not None and not check.decodable

    def method_verdicts(self) -> List[MethodVerdict]:
        silent = self.observability.silent_by_method()
        return [
            MethodVerdict(
                qname=qname,
                decodable=check.decodable,
                ambiguous_dfa_states=check.ambiguous_dfa_states,
                silent_edges=silent.get(qname, 0),
            )
            for qname, check in sorted(self.checks.items())
        ]

    @property
    def has_errors(self) -> bool:
        return self.lint.has_errors or not self.decodable()

    def with_database_findings(
        self, findings: Iterable[LintFinding]
    ) -> "AnalysisReport":
        """A new report with per-run database lints merged in."""
        merged = LintReport(findings=list(self.lint.findings))
        merged.extend(list(findings))
        return replace(self, lint=merged)

    # ------------------------------------------------------------- display
    def summary(self) -> Dict[str, object]:
        counts = self.observability.summary()
        return {
            "frontend": self.frontend,
            "methods": len(self.checks),
            "decodable": self.decodable(),
            "ambiguous_methods": self.ambiguous_methods(),
            "transient_dfa_states": sum(
                check.ambiguous_dfa_states for check in self.checks.values()
            ),
            "edges_tnt": counts.get("tnt", 0),
            "edges_tip": counts.get("tip", 0),
            "edges_silent": counts.get("silent", 0),
            "dispatch_collisions": len(self.collisions),
            "unreachable_blocks": sum(len(v) for v in self.unreachable.values()),
            "lint_errors": len(self.lint.errors()),
            "lint_warnings": len(self.lint.warnings()),
            "static_seconds": self.static_seconds,
        }

    def render(self) -> str:
        lines = ["static decodability analysis [frontend: %s]" % self.frontend]
        lines.append("  methods analysed: %d" % len(self.checks))
        counts = self.observability.summary()
        lines.append(
            "  edge observability: %d tnt / %d tip / %d silent"
            % (counts.get("tnt", 0), counts.get("tip", 0), counts.get("silent", 0))
        )
        if self.decodable():
            lines.append("  verdict: fully decodable")
        else:
            lines.append(
                "  verdict: AMBIGUOUS (%s)" % ", ".join(self.ambiguous_methods())
            )
            for qname in self.ambiguous_methods():
                witness = self.checks[qname].witness
                if witness is not None:
                    lines.append("    witness: %s" % witness)
        transient = sum(c.ambiguous_dfa_states for c in self.checks.values())
        if transient:
            lines.append("  transient ambiguity: %d DFA states" % transient)
        for caller, bci, callee_a, callee_b in self.collisions:
            lines.append(
                "  dispatch collision: %s@%d -> {%s, %s} share a prefix"
                % (caller, bci, callee_a, callee_b)
            )
        for qname, blocks in sorted(self.unreachable.items()):
            lines.append("  unreachable: %s blocks %s" % (qname, blocks))
        errors = self.lint.errors()
        warnings = self.lint.warnings()
        lines.append(
            "  lint: %d errors, %d warnings, %d findings total"
            % (len(errors), len(warnings), len(self.lint))
        )
        for finding in errors:
            lines.append("    %s" % finding)
        lines.append("  static analysis time: %.3fs" % self.static_seconds)
        return "\n".join(lines)

    def __str__(self):
        return self.render()


def analyze_program(
    program: JProgram,
    icfg: Optional[ICFG] = None,
    opaque_call_sites: Iterable[Node] = (),
    template_table=None,
    database=None,
    frontend: Optional[str] = None,
    model=None,
) -> AnalysisReport:
    """Run the full static pass over *program*.

    *icfg* is reused if the caller already built one (the pipeline has);
    *template_table* refines observability with real range tokens;
    *database* additionally lints the exported metadata in the same
    pass.  *frontend* names a registered trace frontend whose projection
    model governs observability and ambiguity (default: ``"pt"``);
    passing an explicit *model* overrides the lookup (test hook for
    hypothetical projections).
    """
    started = time.perf_counter()
    if model is None:
        if frontend is None or frontend == "pt":
            model = default_model()
        else:
            from ..tracesource import get_projection_model

            model = get_projection_model(frontend)
    if icfg is None:
        icfg = ICFG(program, opaque_call_sites=opaque_call_sites)
    observability = ObservabilityMap(
        icfg, template_table=template_table, model=model
    )
    checks = check_program(program, model=model)
    collisions = dispatch_collisions(program, model=model)
    lint = LintReport()
    lint.extend(lint_program(program, icfg))
    if database is not None:
        lint.extend(lint_database(database, program))
    return AnalysisReport(
        checks=checks,
        observability=observability,
        lint=lint,
        unreachable=unreachable_blocks(program),
        collisions=collisions,
        static_seconds=time.perf_counter() - started,
        frontend=frontend if frontend is not None else model.name,
    )
