"""Static decodability analysis: what can a PT trace tell us, statically?

The decoder pipeline (``repro.core``) answers "what did this trace
mean".  This package answers, *before any trace exists*, three prior
questions:

* **observability** -- which ICFG edges the hardware reports at all
  (TNT bit, TIP payload) and which are silent;
* **ambiguity** -- whether distinct paths through a method project to
  identical packet sequences (definite ambiguity with concrete witness
  paths, plus the transient subset-construction measure);
* **well-formedness** -- whether the exported metadata (template ranges,
  JIT code dumps, debug images) is internally consistent and resolvable
  against the program.

Every question is answered *per trace frontend*: the analysis is
parametric over the :class:`~repro.tracesource.projection.ProjectionModel`
each registered :class:`~repro.tracesource.TraceFrontend` exports, and
the trace-plan advisor (:mod:`repro.analysis.advisor`) ranks frontends
by predicted decodability, coverage, and bytes-per-branch cost.

Run it from the command line over the bundled subjects::

    PYTHONPATH=src python -m repro.analysis avrora
    PYTHONPATH=src python -m repro.analysis --all --fail-on-error
    PYTHONPATH=src python -m repro.analysis --all --all-frontends
    PYTHONPATH=src python -m repro.analysis plan sunflow
"""

from .ambiguity import (
    AmbiguityWitness,
    MethodCheck,
    check,
    check_program,
    dispatch_collisions,
    program_resolver,
    projection_nfa,
)
from .dominators import (
    VIRTUAL_EXIT,
    DominatorTree,
    PostDominatorTree,
    infer_node_coverage,
)
from .lint import (
    LintFinding,
    LintReport,
    Severity,
    lint_database,
    lint_program,
    lint_templates,
    unreachable_blocks,
    unreachable_nodes,
)
from .advisor import (
    BYTES_PER_BRANCH_RTOL,
    DispatchEstimate,
    FrontendPlan,
    TracePlan,
    estimate_dispatch_ratio,
    plan_trace,
    verify_against_measurement,
)
from .observability import EdgeObservability, ObservabilityMap, default_model
from .report import AnalysisReport, MethodVerdict, analyze_program

__all__ = [
    "AmbiguityWitness",
    "AnalysisReport",
    "BYTES_PER_BRANCH_RTOL",
    "DispatchEstimate",
    "FrontendPlan",
    "TracePlan",
    "default_model",
    "estimate_dispatch_ratio",
    "plan_trace",
    "verify_against_measurement",
    "DominatorTree",
    "EdgeObservability",
    "LintFinding",
    "LintReport",
    "MethodCheck",
    "MethodVerdict",
    "ObservabilityMap",
    "PostDominatorTree",
    "Severity",
    "VIRTUAL_EXIT",
    "analyze_program",
    "check",
    "check_program",
    "dispatch_collisions",
    "infer_node_coverage",
    "lint_database",
    "lint_program",
    "lint_templates",
    "program_resolver",
    "projection_nfa",
    "unreachable_blocks",
    "unreachable_nodes",
]
