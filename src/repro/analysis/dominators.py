"""Dominator and post-dominator trees over basic-block CFGs.

Coverage clients of a control-flow tracer do not need the full
reconstructed path to mark nodes covered: observing one edge proves the
execution of both endpoints *and* of everything that dominates them
(every path from entry to a block passes through its dominators).  This
module supplies the trees -- the iterative algorithm of Cooper, Harvey
and Kennedy over a reverse-postorder numbering -- plus the inference
helper, so edge-level observations (which is all TNT/TIP gives for free)
lift to node coverage without running the projector.

Post-dominators use the same engine on the reversed graph with a virtual
exit joining every return/throw block (and any block with no successors),
so methods with several exits still have a rooted tree.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..jvm.cfg import CFG

#: The virtual exit block id used by the post-dominator tree.
VIRTUAL_EXIT = -1


def _iterative_idoms(
    order: List[int], preds: Dict[int, List[int]], entry: int
) -> Dict[int, int]:
    """Cooper-Harvey-Kennedy: iterate idom intersection to a fixpoint.

    *order* is a reverse postorder over the reachable nodes (entry
    first); unreachable nodes must already be excluded.
    """
    position = {node: index for index, node in enumerate(order)}
    idom: Dict[int, int] = {entry: entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]
            while position[b] > position[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == entry:
                continue
            new_idom: Optional[int] = None
            for pred in preds.get(node, ()):
                if pred not in idom:
                    continue  # not yet processed / unreachable
                new_idom = pred if new_idom is None else intersect(new_idom, pred)
            if new_idom is not None and idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


class DominatorTree:
    """Immediate dominators of a method's reachable basic blocks.

    Unreachable blocks have no entry in the tree: nothing dominates them
    and they dominate nothing (matching the brute-force definition
    restricted to reachable nodes).
    """

    def __init__(self, cfg: CFG, include_exception_edges: bool = True):
        self.cfg = cfg
        self.entry = 0
        order = cfg.reverse_postorder(include_exception_edges)
        # reverse_postorder appends unreachable blocks at the end; drop
        # everything not actually reachable from the entry.
        reachable = self._reachable(cfg, include_exception_edges)
        self.order = [block for block in order if block in reachable]
        preds = {
            block: [
                pred
                for pred in cfg.predecessor_ids(block, include_exception_edges)
                if pred in reachable
            ]
            for block in self.order
        }
        self.idom = _iterative_idoms(self.order, preds, self.entry)

    @staticmethod
    def _reachable(cfg: CFG, include_exception_edges: bool) -> Set[int]:
        seen = {0}
        work = [0]
        while work:
            current = work.pop()
            for succ in cfg.successor_ids(current, include_exception_edges):
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return seen

    # ---------------------------------------------------------------- queries
    def immediate_dominator(self, block: int) -> Optional[int]:
        """The idom of *block* (``None`` for the entry and unreachables)."""
        if block == self.entry:
            return None
        return self.idom.get(block)

    def dominators(self, block: int) -> List[int]:
        """All dominators of *block*, from itself up to the entry."""
        if block not in self.idom:
            return []
        chain = [block]
        while block != self.entry:
            block = self.idom[block]
            chain.append(block)
        return chain

    def dominates(self, a: int, b: int) -> bool:
        """Whether every entry-to-*b* path passes through *a*."""
        if b not in self.idom:
            return False
        while True:
            if b == a:
                return True
            if b == self.entry:
                return False
            b = self.idom[b]


class PostDominatorTree:
    """Immediate post-dominators, rooted at a virtual exit.

    The virtual exit (:data:`VIRTUAL_EXIT`) post-dominates everything;
    blocks that cannot reach any exit (e.g. provably infinite loops with
    no throw) are absent from the tree.
    """

    def __init__(self, cfg: CFG, include_exception_edges: bool = True):
        self.cfg = cfg
        exits = [
            block.block_id
            for block in cfg.blocks
            if not cfg.successor_ids(block.block_id, include_exception_edges)
        ]
        # Reversed graph: edges flipped, virtual exit -> every exit block.
        succs: Dict[int, List[int]] = {VIRTUAL_EXIT: list(exits)}
        for block in cfg.blocks:
            for succ in cfg.successor_ids(block.block_id, include_exception_edges):
                succs.setdefault(succ, []).append(block.block_id)
        # Predecessors in the reversed graph are the original successors.
        preds: Dict[int, List[int]] = {}
        for block in cfg.blocks:
            preds[block.block_id] = list(
                cfg.successor_ids(block.block_id, include_exception_edges)
            )
            if block.block_id in exits:
                preds[block.block_id].append(VIRTUAL_EXIT)
        # Reverse postorder on the reversed graph from the virtual exit.
        order = self._reverse_postorder(succs, VIRTUAL_EXIT)
        reachable = set(order)
        trimmed = {
            node: [pred for pred in preds.get(node, ()) if pred in reachable]
            for node in order
        }
        self.idom = _iterative_idoms(order, trimmed, VIRTUAL_EXIT)

    @staticmethod
    def _reverse_postorder(succs: Dict[int, List[int]], entry: int) -> List[int]:
        visited = {entry}
        postorder: List[int] = []
        stack: List[Tuple[int, Iterable[int]]] = [(entry, iter(succs.get(entry, ())))]
        while stack:
            node, successor_iter = stack[-1]
            advanced = False
            for succ in successor_iter:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succs.get(succ, ()))))
                    advanced = True
                    break
            if not advanced:
                postorder.append(node)
                stack.pop()
        return list(reversed(postorder))

    # ---------------------------------------------------------------- queries
    def immediate_post_dominator(self, block: int) -> Optional[int]:
        if block == VIRTUAL_EXIT:
            return None
        return self.idom.get(block)

    def post_dominates(self, a: int, b: int) -> bool:
        """Whether every *b*-to-exit path passes through *a*."""
        if b not in self.idom:
            return False
        while True:
            if b == a:
                return True
            if b == VIRTUAL_EXIT:
                return False
            b = self.idom[b]


def infer_node_coverage(
    cfg: CFG,
    tree: DominatorTree,
    observed_blocks: Iterable[int],
) -> Set[int]:
    """Blocks provably executed given the directly observed ones.

    A block's execution implies the execution of all its dominators, so
    the answer is the observed set closed under the dominator relation --
    no projector run required.
    """
    covered: Set[int] = set()
    for block in observed_blocks:
        covered.update(tree.dominators(block))
    return covered
