"""Trace-plan advisor: which frontend should trace this program?

Given a program (and optionally its template table), the advisor runs
the frontend-parametric static analysis once per registered frontend and
combines three ingredients into a ranked recommendation, all *before a
single byte is traced*:

* **decodability** -- the per-frontend ambiguous-method set and
  transient-ambiguity measure from :func:`repro.analysis.analyze_program`;
* **coverage** -- the SILENT edge fraction under each frontend's
  projection (edges no packet will ever discriminate);
* **cost** -- predicted bytes per conditional branch, derived from the
  frontend's :class:`~repro.tracesource.projection.ProjectionModel`
  packet grammar and a static dispatch-per-branch estimate.

The cost prediction brackets two execution regimes.  In interpreted
code every bytecode dispatch emits a target packet and every pending
outcome batch is flushed before it, so the upper regime is
``outcome_packet_bytes(1) + R_hi * worst-case target bytes`` with
``R_hi`` the loop-body instructions-per-conditional ratio.  In JIT
compiled code only genuine indirect transfers (calls, returns,
switches, throws) emit target packets and outcome batches fill up, so
the lower regime uses ``R_lo``, the loop-body indirect-transfer ratio,
with best-case packing.  The point estimate takes the geometric mean of
the two dispatch ratios (hot code is a JIT/interp blend) at the
grammar's typical target size.  Against the measured cross-format bench
this estimate is accurate to well within :data:`BYTES_PER_BRANCH_RTOL`
relative error on the golden subjects, and the [low, high] bounds
always contain the measurement -- ``repro.bench.run_advisor_accuracy``
records both, and the advisor-smoke CI step pins the PT-vs-E-Trace
ranking.

Ranking: frontends that leave methods definitely ambiguous sort last;
ties break on silent-edge coverage loss, then on estimated bytes per
branch, then on resync exposure.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..jvm.model import JProgram
from ..jvm.opcodes import Kind

from .report import AnalysisReport, analyze_program

#: Documented error bound for the bytes-per-branch *point estimate*
#: against the measured cross-format bench on the golden subjects.  The
#: [low, high] bounds are hard: a measurement outside them is a model
#: bug, not an estimation error.
BYTES_PER_BRANCH_RTOL = 0.5

#: Instruction kinds that still emit a target packet from JIT-compiled
#: code (the lower dispatch regime).
_INDIRECT_KINDS = (Kind.CALL, Kind.RETURN, Kind.SWITCH, Kind.THROW)


@dataclass(frozen=True)
class DispatchEstimate:
    """Static dispatches-per-conditional-branch estimate for one program.

    ``low`` is the JIT regime (indirect transfers only), ``high`` the
    interpreted regime (every instruction), both measured over natural
    loop bodies (backward-branch intervals) where execution
    concentrates; ``point`` is their geometric mean.
    """

    low: float
    high: float
    point: float
    cond_sites: int
    loop_cond_sites: int


def estimate_dispatch_ratio(program: JProgram) -> DispatchEstimate:
    """Estimate dynamic dispatches per conditional from static structure.

    Loop bodies are approximated by backward-branch intervals
    ``[target, branch]`` within each method; programs without loops fall
    back to whole-program instruction counts.
    """
    loop_n = loop_c = loop_i = 0
    total_n = total_c = total_i = 0
    for method in program.methods():
        code = method.code
        total_n += len(code)
        total_c += sum(1 for inst in code if inst.kind is Kind.COND)
        total_i += sum(1 for inst in code if inst.kind in _INDIRECT_KINDS)
        for inst in code:
            target = getattr(inst, "target", None)
            if (
                target is not None
                and target <= inst.bci
                and inst.kind in (Kind.COND, Kind.GOTO)
            ):
                body = [i for i in code if target <= i.bci <= inst.bci]
                loop_n += len(body)
                loop_c += sum(1 for i in body if i.kind is Kind.COND)
                loop_i += sum(1 for i in body if i.kind in _INDIRECT_KINDS)
    if loop_c == 0:
        loop_n, loop_c, loop_i = total_n, total_c, total_i
    if loop_c == 0:
        # A branch-free program: cost-per-branch is moot; report the
        # dispatch volume itself so the estimate stays finite.
        return DispatchEstimate(
            low=float(max(loop_i, 1)),
            high=float(max(loop_n, 1)),
            point=math.sqrt(max(loop_i, 1) * max(loop_n, 1)),
            cond_sites=total_c,
            loop_cond_sites=0,
        )
    low = max(loop_i, 1) / loop_c
    high = loop_n / loop_c
    return DispatchEstimate(
        low=low,
        high=high,
        point=math.sqrt(low * high),
        cond_sites=total_c,
        loop_cond_sites=loop_c,
    )


@dataclass(frozen=True)
class FrontendPlan:
    """One frontend's row in the trace plan."""

    frontend: str
    decodable: bool
    ambiguous_methods: Tuple[str, ...]
    transient_dfa_states: int
    silent_edges: int
    total_edges: int
    bytes_per_branch_low: float
    bytes_per_branch_high: float
    bytes_per_branch_estimate: float
    resync_exposure: float

    @property
    def silent_fraction(self) -> float:
        if not self.total_edges:
            return 0.0
        return self.silent_edges / self.total_edges

    def sort_key(self):
        """Lower sorts better: ambiguity, coverage loss, cost, resync."""
        return (
            len(self.ambiguous_methods),
            self.silent_fraction,
            self.bytes_per_branch_estimate,
            self.resync_exposure,
            self.frontend,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "frontend": self.frontend,
            "decodable": self.decodable,
            "ambiguous_methods": list(self.ambiguous_methods),
            "transient_dfa_states": self.transient_dfa_states,
            "silent_edges": self.silent_edges,
            "total_edges": self.total_edges,
            "silent_fraction": self.silent_fraction,
            "bytes_per_branch_low": self.bytes_per_branch_low,
            "bytes_per_branch_high": self.bytes_per_branch_high,
            "bytes_per_branch_estimate": self.bytes_per_branch_estimate,
            "resync_exposure": self.resync_exposure,
        }


@dataclass(frozen=True)
class TracePlan:
    """The advisor's full output: ranked per-frontend plans."""

    subject: str
    plans: Tuple[FrontendPlan, ...]
    dispatch: DispatchEstimate

    @property
    def recommended(self) -> FrontendPlan:
        return self.plans[0]

    def plan_for(self, frontend: str) -> FrontendPlan:
        for plan in self.plans:
            if plan.frontend == frontend:
                return plan
        raise KeyError("no plan for frontend %r" % (frontend,))

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "recommended": self.recommended.frontend,
            "dispatch_ratio": {
                "low": self.dispatch.low,
                "high": self.dispatch.high,
                "point": self.dispatch.point,
            },
            "frontends": [plan.to_dict() for plan in self.plans],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    def render(self) -> str:
        lines = ["trace plan: %s" % self.subject]
        lines.append(
            "  dispatch/branch estimate: %.2f (regime bounds %.2f..%.2f)"
            % (self.dispatch.point, self.dispatch.low, self.dispatch.high)
        )
        for rank, plan in enumerate(self.plans, start=1):
            marker = "*" if rank == 1 else " "
            verdict = (
                "decodable"
                if plan.decodable
                else "AMBIGUOUS(%d)" % len(plan.ambiguous_methods)
            )
            lines.append(
                "  %s %d. %-8s %s  %.1f B/branch (%.1f..%.1f)"
                "  silent %d/%d  resync %.4f"
                % (
                    marker,
                    rank,
                    plan.frontend,
                    verdict,
                    plan.bytes_per_branch_estimate,
                    plan.bytes_per_branch_low,
                    plan.bytes_per_branch_high,
                    plan.silent_edges,
                    plan.total_edges,
                    plan.resync_exposure,
                )
            )
            if plan.ambiguous_methods:
                lines.append(
                    "       ambiguous: %s" % ", ".join(plan.ambiguous_methods)
                )
            if plan.transient_dfa_states:
                lines.append(
                    "       transient ambiguity: %d DFA states"
                    % plan.transient_dfa_states
                )
        lines.append("  recommendation: %s" % self.recommended.frontend)
        return "\n".join(lines)

    def __str__(self):
        return self.render()


def _cost_bounds(model, dispatch: DispatchEstimate) -> Tuple[float, float, float]:
    """(low, high, estimate) bytes per conditional branch under *model*.

    Low: JIT regime -- outcome batches packed to capacity, minimal
    target compression, only indirect transfers dispatch.  High:
    interpreted regime -- every outcome flushed alone, worst-case target
    bytes plus the full sync share, every instruction dispatches.  The
    time-packet share (one per ~2000 events) is below rounding and is
    ignored; async events are workload-dependent and excluded from the
    per-branch figure.
    """
    best_outcome, worst_outcome = model.bytes_per_outcome_bounds()
    ind_low, ind_high = model.indirect_bytes_bounds()
    low = best_outcome + dispatch.low * ind_low
    high = worst_outcome + dispatch.high * ind_high
    estimate = worst_outcome + dispatch.point * model.indirect_bytes_estimate()
    return low, high, estimate


def plan_trace(
    program: JProgram,
    frontends: Sequence[str] = ("pt", "etrace"),
    template_table=None,
    subject: str = "<program>",
    opaque_call_sites=(),
    reports: Optional[Dict[str, AnalysisReport]] = None,
) -> TracePlan:
    """Rank *frontends* for tracing *program*, statically.

    *reports* may supply already-computed per-frontend analysis reports
    (the CLI reuses the lint pass's); missing entries are computed here.
    """
    from ..tracesource import get_projection_model

    dispatch = estimate_dispatch_ratio(program)
    plans: List[FrontendPlan] = []
    for name in frontends:
        model = get_projection_model(name)
        report = (reports or {}).get(name)
        if report is None:
            report = analyze_program(
                program,
                opaque_call_sites=opaque_call_sites,
                template_table=template_table,
                frontend=name,
            )
        counts = report.observability.summary()
        total_edges = sum(counts.values())
        low, high, estimate = _cost_bounds(model, dispatch)
        plans.append(
            FrontendPlan(
                frontend=name,
                decodable=report.decodable(),
                ambiguous_methods=tuple(report.ambiguous_methods()),
                transient_dfa_states=sum(
                    check.ambiguous_dfa_states
                    for check in report.checks.values()
                ),
                silent_edges=counts.get("silent", 0),
                total_edges=total_edges,
                bytes_per_branch_low=low,
                bytes_per_branch_high=high,
                bytes_per_branch_estimate=estimate,
                resync_exposure=model.resync_exposure(),
            )
        )
    plans.sort(key=lambda plan: plan.sort_key())
    return TracePlan(subject=subject, plans=tuple(plans), dispatch=dispatch)


def verify_against_measurement(
    plan: TracePlan, cross_format: Dict[str, object]
) -> List[str]:
    """Cross-check a static plan against a dynamic cross-format entry.

    *cross_format* is the dict produced by
    :func:`repro.bench.run_cross_format`.  Returns a list of human-
    readable violations (empty when the plan is sound): a measured
    bytes-per-branch outside the static [low, high] bounds, a point
    estimate off by more than :data:`BYTES_PER_BRANCH_RTOL`, or a
    measured frontend ranking that contradicts the recommendation.
    """
    problems: List[str] = []
    formats = cross_format.get("formats", {})
    measured: Dict[str, float] = {}
    for name, entry in formats.items():
        try:
            plan_row = plan.plan_for(name)
        except KeyError:
            continue
        value = float(entry["bytes_per_branch"])
        measured[name] = value
        if not (
            plan_row.bytes_per_branch_low
            <= value
            <= plan_row.bytes_per_branch_high
        ):
            problems.append(
                "%s: measured %.2f B/branch outside static bounds"
                " [%.2f, %.2f]"
                % (
                    name,
                    value,
                    plan_row.bytes_per_branch_low,
                    plan_row.bytes_per_branch_high,
                )
            )
        rel_error = abs(plan_row.bytes_per_branch_estimate - value) / value
        if rel_error > BYTES_PER_BRANCH_RTOL:
            problems.append(
                "%s: estimate %.2f vs measured %.2f B/branch"
                " (relative error %.2f > %.2f)"
                % (
                    name,
                    plan_row.bytes_per_branch_estimate,
                    value,
                    rel_error,
                    BYTES_PER_BRANCH_RTOL,
                )
            )
    if len(measured) >= 2:
        best_measured = min(measured, key=lambda name: measured[name])
        ranked = [p.frontend for p in plan.plans if p.frontend in measured]
        if ranked and ranked[0] != best_measured:
            problems.append(
                "recommendation %r contradicts measurement (densest: %r)"
                % (ranked[0], best_measured)
            )
    return problems
