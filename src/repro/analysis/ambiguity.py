"""Static decodability analysis: can a lossless trace name the path?

The paper's precision results (Theorem 4.4, Lemma 5.4) presuppose that
the PT-visible *projection* of a method distinguishes its paths: each
executed instruction contributes its template-dispatch TIP (the opcode,
not the bci) and each conditional contributes a TNT bit.  That projection
is not always injective.  Generator seed 2416 found the counterexample
empirically in PR 3: two ``tableswitch`` arms with identical opcode
sequences rejoining at the same join block -- the interpreted switch
emits no TNT, so the two paths produce byte-identical traces and no
decoder, however clever, can tell them apart.

This module detects that class *statically*.  Per method it builds the
**packet-projection NFA** (states = bcis plus an exit sink; an edge
consumes its source instruction's observable label) and decides:

* **definite ambiguity** -- two distinct paths with identical label
  sequences that diverge and later *rejoin* (the same state, hence the
  same continuation forever after).  Detected on the self-product
  automaton: a pair ``(p, q)`` with ``p != q`` reachable from a diagonal
  seed by label-matched steps, stepping back onto the diagonal.  The
  parent chain yields a concrete two-path witness.  This is the
  information-theoretically unrecoverable class; a method containing one
  is *not decodable*.
* **transient ambiguity** -- states where the subset construction
  (:func:`repro.core.nfa.determinize`, the Figure 5 pipeline) holds more
  than one NFA state: the trace is momentarily ambiguous but later
  symbols disambiguate.  Reported as a count, not a failure.

Call instructions need care: within one method a call "falls through",
but the trace observes the callee's template TIPs in between, so a call
edge's label embeds the callee's *observable prefix* (bounded recursive
expansion; virtual sites contribute one labelled edge per possible
callee).  Two switch arms calling different callees are therefore
distinguishable exactly when the callees' opening opcode sequences
differ -- which is what the trace can actually see.  Truncating the
prefix at the bound only ever *merges* labels, so the analysis errs
toward reporting ambiguity, never toward certifying a genuinely
ambiguous method as decodable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..jvm.instructions import MethodRef
from ..jvm.model import JMethod, JProgram, ProgramError
from ..jvm.opcodes import Kind, Op
from ..core.nfa import NFA, determinize
from .observability import default_model

#: Maximum observable symbols embedded in one call-edge label.
MAX_CALL_PREFIX = 12
#: Maximum nested-call expansion depth while computing a prefix.
MAX_CALL_DEPTH = 3

#: ``resolver(methodref, virtual) -> [JMethod, ...]`` -- the possible
#: callees of a call instruction; an empty list means "unknown".
Resolver = Callable[[MethodRef, bool], List[JMethod]]


def program_resolver(program: JProgram) -> Resolver:
    """A :data:`Resolver` over a whole program's static dispatch."""

    def resolve(ref: MethodRef, virtual: bool) -> List[JMethod]:
        try:
            return program.possible_targets(ref, virtual)
        except ProgramError:
            return []

    return resolve


@dataclass(frozen=True)
class AmbiguityWitness:
    """Two distinct same-projection paths through one method.

    ``path_a`` and ``path_b`` are bci sequences of equal length; both
    start at ``path_a[0] == path_b[0]`` (the divergence state), end at
    the common rejoin state, and consume the same ``labels`` -- so a
    trace of either is byte-identical to a trace of the other.  A bci
    equal to the method's code length denotes the exit sink.
    """

    qname: str
    path_a: Tuple[int, ...]
    path_b: Tuple[int, ...]
    labels: Tuple[object, ...]

    def __str__(self):
        return "%s: %s vs %s under %d identical labels" % (
            self.qname,
            list(self.path_a),
            list(self.path_b),
            len(self.labels),
        )


@dataclass(frozen=True)
class MethodCheck:
    """Decodability verdict for one method."""

    qname: str
    decodable: bool
    witness: Optional[AmbiguityWitness]
    nfa_states: int
    dfa_states: int
    #: DFA states holding >1 NFA state: transient (recoverable) ambiguity.
    ambiguous_dfa_states: int


# ------------------------------------------------------- projection NFA
def _observable_prefix(
    method: JMethod,
    resolver: Optional[Resolver],
    length: int = MAX_CALL_PREFIX,
    depth: int = MAX_CALL_DEPTH,
    model=None,
) -> Tuple[object, ...]:
    """The symbol sequence a trace is guaranteed to open with in *method*.

    Straight-line walk from bci 0; stops at the first branching point
    (conditional, switch, return, throw -- included, then cut) and at
    calls it cannot expand (unknown or non-unique callee).  Truncation is
    conservative: shorter prefixes merge more labels.  Symbols pass
    through the model's :meth:`symbol_token` -- a frontend that never
    reports dispatch targets collapses every prefix to one constant.
    """
    if model is None:
        model = default_model()
    symbols: List[object] = []
    bci = 0
    count = len(method.code)
    while bci < count and len(symbols) < length:
        inst = method.code[bci]
        symbols.append(model.symbol_token(inst.symbol()))
        kind = inst.kind
        if kind in (Kind.COND, Kind.SWITCH, Kind.RETURN, Kind.THROW):
            break
        if kind is Kind.CALL:
            targets = resolver(inst.methodref, inst.op is Op.INVOKEVIRTUAL) if resolver else []
            if depth <= 0 or len(targets) != 1:
                break
            nested = _observable_prefix(
                targets[0], resolver, length - len(symbols), depth - 1, model
            )
            symbols.extend(nested)
            break  # what follows the nested return is not modelled
        if kind is Kind.GOTO:
            bci = inst.target
            continue
        bci += 1
    return tuple(symbols)


def _call_labels(
    inst, method: JMethod, resolver: Optional[Resolver], model
) -> List[object]:
    """One label per possible callee of a call instruction.

    Each label embeds the callee's observable prefix; an unresolvable
    call gets the single marker label ``(op, None)`` so *all* unknown
    callees collide (conservative).
    """
    token = model.symbol_token(inst.symbol())
    targets = resolver(inst.methodref, inst.op is Op.INVOKEVIRTUAL) if resolver else []
    if not targets:
        return [(token, None)]
    labels = []
    for callee in targets:
        labels.append(
            (token, _observable_prefix(callee, resolver, model=model))
        )
    return labels


def projection_nfa(
    method: JMethod, resolver: Optional[Resolver] = None, model=None
) -> NFA:
    """The packet-projection NFA of one method (states = bcis + sink).

    An edge consumes the *source* instruction's observable label under
    the frontend's projection *model* (default: PT): for PT that is
    ``(symbol, taken)`` for conditionals (the outcome bit is observed),
    ``(symbol, callee_prefix)`` for calls (the callee's template
    dispatches are observed before control falls through) and
    ``(symbol, None)`` otherwise -- notably for switches, whose
    interpreted dispatch emits no outcome bit, so every arm shares one
    label.  A model that hides conditionals or targets merges the
    corresponding labels instead.  ``athrow`` transfers to its innermost
    covering handler when one exists, else to the sink.
    """
    if model is None:
        model = default_model()
    count = len(method.code)
    nfa = NFA(state_count=count + 1)
    sink = count
    nfa.starts = frozenset({0})
    nfa.accepts = frozenset(range(count + 1))
    for inst in method.code:
        kind = inst.kind
        if kind is Kind.COND:
            if inst.bci + 1 < count:
                nfa.add(
                    inst.bci,
                    model.conditional_label(inst.symbol(), False),
                    inst.bci + 1,
                )
            nfa.add(
                inst.bci,
                model.conditional_label(inst.symbol(), True),
                inst.target,
            )
        elif kind is Kind.RETURN:
            nfa.add(inst.bci, model.transfer_label(inst.symbol()), sink)
        elif kind is Kind.THROW:
            handler = method.handler_for(inst.bci)
            target = handler.handler if handler is not None else sink
            nfa.add(inst.bci, model.transfer_label(inst.symbol()), target)
        elif kind is Kind.CALL:
            target = inst.bci + 1 if inst.bci + 1 < count else sink
            for label in _call_labels(inst, method, resolver, model):
                nfa.add(inst.bci, label, target)
        else:
            for target in inst.successors_within(count):
                nfa.add(inst.bci, model.transfer_label(inst.symbol()), target)
    return nfa


# ------------------------------------------------------- product search
def _find_diamond(
    nfa: NFA, qname: str
) -> Optional[AmbiguityWitness]:
    """Search the self-product automaton for a diverge/rejoin witness.

    BFS over ordered pairs ``(p, q)``, ``p != q``, seeded by states with
    two same-label out-edges to distinct targets; a label-matched step
    from a pair onto a single common target closes the diamond.  Parent
    pointers reconstruct the two concrete paths.
    """
    transitions = nfa.transitions
    # pair -> (parent_pair | None, seed_state | None, label)
    parent: Dict[Tuple[int, int], Tuple[Optional[Tuple[int, int]], Optional[int], object]] = {}
    queue: deque = deque()
    for state in sorted(transitions):
        by_label: Dict[object, List[int]] = {}
        for label, dst in transitions[state]:
            targets = by_label.setdefault(label, [])
            if dst not in targets:
                targets.append(dst)
        for label in sorted(by_label, key=repr):
            targets = by_label[label]
            for left in targets:
                for right in targets:
                    if left == right:
                        continue
                    pair = (left, right)
                    if pair not in parent:
                        parent[pair] = (None, state, label)
                        queue.append(pair)
    while queue:
        pair = queue.popleft()
        p, q = pair
        q_moves: Dict[object, List[int]] = {}
        for label, dst in transitions.get(q, ()):
            targets = q_moves.setdefault(label, [])
            if dst not in targets:
                targets.append(dst)
        for label, p_dst in transitions.get(p, ()):
            for q_dst in q_moves.get(label, ()):
                if p_dst == q_dst:
                    return _witness(parent, pair, label, p_dst, qname)
                nxt = (p_dst, q_dst)
                if nxt not in parent:
                    parent[nxt] = (pair, None, label)
                    queue.append(nxt)
    return None


def _witness(
    parent: Dict,
    pair: Tuple[int, int],
    join_label: object,
    join_state: int,
    qname: str,
) -> AmbiguityWitness:
    a_rev = [join_state, pair[0]]
    b_rev = [join_state, pair[1]]
    labels_rev = [join_label]
    current = pair
    while True:
        prev, seed_state, label = parent[current]
        labels_rev.append(label)
        if prev is None:
            a_rev.append(seed_state)
            b_rev.append(seed_state)
            break
        a_rev.append(prev[0])
        b_rev.append(prev[1])
        current = prev
    return AmbiguityWitness(
        qname=qname,
        path_a=tuple(reversed(a_rev)),
        path_b=tuple(reversed(b_rev)),
        labels=tuple(reversed(labels_rev)),
    )


# ------------------------------------------------------------------- API
def check(
    method: JMethod, resolver: Optional[Resolver] = None, model=None
) -> MethodCheck:
    """Decide whether *method*'s paths are decodable from a lossless trace.

    Runs the product search for definite ambiguity and the Figure 5
    subset construction (reused from :mod:`repro.core.nfa`) for the
    transient-ambiguity measure, both under the frontend's projection
    *model* (default: PT).
    """
    nfa = projection_nfa(method, resolver, model=model)
    witness = _find_diamond(nfa, method.qualified_name)
    dfa = determinize(nfa)
    ambiguous = sum(1 for state in dfa.transitions if len(state) > 1)
    return MethodCheck(
        qname=method.qualified_name,
        decodable=witness is None,
        witness=witness,
        nfa_states=nfa.state_count,
        dfa_states=dfa.state_count(),
        ambiguous_dfa_states=ambiguous,
    )


def check_program(
    program: JProgram, resolver: Optional[Resolver] = None, model=None
) -> Dict[str, MethodCheck]:
    """:func:`check` every method; resolver defaults to static dispatch."""
    resolver = resolver or program_resolver(program)
    return {
        method.qualified_name: check(method, resolver, model=model)
        for method in program.methods()
    }


def dispatch_collisions(
    program: JProgram, resolver: Optional[Resolver] = None, model=None
) -> List[Tuple[str, int, str, str]]:
    """Virtual call sites whose possible callees look alike.

    Returns ``(caller_qname, bci, callee_a, callee_b)`` for each call
    site where two distinct possible callees share an observable prefix
    up to the expansion bound -- the reflective/virtual epsilon-merge
    class: the trace may not reveal *which* method ran.  Reported as
    findings (not verdict failures) because deeper context often
    disambiguates beyond the bound.
    """
    resolver = resolver or program_resolver(program)
    if model is None:
        model = default_model()
    collisions: List[Tuple[str, int, str, str]] = []
    for method in program.methods():
        for inst in method.code:
            if inst.kind is not Kind.CALL:
                continue
            targets = resolver(inst.methodref, inst.op is Op.INVOKEVIRTUAL)
            if len(targets) < 2:
                continue
            seen: Dict[Tuple[object, ...], str] = {}
            for callee in targets:
                prefix = _observable_prefix(callee, resolver, model=model)
                other = seen.get(prefix)
                if other is not None and other != callee.qualified_name:
                    collisions.append(
                        (
                            method.qualified_name,
                            inst.bci,
                            other,
                            callee.qualified_name,
                        )
                    )
                else:
                    seen[prefix] = callee.qualified_name
    return collisions
