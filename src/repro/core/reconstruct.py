"""Control-flow reconstruction: projecting decoded sequences onto the ICFG.

Three matchers are provided:

* :func:`enumerate_and_test` -- the paper's Algorithm 1: try every ICFG
  node as a start state and test acceptance.  Kept as the baseline for
  the reconstruction ablation benchmark.
* :func:`abstraction_guided` -- Algorithm 2: first test the *abstract*
  sequence (control instructions only) against the ANFA from each start;
  only starts surviving the abstract test are matched concretely
  (Theorem 4.4 makes the pre-filter sound).
* :class:`Projector` -- the production engine used by the pipeline: a
  subset simulation over all candidate start states at once, with

  - TNT-guided determinisation of conditionals,
  - JIT debug-info locations as *anchors* (observed steps whose position
    is already known pin the frontier to one state),
  - the callback-search fallback for call sites missing from the static
    ICFG (reflection; Section 4 "Discussions"),
  - greedy restart on mismatch (each restart is a reconstruction
    imprecision, counted in the stats).

All three agree on what a match is; the first two exist at the paper's
algorithmic granularity, the third composes the same ideas efficiently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..jvm.icfg import IEdgeKind
from ..jvm.opcodes import Kind, Op, tier
from .nfa import (
    EDGE_CALL,
    EDGE_RETURN,
    EDGE_THROW,
    Node,
    ProgramNFA,
    TAKEN_FALSE,
    TAKEN_NONE,
    TAKEN_TRUE,
)
from .observed import ObservedStep

#: Beam cap on the subset-simulation frontier (safety valve; reached only
#: on pathological ambiguity).
MAX_FRONTIER = 1024


@dataclass
class MatchStats:
    """Diagnostics of a projection run."""

    steps: int = 0
    matched: int = 0
    restarts: int = 0
    callback_fallbacks: int = 0
    frontier_peak: int = 0
    #: Matched steps attributed to methods the static analysis flagged as
    #: definitely ambiguous: the assignment is *a* consistent path, but
    #: another path with the identical projection exists.
    ambiguous_steps: int = 0

    @property
    def confidence(self) -> float:
        """Fraction of matched steps free of static path ambiguity."""
        if self.matched == 0:
            return 1.0
        return 1.0 - self.ambiguous_steps / self.matched


@dataclass
class Projection:
    """Result of projecting one segment.

    ``path[i]`` is the ICFG node assigned to observed step ``i`` (``None``
    when no assignment was possible -- only at restart boundaries).
    """

    path: List[Optional[Node]]
    stats: MatchStats


#: Bound on the tracked call-stack depth in context-sensitive mode; on
#: overflow the oldest frame is forgotten (graceful fallback to
#: context-insensitivity for very deep recursion).
MAX_STACK = 64

# A frontier key is (state, stack-of-return-site-states).  In the
# paper-faithful NFA mode the stack is always ().
Key = Tuple[int, Tuple[int, ...]]


def _candidate_starts(nfa: ProgramNFA, step: ObservedStep) -> List[int]:
    if step.location is not None:
        state = nfa.state_of.get(step.location)
        return [state] if state is not None else []
    return nfa.initial_states(step.symbol)


class Projector:
    """Production projection engine over a :class:`ProgramNFA`.

    ``context_sensitive=False`` is the paper's plain NFA (Definition 4.1):
    a return transitions to *every* statically possible return site.  The
    default ``True`` simulates the pushdown alternative the paper's
    Section 4 "Discussions" describes: the subset simulation carries a
    (bounded) stack of pending return sites per frontier state, so
    interprocedural paths stay feasible and returns are exact whenever the
    matching call was observed in the same segment.
    """

    def __init__(
        self, nfa: ProgramNFA, context_sensitive: bool = True, analysis=None
    ):
        self.nfa = nfa
        self.context_sensitive = context_sensitive
        # Static decodability verdicts (repro.analysis.AnalysisReport).
        # Methods proven ambiguous make poor symbol-only restart points:
        # their starts are pruned when unambiguous alternatives exist, and
        # steps matched inside them are tallied so the result can carry a
        # confidence figure.
        self.analysis = analysis
        self._ambiguous_methods = (
            frozenset(analysis.ambiguous_methods()) if analysis is not None else frozenset()
        )

    # ------------------------------------------------------------------ steps
    def _advance(
        self,
        frontier: Dict[Key, Optional[Key]],
        prev: ObservedStep,
        step: ObservedStep,
    ) -> Dict[Key, Optional[Key]]:
        """One subset-simulation step: consume *step* after *prev*."""
        nfa = self.nfa
        wanted_op = step.symbol
        anchor = None
        if step.location is not None:
            anchor = nfa.state_of.get(step.location)
        nxt: Dict[Key, Optional[Key]] = {}
        sensitive = self.context_sensitive
        for key in frontier:
            state, stack = key
            for succ, kind in nfa.step_edges(state, prev.taken):
                if nfa.op_of[succ] is not wanted_op:
                    continue
                if anchor is not None and succ != anchor:
                    continue
                if not sensitive:
                    new_stack = ()
                elif kind is IEdgeKind.CALL:
                    site = nfa.return_site_of_call(state)
                    new_stack = stack if site is None else stack + (site,)
                    if len(new_stack) > MAX_STACK:
                        new_stack = new_stack[1:]
                elif kind is IEdgeKind.RETURN:
                    if stack:
                        if succ != stack[-1]:
                            continue  # infeasible interprocedural path
                        new_stack = stack[:-1]
                    else:
                        new_stack = stack  # unknown context: NFA behaviour
                elif kind is IEdgeKind.THROW:
                    new_stack = self._unwind(stack, succ)
                else:
                    new_stack = stack
                new_key = (succ, new_stack)
                if new_key not in nxt:
                    nxt[new_key] = key
                    if len(nxt) >= MAX_FRONTIER:
                        return nxt
        return nxt

    def _unwind(self, stack: Tuple[int, ...], handler_state: int) -> Tuple[int, ...]:
        """Pop pending frames above the handler's method."""
        handler_method = self.nfa.nodes[handler_state][0]
        trimmed = list(stack)
        while trimmed:
            site_method = self.nfa.nodes[trimmed[-1]][0]
            trimmed.pop()
            if site_method == handler_method:
                break
        return tuple(trimmed)

    @staticmethod
    def _extract(
        frontiers: List[Dict[Key, Optional[Key]]], nfa: ProgramNFA
    ) -> List[Node]:
        """Backtrack parent pointers to one concrete path (deterministic)."""
        if not frontiers:
            return []
        key = min(frontiers[-1])
        path = [key[0]]
        for position in range(len(frontiers) - 1, 0, -1):
            key = frontiers[position][key]
            path.append(key[0])
        path.reverse()
        return [nfa.node(state) for state in path]

    # -------------------------------------------------------------------- API
    def project(
        self, steps: Sequence[ObservedStep], metrics=None, tid: Optional[int] = None
    ) -> Projection:
        """Project *steps* (one hole-free segment) onto the ICFG.

        When a :class:`~repro.core.metrics.MetricsRegistry` is supplied,
        the run's stats are published under ``project.*`` for *tid*.
        """
        nfa = self.nfa
        count = len(steps)
        path: List[Optional[Node]] = [None] * count
        stats = MatchStats(steps=count)
        position = 0
        while position < count:
            starts = _candidate_starts(nfa, steps[position])
            if (
                self._ambiguous_methods
                and steps[position].location is None
                and len(starts) > 1
            ):
                # Symbol-only restart: prefer starts in statically
                # decodable methods (keep the ambiguous ones only when
                # nothing else matches the symbol).
                pruned = [
                    state
                    for state in starts
                    if nfa.nodes[state][0] not in self._ambiguous_methods
                ]
                if pruned:
                    starts = pruned
            if not starts:
                position += 1
                stats.restarts += 1
                continue
            frontiers: List[Dict[Key, Optional[Key]]] = [
                {(state, ()): None for state in starts}
            ]
            cursor = position
            while cursor + 1 < count:
                frontier = frontiers[-1]
                nxt = self._advance(frontier, steps[cursor], steps[cursor + 1])
                if not nxt:
                    nxt = self._callback_fallback(
                        frontier, steps[cursor], steps[cursor + 1], stats
                    )
                if not nxt:
                    break
                stats.frontier_peak = max(stats.frontier_peak, len(nxt))
                frontiers.append(nxt)
                cursor += 1
            matched_path = self._extract(frontiers, nfa)
            for offset, node in enumerate(matched_path):
                path[position + offset] = node
            stats.matched += len(matched_path)
            if self._ambiguous_methods:
                stats.ambiguous_steps += sum(
                    1
                    for node in matched_path
                    if node[0] in self._ambiguous_methods
                )
            if cursor + 1 < count:
                stats.restarts += 1
            position = cursor + 1
        if metrics is not None:
            metrics.incr("project.steps", stats.steps, tid=tid)
            metrics.incr("project.matched", stats.matched, tid=tid)
            metrics.incr("project.restarts", stats.restarts, tid=tid)
            metrics.incr(
                "project.callback_fallbacks", stats.callback_fallbacks, tid=tid
            )
            metrics.incr("project.ambiguous_steps", stats.ambiguous_steps, tid=tid)
            metrics.observe_max(
                "project.frontier_peak", stats.frontier_peak, tid=tid
            )
        return Projection(path=path, stats=stats)

    # ---------------------------------------------------------- array engine
    def project_arrays(
        self,
        symbols: Sequence[Op],
        takens: Sequence[Optional[bool]],
        locations: Sequence[Optional[Node]],
        lo: int,
        hi: int,
        metrics=None,
        tid: Optional[int] = None,
    ) -> Projection:
        """Columnar port of :meth:`project` over one segment's columns.

        ``symbols[lo:hi]``/``takens[lo:hi]``/``locations[lo:hi]`` are the
        segment's parallel columns (see
        :class:`~repro.core.observed.ObservedColumns`).  The walk is the
        same subset simulation as :meth:`project` -- same frontier
        ordering, same pruning, same ``MAX_FRONTIER`` truncation point --
        but drives the :meth:`ProgramNFA.transitions` integer tables and
        transition memo instead of per-step object traversal, so its
        output is bit-identical to the object engine's (the equivalence
        suite pins this) at a fraction of the per-step cost.
        """
        nfa = self.nfa
        state_of = nfa.state_of
        count = hi - lo
        path: List[Optional[Node]] = [None] * count
        stats = MatchStats(steps=count)
        ambiguous = self._ambiguous_methods
        nodes = nfa.nodes
        position = lo
        while position < hi:
            location = locations[position]
            if location is not None:
                state = state_of.get(location)
                starts = [state] if state is not None else []
            else:
                starts = nfa.initial_states(symbols[position])
                if ambiguous and len(starts) > 1:
                    pruned = [
                        state
                        for state in starts
                        if nodes[state][0] not in ambiguous
                    ]
                    if pruned:
                        starts = pruned
            if not starts:
                position += 1
                stats.restarts += 1
                continue
            frontiers: List[Dict[Key, Optional[Key]]] = [
                {(state, ()): None for state in starts}
            ]
            cursor = position
            while cursor + 1 < hi:
                frontier = frontiers[-1]
                nxt = self._advance_arrays(
                    frontier,
                    takens[cursor],
                    symbols[cursor + 1],
                    locations[cursor + 1],
                )
                if not nxt:
                    nxt = self._callback_fallback_arrays(
                        frontier,
                        symbols[cursor + 1],
                        locations[cursor + 1],
                        stats,
                    )
                if not nxt:
                    break
                if len(nxt) > stats.frontier_peak:
                    stats.frontier_peak = len(nxt)
                frontiers.append(nxt)
                cursor += 1
            matched_path = self._extract(frontiers, nfa)
            base = position - lo
            for offset, node in enumerate(matched_path):
                path[base + offset] = node
            stats.matched += len(matched_path)
            if ambiguous:
                stats.ambiguous_steps += sum(
                    1 for node in matched_path if node[0] in ambiguous
                )
            if cursor + 1 < hi:
                stats.restarts += 1
            position = cursor + 1
        if metrics is not None:
            metrics.incr("project.steps", stats.steps, tid=tid)
            metrics.incr("project.matched", stats.matched, tid=tid)
            metrics.incr("project.restarts", stats.restarts, tid=tid)
            metrics.incr(
                "project.callback_fallbacks", stats.callback_fallbacks, tid=tid
            )
            metrics.incr("project.ambiguous_steps", stats.ambiguous_steps, tid=tid)
            metrics.observe_max(
                "project.frontier_peak", stats.frontier_peak, tid=tid
            )
        return Projection(path=path, stats=stats)

    def _advance_arrays(
        self,
        frontier: Dict[Key, Optional[Key]],
        prev_taken: Optional[bool],
        wanted_op: Op,
        location: Optional[Node],
    ) -> Dict[Key, Optional[Key]]:
        """Integer-table port of :meth:`_advance` (one simulation step)."""
        nfa = self.nfa
        tcode = (
            TAKEN_NONE
            if prev_taken is None
            else (TAKEN_TRUE if prev_taken else TAKEN_FALSE)
        )
        anchor = None
        if location is not None:
            anchor = nfa.state_of.get(location)
        nxt: Dict[Key, Optional[Key]] = {}
        sensitive = self.context_sensitive
        transitions = nfa.transitions
        return_site = nfa.return_site
        for key in frontier:
            state, stack = key
            for succ, kcode in transitions(state, tcode, wanted_op):
                if anchor is not None and succ != anchor:
                    continue
                if not sensitive:
                    new_stack: Tuple[int, ...] = ()
                elif kcode == EDGE_CALL:
                    site = return_site[state]
                    new_stack = stack if site < 0 else stack + (site,)
                    if len(new_stack) > MAX_STACK:
                        new_stack = new_stack[1:]
                elif kcode == EDGE_RETURN:
                    if stack:
                        if succ != stack[-1]:
                            continue  # infeasible interprocedural path
                        new_stack = stack[:-1]
                    else:
                        new_stack = stack  # unknown context: NFA behaviour
                elif kcode == EDGE_THROW:
                    new_stack = self._unwind(stack, succ)
                else:
                    new_stack = stack
                new_key = (succ, new_stack)
                if new_key not in nxt:
                    nxt[new_key] = key
                    if len(nxt) >= MAX_FRONTIER:
                        return nxt
        return nxt

    def _callback_fallback_arrays(
        self,
        frontier: Dict[Key, Optional[Key]],
        symbol: Op,
        location: Optional[Node],
        stats: MatchStats,
    ) -> Dict[Key, Optional[Key]]:
        """Columnar port of :meth:`_callback_fallback`."""
        nfa = self.nfa
        kind_of = nfa.kind_of
        call_keys = [key for key in frontier if kind_of[key[0]] is Kind.CALL]
        if not call_keys:
            return {}
        entries = nfa.entry_states_by_op.get(symbol, [])
        if not entries:
            return {}
        anchor = None
        if location is not None:
            anchor = nfa.state_of.get(location)
        nxt: Dict[Key, Optional[Key]] = {}
        parent = call_keys[0]
        parent_state, parent_stack = parent
        new_stack: Tuple[int, ...] = ()
        if self.context_sensitive:
            site = nfa.return_site[parent_state]
            new_stack = parent_stack if site < 0 else parent_stack + (site,)
        for entry in entries:
            if anchor is not None and entry != anchor:
                continue
            nxt[(entry, new_stack)] = parent
        if nxt:
            stats.callback_fallbacks += 1
        return nxt

    # ------------------------------------------------------------- fallbacks
    def _callback_fallback(
        self,
        frontier: Dict[Key, Optional[Key]],
        prev: ObservedStep,
        step: ObservedStep,
        stats: MatchStats,
    ) -> Dict[Key, Optional[Key]]:
        """Reflective-call gap: if the dying frontier sits on call nodes
        with no static callees, search all method entries whose first
        instruction matches (the paper's callback inspection)."""
        nfa = self.nfa
        call_keys = [
            key for key in frontier if nfa.kind_of[key[0]] is Kind.CALL
        ]
        if not call_keys:
            return {}
        entries = nfa.entry_states_by_op.get(step.symbol, [])
        if not entries:
            return {}
        anchor = None
        if step.location is not None:
            anchor = nfa.state_of.get(step.location)
        nxt: Dict[Key, Optional[Key]] = {}
        parent = call_keys[0]
        parent_state, parent_stack = parent
        new_stack: Tuple[int, ...] = ()
        if self.context_sensitive:
            site = nfa.return_site_of_call(parent_state)
            new_stack = parent_stack if site is None else parent_stack + (site,)
        for entry in entries:
            if anchor is not None and entry != anchor:
                continue
            nxt[(entry, new_stack)] = parent
        if nxt:
            stats.callback_fallbacks += 1
        return nxt


# ----------------------------------------------------------- paper baselines
def _ops_to_steps(sequence: Sequence) -> List[ObservedStep]:
    """Accept raw (op, taken) pairs or ObservedSteps; normalise."""
    steps: List[ObservedStep] = []
    for item in sequence:
        if isinstance(item, ObservedStep):
            steps.append(item)
        else:
            op, taken = item
            steps.append(
                ObservedStep(symbol=op, taken=taken, location=None, source="interp", tsc=0)
            )
    return steps


def match_from(
    nfa: ProgramNFA, steps: Sequence[ObservedStep], start: int
) -> Optional[List[Node]]:
    """IsAccepted + transition extraction from a single start state.

    Uses the paper-faithful context-insensitive NFA semantics.
    """
    if not steps:
        return []
    if nfa.op_of[start] is not steps[0].symbol:
        return None
    projector = Projector(nfa, context_sensitive=False)
    frontiers: List[Dict[Key, Optional[Key]]] = [{(start, ()): None}]
    for position in range(len(steps) - 1):
        nxt = projector._advance(frontiers[-1], steps[position], steps[position + 1])
        if not nxt:
            return None
        frontiers.append(nxt)
    return Projector._extract(frontiers, nfa)


def enumerate_and_test(
    nfa: ProgramNFA, sequence: Sequence
) -> Optional[List[Node]]:
    """Algorithm 1: try every node of G as the projection start."""
    steps = _ops_to_steps(sequence)
    for start in range(len(nfa)):
        result = match_from(nfa, steps, start)
        if result is not None:
            return result
    return None


def _abstract_accepts(
    nfa: ProgramNFA, start: int, abstract_steps: Sequence[ObservedStep]
) -> bool:
    """Simulate the ANFA on the abstract sequence from *start*.

    ``abstract_steps`` contains only control (tier <= 2) symbols; epsilon
    moves over non-control states are folded into
    :meth:`ProgramNFA.abstract_step` /  ``control_closure``.
    """
    if not abstract_steps:
        return True
    # Locate the first abstract symbol reachable from the start state.
    first = abstract_steps[0]
    if nfa.is_control(start):
        current = {start} if nfa.op_of[start] is first.symbol else set()
    else:
        current = {
            state
            for state in nfa.control_closure()[start]
            if nfa.op_of[state] is first.symbol
        }
    if not current:
        return False
    for position in range(len(abstract_steps) - 1):
        prev = abstract_steps[position]
        wanted = abstract_steps[position + 1].symbol
        nxt = set()
        for state in current:
            for succ in nfa.abstract_step(state, prev.taken):
                if nfa.op_of[succ] is wanted:
                    nxt.add(succ)
        if not nxt:
            return False
        current = nxt
    return True


def abstraction_guided(
    nfa: ProgramNFA, sequence: Sequence
) -> Optional[List[Node]]:
    """Algorithm 2: abstract pre-filter, then concrete matching.

    By Theorem 4.4 a start rejected by the ANFA on the abstract sequence
    cannot accept concretely, so the (much cheaper) abstract test prunes
    the start-state search.
    """
    steps = _ops_to_steps(sequence)
    abstract_steps = [step for step in steps if tier(step.symbol) <= 2]
    for start in range(len(nfa)):
        if steps and nfa.op_of[start] is not steps[0].symbol:
            continue
        if not _abstract_accepts(nfa, start, abstract_steps):
            continue
        result = match_from(nfa, steps, start)
        if result is not None:
            return result
    return None


def explicit_symbols(
    ops_and_taken: Sequence[Tuple[Op, Optional[bool]]]
) -> List[Tuple[Op, Optional[bool]]]:
    """Symbols for matching against :func:`repro.core.nfa.method_nfa`.

    The explicit NFA consumes an instruction when *leaving* its state, so
    the i-th consumed label is ``(op_i, taken_i)`` of the i-th executed
    instruction.
    """
    return [(op, taken) for op, taken in ops_and_taken]
