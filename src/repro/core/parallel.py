"""Parallel per-thread offline pipeline (paper Section 6, Table 5).

Each traced thread's reassembled packet stream decodes, lifts, projects,
and recovers independently of every other thread's, so the offline side
parallelises along the thread axis: :class:`ParallelPipeline` fans each
thread's full chain (:meth:`repro.core.pipeline.JPortal._analyze_thread`)
out to a ``concurrent.futures`` worker pool and merges the resulting
:class:`~repro.core.pipeline.ThreadFlow`s back in ascending-tid order.

Guarantees:

* ``max_workers=1`` takes the exact serial code path of
  :meth:`JPortal.analyze_trace` -- same iteration order, same objects --
  so its output is bit-for-bit identical to the serial pipeline's;
* any worker count produces identical flows (chains share only immutable
  state -- the code database, NFA, and ICFG are read-only after
  construction -- plus a thread-safe metrics registry), and the merge
  order is deterministic regardless of completion order;
* per-thread, per-phase timings land in
  ``result.timings.per_thread[tid]`` either way, so the achievable
  speedup is measurable even where the pool cannot realise it.

The pool is a ``ThreadPoolExecutor``: chains are pure Python, so under
the CPython GIL the wall-clock win on CPU-bound traces is bounded; the
per-thread breakdown plus :func:`ideal_makespan` quantify what a free
of-GIL or multi-process deployment would gain, and the executor seam
(``_executor`` override) keeps that swap local to this module.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional

from ..pt.perf import PTConfig, PTTrace, collect
from .metadata import CodeDatabase, collect_metadata
from .metrics import MetricsRegistry
from .multicore import split_by_thread
from .pipeline import JPortal, JPortalResult, ThreadFlow


class ParallelPipeline:
    """Fans per-thread analysis chains out to a worker pool.

    Args:
        jportal: The configured analyser (static ICFG/NFA built once).
        max_workers: Pool width.  ``1`` reproduces the serial pipeline
            exactly; ``None`` uses one worker per host CPU.
    """

    def __init__(self, jportal: JPortal, max_workers: Optional[int] = None):
        self.jportal = jportal
        self.max_workers = max_workers

    # ------------------------------------------------------------------- API
    def analyze_run(
        self, run, pt_config: Optional[PTConfig] = None
    ) -> JPortalResult:
        """Collect a PT trace from *run* and analyse it on the pool."""
        trace = collect(run, pt_config)
        database = collect_metadata(run)
        return self.analyze_trace(trace, database)

    def analyze_archive(
        self, path, database: Optional[CodeDatabase] = None, snapshot_path=None
    ) -> JPortalResult:
        """Salvage-read an on-disk archive and analyse it on the pool."""
        return self.jportal.analyze_archive(
            path,
            database=database,
            max_workers=self.max_workers,
            snapshot_path=snapshot_path,
        )

    def analyze_trace(
        self, trace: PTTrace, database: CodeDatabase
    ) -> JPortalResult:
        """Analyse an already collected trace, one worker per thread."""
        jportal = self.jportal
        metrics = MetricsRegistry()
        wall_started = time.perf_counter()
        per_thread = split_by_thread(trace)
        tids = sorted(per_thread)
        workers = self._resolve_workers(len(tids))
        flows: Dict[int, ThreadFlow] = {}
        if workers <= 1 or len(tids) <= 1:
            # Serial path: identical to JPortal.analyze_trace(max_workers=1).
            for tid in tids:
                flows[tid] = jportal._analyze_thread_safe(
                    tid, per_thread[tid], database, metrics
                )
        else:
            with self._executor(workers) as pool:
                # The _safe wrapper degrades a chain failure to an empty
                # flow on both the serial and pooled paths, keeping the
                # serial/parallel bit-identity under hostile input.
                futures = {
                    tid: pool.submit(
                        jportal._analyze_thread_safe,
                        tid,
                        per_thread[tid],
                        database,
                        metrics,
                    )
                    for tid in tids
                }
                # Merge in ascending tid order, not completion order.
                for tid in tids:
                    flows[tid] = futures[tid].result()
        return jportal._finish(trace, database, flows, metrics, wall_started)

    # ------------------------------------------------------------- internals
    def _resolve_workers(self, thread_count: int) -> int:
        workers = self.max_workers
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("max_workers must be >= 1, got %r" % (workers,))
        return min(workers, max(thread_count, 1))

    def _executor(self, workers: int) -> Executor:
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="jportal-decode"
        )


def ideal_makespan(durations: Iterable[float], workers: int) -> float:
    """Makespan of an LPT (longest-processing-time-first) schedule.

    Given the measured per-thread chain durations, this is the wall clock
    *workers* truly concurrent workers would need: the benchmarks use it
    to report the decode-parallelism headroom independently of the host's
    core count and the GIL.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1, got %r" % (workers,))
    loads: List[float] = [0.0] * workers
    for duration in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += duration
    return max(loads)
