"""Parallel per-thread offline pipeline (paper Section 6, Table 5).

Each traced thread's reassembled packet stream decodes, lifts, projects,
and recovers independently of every other thread's, so the offline side
parallelises along the thread axis: :class:`ParallelPipeline` fans each
thread's full chain (:meth:`repro.core.pipeline.JPortal._analyze_thread`)
out to a ``concurrent.futures`` worker pool and merges the resulting
:class:`~repro.core.pipeline.ThreadFlow`s back in ascending-tid order.

Guarantees:

* ``max_workers=1`` takes the exact serial code path of
  :meth:`JPortal.analyze_trace` -- same iteration order, same objects --
  so its output is bit-for-bit identical to the serial pipeline's;
* any worker count produces identical flows (chains share only immutable
  state -- the code database, NFA, and ICFG are read-only after
  construction -- plus a thread-safe metrics registry), and the merge
  order is deterministic regardless of completion order;
* per-thread, per-phase timings land in
  ``result.timings.per_thread[tid]`` either way, so the achievable
  speedup is measurable even where the pool cannot realise it.

Two pool backends exist.  ``backend="thread"`` (the default) is a
``ThreadPoolExecutor``: chains are pure Python, so under the CPython GIL
the wall-clock win on CPU-bound traces is bounded -- it wins only where
chains block.  ``backend="process"`` is a ``ProcessPoolExecutor`` that
escapes the GIL: each worker process rebuilds the analyser once from a
picklable payload (program + configuration + code database, shipped via
the pool initializer), analyses whole threads, and returns the
:class:`~repro.core.pipeline.ThreadFlow` plus a
:meth:`~repro.core.metrics.MetricsRegistry.export` of its worker-local
metrics, which the parent :meth:`absorb`\\ s on join -- so the merged
registry and anomaly stats are identical to a serial run's.  Either way
``result.parallelism`` reports the actual vs ideal speedup
(:class:`~repro.core.pipeline.ParallelismReport`), making a GIL-bound
thread-pool run visible in metrics rather than only in this comment.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple

from ..pt.perf import PTConfig, PTTrace, collect
from .metadata import CodeDatabase, collect_metadata
from .metrics import MetricsRegistry
from .multicore import ThreadTrace, split_by_thread
from .pipeline import JPortal, JPortalResult, ParallelismReport, ThreadFlow

#: Pool backends a :class:`ParallelPipeline` accepts.
BACKENDS = ("thread", "process")

# Worker-process globals, set once per worker by :func:`_process_init`.
# A ProcessPoolExecutor initializer is the one start-method-agnostic way
# to ship the (large, read-only) analyser state exactly once per worker
# instead of once per task.
_worker_jportal: Optional[JPortal] = None
_worker_database: Optional[CodeDatabase] = None


def _process_init(payload: dict) -> None:
    """Rebuild the analyser inside a pool worker (runs once per worker)."""
    global _worker_jportal, _worker_database
    _worker_database = payload["database"]
    _worker_jportal = JPortal(
        payload["program"],
        opaque_call_sites=payload["opaque_call_sites"],
        recovery=payload["recovery"],
        context_sensitive=payload["context_sensitive"],
        degradation=payload["degradation"],
        engine=payload["engine"],
        # Workers share the parent's persistent analysis cache, so the
        # per-worker static rebuild is a disk load, not a determinize.
        cache_dir=payload["cache_dir"],
        analysis_frontend=payload.get("analysis_frontend", "pt"),
    )


def _process_chain(
    tid: int, thread_trace: ThreadTrace
) -> Tuple[int, ThreadFlow, dict]:
    """One thread's chain inside a pool worker.

    Records into a worker-local registry and ships its picklable
    ``export()`` back alongside the flow; the parent absorbs it, so the
    merged metrics match a serial run's exactly.
    """
    metrics = MetricsRegistry()
    flow = _worker_jportal._analyze_thread_safe(
        tid, thread_trace, _worker_database, metrics
    )
    return tid, flow, metrics.export()


class ParallelPipeline:
    """Fans per-thread analysis chains out to a worker pool.

    Args:
        jportal: The configured analyser (static ICFG/NFA built once).
        max_workers: Pool width.  ``1`` reproduces the serial pipeline
            exactly; ``None`` uses one worker per host CPU.
        backend: ``"thread"`` (shared-memory pool, GIL-bound on CPU-heavy
            traces) or ``"process"`` (one analyser per worker process,
            true parallelism; requires the per-thread traces and flows to
            pickle, which they do by construction).
    """

    def __init__(
        self,
        jportal: JPortal,
        max_workers: Optional[int] = None,
        backend: str = "thread",
    ):
        if backend not in BACKENDS:
            raise ValueError(
                "backend must be one of %r, got %r" % (BACKENDS, backend)
            )
        self.jportal = jportal
        self.max_workers = max_workers
        self.backend = backend

    # ------------------------------------------------------------------- API
    def analyze_run(
        self, run, pt_config: Optional[PTConfig] = None
    ) -> JPortalResult:
        """Collect a trace from *run* (any frontend) and analyse it on
        the pool."""
        trace = collect(run, pt_config)
        database = collect_metadata(run)
        return self.analyze_trace(trace, database)

    def analyze_archive(
        self, path, database: Optional[CodeDatabase] = None, snapshot_path=None
    ) -> JPortalResult:
        """Salvage-read an on-disk archive and analyse it on the pool."""
        return self.jportal.analyze_archive(
            path,
            database=database,
            max_workers=self.max_workers,
            backend=self.backend,
            snapshot_path=snapshot_path,
        )

    def analyze_trace(
        self, trace: PTTrace, database: CodeDatabase
    ) -> JPortalResult:
        """Analyse an already collected trace, one worker per thread."""
        jportal = self.jportal
        metrics = MetricsRegistry()
        wall_started = time.perf_counter()
        per_thread = split_by_thread(trace)
        tids = sorted(per_thread)
        workers = self._resolve_workers(len(tids))
        flows: Dict[int, ThreadFlow] = {}
        pooled = workers > 1 and len(tids) > 1
        if not pooled:
            # Serial path: identical to JPortal.analyze_trace(max_workers=1).
            for tid in tids:
                flows[tid] = jportal._analyze_thread_safe(
                    tid, per_thread[tid], database, metrics
                )
        elif self.backend == "process":
            self._run_process_pool(per_thread, tids, workers, database, metrics, flows)
        else:
            with self._executor(workers) as pool:
                # The _safe wrapper degrades a chain failure to an empty
                # flow on both the serial and pooled paths, keeping the
                # serial/parallel bit-identity under hostile input.
                futures = {
                    tid: pool.submit(
                        jportal._analyze_thread_safe,
                        tid,
                        per_thread[tid],
                        database,
                        metrics,
                    )
                    for tid in tids
                }
                # Merge in ascending tid order, not completion order.
                for tid in tids:
                    flows[tid] = futures[tid].result()
        result = jportal._finish(trace, database, flows, metrics, wall_started)
        self._attach_parallelism(result, workers, pooled)
        return result

    # ------------------------------------------------------------- internals
    def _run_process_pool(
        self,
        per_thread: Dict[int, ThreadTrace],
        tids: List[int],
        workers: int,
        database: CodeDatabase,
        metrics: MetricsRegistry,
        flows: Dict[int, ThreadFlow],
    ) -> None:
        """Fan chains out to worker processes and merge on join."""
        jportal = self.jportal
        payload = {
            "program": jportal.program,
            "opaque_call_sites": tuple(jportal.icfg.opaque_call_sites),
            "recovery": jportal.recovery_config,
            "context_sensitive": jportal.projector.context_sensitive,
            "degradation": jportal.degradation_policy,
            "engine": jportal.engine,
            "cache_dir": jportal.cache_dir,
            "analysis_frontend": jportal.analysis_frontend,
            "database": database,
        }
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_process_init, initargs=(payload,)
        ) as pool:
            futures = {
                tid: pool.submit(_process_chain, tid, per_thread[tid])
                for tid in tids
            }
            # Merge in ascending tid order, not completion order: flows
            # and absorbed metrics land identically regardless of which
            # worker finished first.
            for tid in tids:
                _tid, flow, exported = futures[tid].result()
                flows[tid] = flow
                metrics.absorb(exported)

    def _attach_parallelism(
        self, result: JPortalResult, workers: int, pooled: bool
    ) -> None:
        """Publish the actual-vs-ideal speedup for this run's backend."""
        durations = [
            timing.total_seconds
            for timing in result.timings.per_thread.values()
        ]
        result.parallelism = ParallelismReport(
            backend=self.backend if pooled else "serial",
            workers=workers if pooled else 1,
            chain_seconds=result.timings.total_seconds,
            wall_seconds=result.timings.wall_seconds,
            ideal_makespan_seconds=ideal_makespan(durations, workers),
            critical_path_seconds=result.timings.critical_path_seconds,
        )

    def _resolve_workers(self, thread_count: int) -> int:
        workers = self.max_workers
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("max_workers must be >= 1, got %r" % (workers,))
        return min(workers, max(thread_count, 1))

    def _executor(self, workers: int) -> Executor:
        return make_executor(workers)


def make_executor(
    workers: int, thread_name_prefix: str = "jportal-decode"
) -> Executor:
    """The shared thread-pool constructor for in-host fan-out.

    Both the per-thread analysis pool above and the streaming
    supervisor's tenant-poll shards (:mod:`repro.stream`) draw workers
    from pools built here, so sizing and naming stay in one place.
    """
    return ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix=thread_name_prefix
    )


def ideal_makespan(durations: Iterable[float], workers: int) -> float:
    """Makespan of an LPT (longest-processing-time-first) schedule.

    Given the measured per-thread chain durations, this estimates the
    wall clock *workers* truly concurrent workers would need.  It is an
    estimate, not a floor: LPT is the classic 4/3-approximation to the
    (NP-hard) optimal makespan, and the model charges no pool overhead
    (task dispatch, result pickling, per-process analyser construction),
    so a real backend can land on either side of it.  Every pooled run
    reports its measured speedup against this ideal on
    ``result.parallelism`` (:class:`~repro.core.pipeline.ParallelismReport`),
    which is how a GIL-bound thread-pool run (actual ~1x, ideal ~N x)
    shows up in metrics.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1, got %r" % (workers,))
    loads: List[float] = [0.0] * workers
    for duration in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += duration
    return max(loads)
