"""Pipeline-level graceful degradation surface.

The decoder-level machinery (the :class:`~repro.pt.decoder.AnomalyKind`
taxonomy, the :class:`~repro.pt.decoder.DegradationPolicy` error budget,
and the resync protocol) lives in :mod:`repro.pt.decoder`, next to the
state machine it modifies; this module is the *pipeline's* view of it:

* re-exports of the policy/taxonomy types, so offline-side code imports
  them from ``repro.core`` without reaching into the PT layer;
* the metric-naming convention that ties anomaly kinds to
  :class:`~repro.core.metrics.MetricsRegistry` counters;
* :func:`anomaly_breakdown`, which folds the per-kind counters published
  by every stage (decoder, JIT-mode lifter, pipeline chain guard) into
  the single per-kind dict surfaced on
  :attr:`~repro.core.pipeline.JPortalResult.anomalies_by_kind`.

Note on layering: the canonical definitions stay in ``repro.pt.decoder``
because ``repro.core.pipeline`` imports from it at module level -- the
reverse import (decoder -> core) would cycle through
``repro.core.__init__``.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..pt.decoder import AnomalyKind, DegradationPolicy
from .dfacache import CACHE_METRIC_PREFIX
from .metrics import MetricsRegistry

__all__ = [
    "AnomalyKind",
    "DegradationPolicy",
    "DEFAULT_POLICY",
    "ANOMALY_METRIC_PREFIX",
    "ARCHIVE_METRIC_PREFIX",
    "CACHE_METRIC_PREFIX",
    "metric_name",
    "anomaly_breakdown",
]

#: The policy used when a pipeline is built without an explicit one.
DEFAULT_POLICY = DegradationPolicy()

#: Per-kind anomaly counters are published as ``<prefix><kind.value>``.
ANOMALY_METRIC_PREFIX = "decode.anomaly."

#: Disk-level salvage events (:mod:`repro.pt.archive`) are published
#: under their own prefix so archive damage is distinguishable from
#: in-stream decode damage, then folded into the same breakdown.
ARCHIVE_METRIC_PREFIX = "archive.anomaly."

#: Degradation events recorded outside the packet decoder use their own
#: counters; ``anomaly_breakdown`` folds them into the matching kind.
_EXTRA_KIND_COUNTERS = {
    "lift.stale_debug_entries": AnomalyKind.STALE_DEBUG_INFO,
    "pipeline.thread_chain_failures": AnomalyKind.CHAIN_FAILURE,
}


def metric_name(kind: AnomalyKind) -> str:
    """Counter name under which *kind* is published."""
    return ANOMALY_METRIC_PREFIX + kind.value


def anomaly_breakdown(
    metrics: MetricsRegistry, tid: Optional[int] = None
) -> Dict[str, int]:
    """Per-kind anomaly counts recorded in *metrics* (all stages).

    Keys are :class:`AnomalyKind` values; ``tid=None`` aggregates across
    threads.  Kinds with a zero count are omitted.
    """
    breakdown = metrics.counters_by_prefix(ANOMALY_METRIC_PREFIX, tid=tid)
    for prefix in (ARCHIVE_METRIC_PREFIX, CACHE_METRIC_PREFIX):
        for key, value in metrics.counters_by_prefix(prefix, tid=tid).items():
            breakdown[key] = breakdown.get(key, 0) + value
    for counter, kind in _EXTRA_KIND_COUNTERS.items():
        count = metrics.counter(counter, tid=tid)
        if count:
            breakdown[kind.value] = breakdown.get(kind.value, 0) + count
    return {key: value for key, value in breakdown.items() if value}
