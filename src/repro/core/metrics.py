"""Lightweight metrics registry for the offline pipeline.

The offline side runs decode -> lift -> project -> recover once per
thread, possibly on a worker pool (:mod:`repro.core.parallel`), so every
phase needs to be observable without the phases knowing about each other:
:class:`MetricsRegistry` is the shared sink.  It records three kinds of
facts, each keyed by ``(name, tid)`` where ``tid`` is the analysed
thread (``None`` for process-global facts):

* **counters** -- monotonically increasing counts (packets decoded,
  anomalies, restarts, holes filled, ...);
* **timings** -- accumulated wall-clock seconds per phase;
* **maxima** -- high-water marks (peak projection frontier);
* **gauges** -- last-written instantaneous values (streaming lag,
  queue depth): unlike counters they overwrite rather than add, so a
  gauge read reports the *current* state, not history.

All mutation takes a single lock, so decoder/projector/recovery instances
running concurrently on different threads of the *host* process can share
one registry.  Reads with ``tid=None`` aggregate across all threads, so
``registry.counter("decode.anomalies")`` is the process-wide total while
``registry.counter("decode.anomalies", tid=3)`` is thread 3's share.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

#: A metric key: (metric name, analysed thread id or None for global).
Key = Tuple[str, Optional[int]]


class MetricsRegistry:
    """Thread-safe counters, per-phase timings, and high-water marks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Key, int] = {}
        self._timings: Dict[Key, float] = {}
        self._maxima: Dict[Key, float] = {}
        self._gauges: Dict[Key, float] = {}
        self._states: Dict[Key, str] = {}

    # ---------------------------------------------------------------- writes
    def incr(self, name: str, value: int = 1, tid: Optional[int] = None) -> None:
        """Add *value* to the counter *name* for thread *tid*."""
        key = (name, tid)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def add_time(
        self, phase: str, seconds: float, tid: Optional[int] = None
    ) -> None:
        """Accumulate *seconds* of wall-clock time under *phase*."""
        key = (phase, tid)
        with self._lock:
            self._timings[key] = self._timings.get(key, 0.0) + seconds

    def observe_max(
        self, name: str, value: float, tid: Optional[int] = None
    ) -> None:
        """Record *value* as a high-water mark candidate for *name*."""
        key = (name, tid)
        with self._lock:
            current = self._maxima.get(key)
            if current is None or value > current:
                self._maxima[key] = value

    def set_gauge(
        self, name: str, value: float, tid: Optional[int] = None
    ) -> None:
        """Set the instantaneous gauge *name* for *tid* (overwrites)."""
        with self._lock:
            self._gauges[(name, tid)] = value

    def set_state(
        self, name: str, value: str, tid: Optional[int] = None
    ) -> None:
        """Set the string-valued state *name* for *tid* (overwrites).

        States are gauges whose value is a label rather than a number
        -- e.g. ``stream.health`` is ``"healthy"``/``"degraded"``/
        ``"quarantined"`` per tenant index.  They overwrite like gauges
        and ship across process boundaries like every other fact.
        """
        with self._lock:
            self._states[(name, tid)] = str(value)

    @contextmanager
    def timer(self, phase: str, tid: Optional[int] = None) -> Iterator[None]:
        """Time a ``with`` block into ``add_time(phase, ..., tid)``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(phase, time.perf_counter() - started, tid=tid)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s facts into this registry (for pooled workers)."""
        self.absorb(other.export())

    # ------------------------------------------------------ process transport
    def export(self) -> Dict[str, List[Tuple[str, Optional[int], float]]]:
        """A picklable flat view of every recorded fact.

        The registry itself holds a ``threading.Lock`` and therefore
        cannot cross a process boundary; process-pool workers
        (:mod:`repro.core.parallel`, ``backend="process"``) record into a
        worker-local registry and ship ``export()`` back with each
        result, which the parent folds in via :meth:`absorb`.
        """
        with self._lock:
            return {
                "counters": [
                    (name, tid, value)
                    for (name, tid), value in self._counters.items()
                ],
                "timings": [
                    (name, tid, value)
                    for (name, tid), value in self._timings.items()
                ],
                "maxima": [
                    (name, tid, value)
                    for (name, tid), value in self._maxima.items()
                ],
                "gauges": [
                    (name, tid, value)
                    for (name, tid), value in self._gauges.items()
                ],
                "states": [
                    (name, tid, value)
                    for (name, tid), value in self._states.items()
                ],
            }

    def absorb(self, data: Dict[str, List[Tuple[str, Optional[int], float]]]) -> None:
        """Fold an :meth:`export` payload into this registry.

        Counters and timings add; maxima take the high-water mark -- the
        same semantics as :meth:`merge`, so serial, thread-pool, and
        process-pool runs aggregate identically.
        """
        for name, tid, value in data.get("counters", ()):
            self.incr(name, value, tid=tid)
        for name, tid, value in data.get("timings", ()):
            self.add_time(name, value, tid=tid)
        for name, tid, value in data.get("maxima", ()):
            self.observe_max(name, value, tid=tid)
        for name, tid, value in data.get("gauges", ()):
            self.set_gauge(name, value, tid=tid)
        for name, tid, value in data.get("states", ()):
            self.set_state(name, value, tid=tid)

    # ----------------------------------------------------------------- reads
    def counter(self, name: str, tid: Optional[int] = None) -> int:
        """The counter's value; ``tid=None`` sums across all threads."""
        with self._lock:
            if tid is not None:
                return self._counters.get((name, tid), 0)
            return sum(
                value for (key, _t), value in self._counters.items() if key == name
            )

    def counters_by_prefix(
        self, prefix: str, tid: Optional[int] = None
    ) -> Dict[str, int]:
        """All counters whose name starts with *prefix*, keyed by the
        suffix after it; ``tid=None`` sums each across all threads.

        The degradation layer uses this to collect the per-kind anomaly
        counters (``decode.anomaly.<kind>``) without enumerating kinds.
        """
        result: Dict[str, int] = {}
        with self._lock:
            for (name, key_tid), value in self._counters.items():
                if not name.startswith(prefix):
                    continue
                if tid is not None and key_tid != tid:
                    continue
                suffix = name[len(prefix):]
                result[suffix] = result.get(suffix, 0) + value
        return result

    def timings_by_prefix(
        self, prefix: str, tid: Optional[int] = None
    ) -> Dict[str, float]:
        """All timings whose phase starts with *prefix*, keyed by the
        suffix after it; ``tid=None`` sums each across all threads.

        The analysis-cost benchmark uses this to pick up every
        ``analysis``-family phase in one call.
        """
        result: Dict[str, float] = {}
        with self._lock:
            for (name, key_tid), value in self._timings.items():
                if not name.startswith(prefix):
                    continue
                if tid is not None and key_tid != tid:
                    continue
                suffix = name[len(prefix):]
                result[suffix] = result.get(suffix, 0.0) + value
        return result

    def timing(self, phase: str, tid: Optional[int] = None) -> float:
        """Accumulated seconds; ``tid=None`` sums across all threads."""
        with self._lock:
            if tid is not None:
                return self._timings.get((phase, tid), 0.0)
            return sum(
                value for (key, _t), value in self._timings.items() if key == phase
            )

    def maximum(self, name: str, tid: Optional[int] = None) -> float:
        """The high-water mark; ``tid=None`` maximises across threads."""
        with self._lock:
            if tid is not None:
                return self._maxima.get((name, tid), 0.0)
            values = [
                value for (key, _t), value in self._maxima.items() if key == name
            ]
            return max(values) if values else 0.0

    def gauge(self, name: str, tid: Optional[int] = None) -> float:
        """The gauge's current value; ``tid=None`` sums across threads
        (per-tenant lag gauges aggregate to total backlog)."""
        with self._lock:
            if tid is not None:
                return self._gauges.get((name, tid), 0.0)
            return sum(
                value for (key, _t), value in self._gauges.items() if key == name
            )

    def state(self, name: str, tid: Optional[int] = None) -> Optional[str]:
        """The state's current label for *(name, tid)*, or ``None``."""
        with self._lock:
            return self._states.get((name, tid))

    def states_by_name(self, name: str) -> Dict[Optional[int], str]:
        """Every tid's current label for *name* (health dashboards)."""
        with self._lock:
            return {
                tid: value
                for (key, tid), value in self._states.items()
                if key == name
            }

    def tids(self) -> List[int]:
        """All thread ids that recorded any fact, sorted."""
        with self._lock:
            seen = {
                tid
                for source in (
                    self._counters, self._timings, self._maxima,
                    self._gauges, self._states,
                )
                for (_name, tid) in source
                if tid is not None
            }
        return sorted(seen)

    def snapshot(self) -> Dict[str, Dict[str, Dict]]:
        """A plain-dict view: ``{kind: {name: {"total", "by_thread"}}}``."""
        with self._lock:
            sources = {
                "counters": dict(self._counters),
                "timings": dict(self._timings),
                "maxima": dict(self._maxima),
                "gauges": dict(self._gauges),
            }
            states = dict(self._states)
        result: Dict[str, Dict[str, Dict]] = {}
        # States are labels, not numbers: no total to accumulate.
        state_view: Dict[str, Dict] = {}
        for (name, tid), value in sorted(
            states.items(),
            key=lambda item: (item[0][0], item[0][1] is not None, item[0][1] or 0),
        ):
            entry = state_view.setdefault(name, {"total": None, "by_thread": {}})
            if tid is None:
                entry["total"] = value
            else:
                entry["by_thread"][tid] = value
        result["states"] = state_view
        for kind, data in sources.items():
            view: Dict[str, Dict] = {}
            for (name, tid), value in sorted(
                data.items(), key=lambda item: (item[0][0], item[0][1] is not None, item[0][1] or 0)
            ):
                entry = view.setdefault(name, {"total": 0, "by_thread": {}})
                if tid is None:
                    entry["total"] += value
                else:
                    entry["by_thread"][tid] = value
                    if kind == "maxima":
                        entry["total"] = max(entry["total"], value)
                    else:
                        entry["total"] += value
            result[kind] = view
        return result
