"""End-to-end JPortal pipeline.

Wires the whole offline side together, mirroring the paper's architecture:

1. **collect** (online, :mod:`repro.pt.perf`): trace packets per core --
   from whichever frontend the config names (Intel PT, RISC-V E-Trace)
   -- with data loss + machine-code metadata export;
2. **reassemble** (:mod:`repro.core.multicore`): per-core -> per-thread
   packet streams using thread-switch sideband;
3. **decode** (:mod:`repro.tracesource.engine` + the Section 3 mappers):
   packets -> observed bytecode steps (interp: opcode only; JIT: exact
   location) and loss holes;
4. **reconstruct** (:mod:`repro.core.reconstruct`): project each hole-free
   segment onto the ICFG NFA;
5. **recover** (:mod:`repro.core.recovery`): fill the holes from matching
   complete segments.

The result carries everything the evaluation needs: per-thread flows with
provenance, projection/recovery statistics, timing of each offline phase,
and the collected trace itself (sizes, loss).
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..jvm.icfg import ICFG
from ..jvm.model import JProgram
from ..jvm.runtime import RunResult
from ..pt.decoder import (
    DecodeAnomaly,
    DegradationPolicy,
    InterpDispatch,
    InterpReturnStub,
    JitSpan,
    TraceLoss,
)
from ..pt.perf import PTConfig, PTTrace, collect
from ..tracesource import get_frontend
from .batchflow import JitLifter
from .degradation import anomaly_breakdown
from .interp_decoder import lift_dispatch
from .jit_decoder import lift_span
from .metadata import CodeDatabase, collect_metadata
from .metrics import MetricsRegistry
from .multicore import ThreadTrace, split_by_thread
from .nfa import Node, ProgramNFA
from .observed import ObservedColumns, ObservedHole, ObservedStep, ObservedTrace
from .reconstruct import MatchStats, Projector
from .recovery import RecoveredFlow, RecoveryConfig, RecoveryEngine, RecoveryStats


@dataclass
class ThreadFlow:
    """One thread's fully analysed control flow."""

    tid: int
    observed: ObservedTrace
    segments: List[List[Optional[Node]]]
    flow: RecoveredFlow
    projection: MatchStats

    # -------- convenience views -------------------------------------------
    def reconstructed_nodes(self) -> List[Optional[Node]]:
        """Final flow: decoded + recovered entries in order."""
        return self.flow.nodes()

    def entry_counts(self) -> Dict[str, int]:
        counts = {"decoded": 0, "recovered": 0, "fallback": 0}
        for _entry, provenance in self.flow.entries:
            counts[provenance] += 1
        return counts


@dataclass
class ThreadPhaseTimings:
    """One thread's offline-phase breakdown (timings + key counts)."""

    tid: int
    decode_seconds: float = 0.0
    reconstruct_seconds: float = 0.0
    recovery_seconds: float = 0.0
    anomalies: int = 0
    holes: int = 0
    frontier_peak: int = 0

    @property
    def total_seconds(self) -> float:
        return self.decode_seconds + self.reconstruct_seconds + self.recovery_seconds


@dataclass
class PhaseTimings:
    """Wall-clock seconds per offline phase (Table 5's DT/RT split).

    The three phase fields aggregate (sum) the per-thread work recorded in
    ``per_thread``; ``wall_seconds`` is the measured end-to-end wall clock
    of the analysis, which is smaller than ``total_seconds`` when the
    per-thread chains ran concurrently.
    """

    decode_seconds: float = 0.0
    reconstruct_seconds: float = 0.0
    recovery_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: Static analysis + per-run metadata lint.  Deliberately *not* part
    #: of ``total_seconds``: the static share is paid once per program
    #: (amortised across runs), and Table 5's DT/RT split has no such
    #: column -- it is reported separately instead.
    analysis_seconds: float = 0.0
    per_thread: Dict[int, ThreadPhaseTimings] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.decode_seconds + self.reconstruct_seconds + self.recovery_seconds

    @property
    def critical_path_seconds(self) -> float:
        """The slowest single thread's chain: the ideal parallel wall clock."""
        if not self.per_thread:
            return 0.0
        return max(timing.total_seconds for timing in self.per_thread.values())


@dataclass
class ParallelismReport:
    """How well a pooled run's wall clock tracked its ideal schedule.

    ``actual_speedup`` is what the chosen backend delivered
    (sum-of-chain-seconds over measured wall clock); ``ideal_speedup`` is
    what *workers* truly concurrent workers could have delivered (same
    numerator over the LPT makespan of the measured chain durations).
    A thread-pool run on CPU-bound chains shows ``actual_speedup`` near
    1.0 under the GIL while ``ideal_speedup`` reports the headroom; the
    process backend is the one expected to close that gap.
    """

    backend: str
    workers: int
    chain_seconds: float
    wall_seconds: float
    ideal_makespan_seconds: float
    critical_path_seconds: float

    @property
    def actual_speedup(self) -> float:
        if self.wall_seconds <= 0.0:
            return 1.0
        return self.chain_seconds / self.wall_seconds

    @property
    def ideal_speedup(self) -> float:
        if self.ideal_makespan_seconds <= 0.0:
            return 1.0
        return self.chain_seconds / self.ideal_makespan_seconds


@dataclass
class JPortalResult:
    """Output of one analysis."""

    program: JProgram
    trace: PTTrace
    database: CodeDatabase
    flows: Dict[int, ThreadFlow]
    timings: PhaseTimings
    anomalies: int = 0
    metrics: Optional[MetricsRegistry] = None
    #: Per-kind anomaly counts (``AnomalyKind`` values -> count) folded
    #: from every stage's counters; empty when the run was clean.
    anomalies_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Holes declared by the decoder's error budget (not physical loss).
    synthetic_holes: int = 0
    #: Static decodability analysis (observability + ambiguity verdicts)
    #: with this run's database lint findings merged in.
    analysis_report: Optional[object] = None
    #: Disk-level salvage report (:class:`repro.pt.archive.SalvageStats`)
    #: when the trace came from :meth:`JPortal.analyze_archive`; ``None``
    #: for in-memory analyses.
    salvage: Optional[object] = None
    #: Actual-vs-ideal speedup for the backend that ran the per-thread
    #: chains (:class:`ParallelismReport`); ``None`` for plain serial
    #: runs that never went through :class:`~repro.core.parallel.ParallelPipeline`.
    parallelism: Optional[ParallelismReport] = None

    @property
    def loss_fraction(self) -> float:
        return self.trace.loss_fraction

    def flow_of(self, tid: int) -> ThreadFlow:
        return self.flows[tid]

    def total_entries(self) -> int:
        return sum(len(flow.flow.entries) for flow in self.flows.values())


class JPortal:
    """The profiler: build once per program, analyse many runs.

    Args:
        program: The target program (used to build the static ICFG/NFA).
        opaque_call_sites: Call sites hidden from the static ICFG
            (reflection simulation; reconstruction must fall back to the
            callback search for them).
        recovery: Recovery tuning.
        context_sensitive: ``True`` (default) carries a call stack during
            projection (the PDA alternative of Section 4 "Discussions");
            ``False`` is the paper's plain NFA.
        degradation: Policy for hostile input (resync protocol + error
            budget); ``None`` uses the :class:`DegradationPolicy` default.
        engine: ``"array"`` (default) decodes through the fused columnar
            core (:class:`~repro.tracesource.engine.BatchEventDecoder` +
            :meth:`~repro.core.reconstruct.Projector.project_arrays`);
            ``"object"`` takes the original per-item path.  Both produce
            bit-identical results (the equivalence suite pins this); the
            object core remains the regression oracle.
        cache_dir: Directory for the persistent static-analysis cache
            (:mod:`repro.core.dfacache`).  When set, a repeated build
            for the same program loads the determinized per-method DFA
            verdicts and analysis report from disk instead of re-running
            subset construction; cache damage silently degrades to a
            cold build and surfaces as ``cache.anomaly.*`` counters on
            every result this profiler produces.  ``None`` (default)
            disables persistence.
    """

    def __init__(
        self,
        program: JProgram,
        opaque_call_sites: Tuple = (),
        recovery: Optional[RecoveryConfig] = None,
        context_sensitive: bool = True,
        degradation: Optional[DegradationPolicy] = None,
        engine: str = "array",
        cache_dir: Optional[str] = None,
        analysis_frontend: str = "pt",
    ):
        if engine not in ("array", "object"):
            raise ValueError(
                "engine must be 'array' or 'object', got %r" % (engine,)
            )
        self.engine = engine
        self.program = program
        self.cache_dir = cache_dir
        self.analysis_frontend = analysis_frontend
        self._opaque_call_sites = tuple(opaque_call_sites)
        self.icfg = ICFG(program, opaque_call_sites)
        self.nfa = ProgramNFA(self.icfg)
        # Reports are per-frontend artifacts; the default frontend's is
        # built eagerly (projector and recovery consume it), others
        # lazily on the first trace that names them.
        self._analysis_reports: Dict[str, object] = {}
        self._cache_events: Dict[str, int] = {}
        self.analysis_report = self.analysis_report_for(analysis_frontend)
        self.projector = Projector(
            self.nfa,
            context_sensitive=context_sensitive,
            analysis=self.analysis_report,
        )
        self.recovery_config = recovery or RecoveryConfig()
        self.recovery_engine = RecoveryEngine(
            self.icfg,
            self.recovery_config,
            observability=self.analysis_report.observability,
        )
        self.degradation_policy = (
            degradation if degradation is not None else DegradationPolicy()
        )
        # Per-database JitLifter cache (block lift templates are a pure
        # function of (program, database); shared across thread chains).
        self._lifters: "weakref.WeakKeyDictionary[CodeDatabase, JitLifter]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------------- API
    def analyze_run(
        self,
        run: RunResult,
        pt_config: Optional[PTConfig] = None,
        max_workers: int = 1,
        backend: str = "thread",
    ) -> JPortalResult:
        """Collect a trace from *run* (any frontend) and analyse it."""
        trace = collect(run, pt_config)
        database = collect_metadata(run)
        return self.analyze_trace(
            trace, database, max_workers=max_workers, backend=backend
        )

    def analyze_trace(
        self,
        trace: PTTrace,
        database: CodeDatabase,
        max_workers: int = 1,
        backend: str = "thread",
    ) -> JPortalResult:
        """Analyse an already collected trace against exported metadata.

        ``max_workers=1`` (the default) runs the per-thread chains
        serially; any other value delegates to
        :class:`repro.core.parallel.ParallelPipeline` on the given
        *backend* (``"thread"`` or ``"process"``), which produces
        identical flows (threads are analysed independently either way).
        """
        if max_workers != 1:
            from .parallel import ParallelPipeline

            pipeline = ParallelPipeline(
                self, max_workers=max_workers, backend=backend
            )
            return pipeline.analyze_trace(trace, database)
        metrics = MetricsRegistry()
        wall_started = time.perf_counter()
        per_thread = split_by_thread(trace)
        flows: Dict[int, ThreadFlow] = {}
        for tid in sorted(per_thread):
            flows[tid] = self._analyze_thread_safe(
                tid, per_thread[tid], database, metrics
            )
        return self._finish(trace, database, flows, metrics, wall_started)

    def analyze_archive(
        self,
        path,
        database: Optional[CodeDatabase] = None,
        max_workers: int = 1,
        backend: str = "thread",
        snapshot_path=None,
    ) -> JPortalResult:
        """Salvage-read a durable ``RPT2`` (or legacy ``RPT1``) archive
        from disk and analyse whatever survived.

        Disk damage never raises (unless the policy sets
        ``archive_strict``): corrupt segments become synthetic loss
        records handed to hole recovery, and every salvage event is
        folded into ``anomalies_by_kind`` (``archive.anomaly.*``
        counters) alongside the decode-level anomalies.  The full
        :class:`~repro.pt.archive.SalvageStats` lands on
        ``result.salvage``.

        *database* overrides the archive's metadata snapshot + journal
        (e.g. when the sidecar is lost but metadata was exported through
        another channel).
        """
        from ..pt.archive import read_archive

        contents = read_archive(
            path,
            snapshot_path=snapshot_path,
            strict=self.degradation_policy.archive_strict,
        )
        salvaged_db = database if database is not None else contents.database_or_empty()
        trace = contents.to_trace()
        result = self.analyze_trace(
            trace, salvaged_db, max_workers=max_workers, backend=backend
        )
        self._attach_salvage(result, contents.stats)
        return result

    # ------------------------------------------------------------- internals
    def analysis_report_for(self, frontend: str):
        """The static analysis report under *frontend*'s projection model.

        Memoized per frontend; the cache events of every build fold into
        this profiler's shared ``cache.*`` counters.
        """
        report = self._analysis_reports.get(frontend)
        if report is None:
            report, events = self._static_analysis(
                self.program, self._opaque_call_sites, self.cache_dir, frontend
            )
            self._analysis_reports[frontend] = report
            for name, count in events.items():
                self._cache_events[name] = (
                    self._cache_events.get(name, 0) + count
                )
        return report

    def _static_analysis(self, program, opaque_call_sites, cache_dir, frontend):
        """The static decodability analysis, once per (program, frontend)
        (amortised over every run this profiler analyses) -- loaded from
        the persistent cache when *cache_dir* is set and holds a valid
        entry for this program under this frontend's projection model,
        rebuilt (and stored) otherwise.

        The analysis package builds on ``repro.core.nfa``, so its import
        stays local to avoid a cycle.  Returns ``(report, cache_events)``
        where the events dict carries the ``cache.*`` counters this
        build produced (empty when caching is off).
        """
        from ..analysis.report import analyze_program

        if cache_dir is None:
            report = analyze_program(
                program,
                icfg=self.icfg,
                opaque_call_sites=opaque_call_sites,
                frontend=frontend,
            )
            return report, {}
        from .dfacache import AnalysisCache, analysis_cache_key

        cache = AnalysisCache(cache_dir)
        key = analysis_cache_key(program, opaque_call_sites, frontend=frontend)
        started = time.perf_counter()
        report = cache.load(key)
        if report is not None:
            # static_seconds reflects what *this* build paid -- the disk
            # load, not the original subset construction -- so warm runs
            # report ~zero analysis time.
            report = replace(
                report, static_seconds=time.perf_counter() - started
            )
        else:
            report = analyze_program(
                program,
                icfg=self.icfg,
                opaque_call_sites=opaque_call_sites,
                frontend=frontend,
            )
            cache.store(key, report)
        return report, cache.events

    @staticmethod
    def _attach_salvage(result: JPortalResult, stats) -> None:
        """Publish salvage stats onto the result's metric surface."""
        from .degradation import ARCHIVE_METRIC_PREFIX

        metrics = result.metrics
        if metrics is not None:
            for kind, count in stats.by_kind().items():
                metrics.incr(ARCHIVE_METRIC_PREFIX + kind, count)
            metrics.incr("archive.segments_salvaged", stats.segments_salvaged)
            metrics.incr("archive.segments_dropped", stats.segments_dropped)
            metrics.incr("archive.bytes_salvaged", stats.bytes_salvaged)
            metrics.incr(
                "archive.metadata_snapshots_missing",
                stats.metadata_snapshots_missing,
            )
            result.anomalies_by_kind = anomaly_breakdown(metrics)
        result.salvage = stats

    def _analyze_thread_safe(
        self,
        tid: int,
        thread_trace: ThreadTrace,
        database: CodeDatabase,
        metrics: MetricsRegistry,
    ) -> ThreadFlow:
        """:meth:`_analyze_thread` with the no-crash backstop: a chain
        failure on one thread degrades to an empty flow (counted under
        ``pipeline.thread_chain_failures``) instead of killing the whole
        analysis.  Both the serial loop and the worker pool go through
        this wrapper, so degraded output is identical either way.
        """
        try:
            return self._analyze_thread(tid, thread_trace, database, metrics)
        except Exception:
            return self._degraded_flow(tid, metrics)

    @staticmethod
    def _degraded_flow(tid: int, metrics: MetricsRegistry) -> ThreadFlow:
        """The empty flow a failed per-thread chain degrades to."""
        metrics.incr("pipeline.thread_chain_failures", tid=tid)
        return ThreadFlow(
            tid=tid,
            observed=ObservedTrace(tid=tid),
            segments=[],
            flow=RecoveredFlow(entries=[], stats=RecoveryStats()),
            projection=MatchStats(),
        )

    def _analyze_thread(
        self,
        tid: int,
        thread_trace: ThreadTrace,
        database: CodeDatabase,
        metrics: MetricsRegistry,
    ) -> ThreadFlow:
        """One thread's full decode -> lift -> project -> recover chain.

        Self-contained and side-effect-free apart from *metrics* (which is
        thread-safe), so chains for different tids can run concurrently.
        The ``engine`` choice picks the columnar or the object core; both
        emit identical observed content, projections, and metrics.  The
        decoder classes come from the frontend registry keyed by the
        thread trace's ``source`` (``"pt"``, ``"etrace"``, ...), so a
        second trace format flows through this chain unchanged.
        """
        frontend = get_frontend(thread_trace.source)
        if self.engine == "array":
            with metrics.timer("decode", tid=tid):
                decoder = frontend.batch_decoder(
                    database,
                    self._lifter_for(database),
                    metrics=metrics,
                    tid=tid,
                    policy=self.degradation_policy,
                )
                observed = decoder.decode_into(
                    thread_trace.stream, ObservedColumns(tid)
                )
            return self._project_and_recover(observed, metrics, tid)
        with metrics.timer("decode", tid=tid):
            decoder = frontend.object_decoder(
                database,
                metrics=metrics,
                tid=tid,
                policy=self.degradation_policy,
            )
            items = decoder.decode(thread_trace.stream)
            observed = self._lift(tid, items, database, metrics)
        with metrics.timer("reconstruct", tid=tid):
            segments: List[List[Optional[Node]]] = []
            stats = MatchStats()
            for segment_steps in observed.segments():
                projection = self.projector.project(
                    segment_steps, metrics=metrics, tid=tid
                )
                segments.append(projection.path)
                _merge_stats(stats, projection.stats)
        with metrics.timer("recovery", tid=tid):
            recovered = self.recovery_engine.recover(
                segments, observed.holes(), metrics=metrics, tid=tid
            )
        return ThreadFlow(
            tid=tid,
            observed=observed,
            segments=segments,
            flow=recovered,
            projection=stats,
        )

    def _project_and_recover(
        self,
        observed: ObservedColumns,
        metrics: MetricsRegistry,
        tid: int,
    ) -> ThreadFlow:
        """Project + recover fully-decoded columns into a ThreadFlow.

        The back half of the array-engine :meth:`_analyze_thread`, split
        out so the streaming service -- which fills the columns
        incrementally with its own decoder lifecycle -- finalises
        through exactly the batch code path.
        """
        with metrics.timer("reconstruct", tid=tid):
            segments: List[List[Optional[Node]]] = []
            stats = MatchStats()
            symbols = observed.symbols
            takens = observed.takens
            locations = observed.locations
            for lo, hi in observed.segment_ranges():
                projection = self.projector.project_arrays(
                    symbols, takens, locations, lo, hi,
                    metrics=metrics, tid=tid,
                )
                segments.append(projection.path)
                _merge_stats(stats, projection.stats)
        with metrics.timer("recovery", tid=tid):
            recovered = self.recovery_engine.recover(
                segments, observed.holes(), metrics=metrics, tid=tid
            )
        return ThreadFlow(
            tid=observed.tid,
            observed=observed,
            segments=segments,
            flow=recovered,
            projection=stats,
        )

    def _finish(
        self,
        trace: PTTrace,
        database: CodeDatabase,
        flows: Dict[int, ThreadFlow],
        metrics: MetricsRegistry,
        wall_started: float,
    ) -> JPortalResult:
        """Assemble the result: per-thread breakdowns and aggregates."""
        from ..analysis.lint import lint_database

        # The attached report reflects the frontend that produced this
        # trace: per-frontend projection models mean per-frontend
        # verdicts.  Unknown/model-less frontends fall back to the
        # profiler's default report rather than failing the run.
        frontend = getattr(
            getattr(trace, "config", None), "frontend", None
        ) or self.analysis_frontend
        try:
            static_report = self.analysis_report_for(frontend)
        except (KeyError, ValueError):
            static_report = self.analysis_report
        # Every result carries the cache counters of the build that
        # produced its analyser (hits/misses/anomalies), so cache damage
        # is visible on the same surface as decode/archive damage.
        for name, count in self._cache_events.items():
            metrics.incr(name, count)
        with metrics.timer("analysis"):
            analysis_report = static_report.with_database_findings(
                lint_database(database, self.program)
            )
        # Publish the static (subset-construction) share as its own
        # phase: `timings_by_prefix("analysis")` then shows ~zero
        # `.static` on a warm-cache build, which is how the cache's
        # "skips determinization" contract is verified.
        metrics.add_time("analysis.static", static_report.static_seconds)
        timings = PhaseTimings(wall_seconds=time.perf_counter() - wall_started)
        timings.analysis_seconds = (
            metrics.timing("analysis") + static_report.static_seconds
        )
        total_anomalies = 0
        for tid in sorted(flows):
            flow = flows[tid]
            breakdown = ThreadPhaseTimings(
                tid=tid,
                decode_seconds=metrics.timing("decode", tid=tid),
                reconstruct_seconds=metrics.timing("reconstruct", tid=tid),
                recovery_seconds=metrics.timing("recovery", tid=tid),
                anomalies=flow.observed.anomalies,
                holes=len(flow.observed.holes()),
                frontier_peak=flow.projection.frontier_peak,
            )
            timings.per_thread[tid] = breakdown
            timings.decode_seconds += breakdown.decode_seconds
            timings.reconstruct_seconds += breakdown.reconstruct_seconds
            timings.recovery_seconds += breakdown.recovery_seconds
            total_anomalies += breakdown.anomalies
        return JPortalResult(
            program=self.program,
            trace=trace,
            database=database,
            flows=flows,
            timings=timings,
            anomalies=total_anomalies,
            metrics=metrics,
            anomalies_by_kind=anomaly_breakdown(metrics),
            synthetic_holes=metrics.counter("decode.synthetic_holes"),
            analysis_report=analysis_report,
        )

    def _lifter_for(self, database: CodeDatabase) -> JitLifter:
        lifter = self._lifters.get(database)
        if lifter is None:
            lifter = JitLifter(database, self.program)
            self._lifters[database] = lifter
        return lifter

    def _lift(
        self,
        tid: int,
        items,
        database: CodeDatabase,
        metrics: Optional[MetricsRegistry] = None,
    ) -> ObservedTrace:
        """Map decoded native items to the observed bytecode trace."""
        trace = ObservedTrace(tid=tid)
        out = trace.items
        for item in items:
            if isinstance(item, InterpDispatch):
                out.append(lift_dispatch(item))
            elif isinstance(item, JitSpan):
                out.extend(
                    lift_span(item, database, self.program, metrics=metrics, tid=tid)
                )
            elif isinstance(item, TraceLoss):
                out.append(
                    ObservedHole(
                        start_tsc=item.start_tsc,
                        end_tsc=item.end_tsc,
                        bytes_lost=item.bytes_lost,
                        synthetic=item.synthetic,
                    )
                )
            elif isinstance(item, InterpReturnStub):
                continue  # control returned to the interpreter; no bytecode
            elif isinstance(item, DecodeAnomaly):
                trace.anomalies += 1
        return trace


def _merge_stats(into: MatchStats, other: MatchStats) -> None:
    into.steps += other.steps
    into.matched += other.matched
    into.restarts += other.restarts
    into.callback_fallbacks += other.callback_fallbacks
    into.ambiguous_steps += other.ambiguous_steps
    into.frontier_peak = max(into.frontier_peak, other.frontier_peak)
