"""Per-core -> per-thread trace reassembly (paper Section 6).

PT records per physical core, but a thread migrates between cores; its
trace is distributed.  JPortal:

1. obtains, for each core, the thread-switch records (timestamps at which
   each thread begins running there);
2. partitions each core's packet stream into windows owned by one thread;
3. concatenates each thread's windows from all cores in timestamp order.

The switch timestamps come from the OS sideband and "can be inconsistent
with those embedded in the hardware trace, resulting in occasional
mistakes in data separation" (Section 7.2) -- reproduced here via the
runtime's ``switch_timestamp_jitter``, which makes boundary packets land
in the wrong thread's stream exactly as in the paper.

Loss records are split into the same windows, so each per-thread stream
is a TSC-ordered list of ``("packet" | "loss", item)`` entries ready for
:class:`repro.pt.decoder.PTDecoder`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..jvm.machine import ThreadSwitchRecord
from ..pt.perf import PTTrace

TaggedStream = List[Tuple[str, object]]


@dataclass
class ThreadTrace:
    """One thread's reassembled, TSC-ordered packet/loss stream."""

    tid: int
    stream: TaggedStream = field(default_factory=list)

    def packet_count(self) -> int:
        return sum(1 for tag, _ in self.stream if tag == "packet")

    def loss_count(self) -> int:
        return sum(1 for tag, _ in self.stream if tag == "loss")


def split_by_thread(trace: PTTrace) -> Dict[int, ThreadTrace]:
    """Reassemble per-thread streams from a collected :class:`PTTrace`."""
    # Switch records per core, sorted by (possibly jittered) timestamp.
    switches_by_core: Dict[int, List[ThreadSwitchRecord]] = {}
    for record in trace.thread_switches:
        switches_by_core.setdefault(record.core, []).append(record)
    for records in switches_by_core.values():
        records.sort(key=lambda record: record.tsc)

    # A core with packets but no switch records has no sideband at all;
    # attributing to tid 0 would invent a phantom thread whenever tid 0
    # never ran there.  Fall back to the earliest owner observed anywhere.
    default_tid = 0
    if trace.thread_switches:
        default_tid = min(trace.thread_switches, key=lambda record: record.tsc).tid

    # Window items per thread: (tsc, sequence, tag, item).  The running
    # sequence number keeps the original per-core order among items with
    # equal timestamps.
    gathered: Dict[int, List[Tuple[int, int, str, object]]] = {}
    sequence = 0
    for core_trace in trace.cores:
        records = switches_by_core.get(core_trace.core, [])
        timestamps = [record.tsc for record in records]

        def owner_of(tsc: int) -> int:
            position = bisect_right(timestamps, tsc) - 1
            if position < 0:
                # Before the first switch: attribute to this core's first
                # real owner (never a phantom tid 0).
                return records[0].tid if records else default_tid
            return records[position].tid

        merged: List[Tuple[int, str, object]] = []
        for packet in core_trace.packets:
            merged.append((packet.tsc, "packet", packet))
        for loss in core_trace.losses:
            merged.append((loss.start_tsc, "loss", loss))
        merged.sort(key=lambda entry: entry[0])
        for tsc, tag, item in merged:
            tid = owner_of(tsc)
            gathered.setdefault(tid, []).append((tsc, sequence, tag, item))
            sequence += 1

    threads: Dict[int, ThreadTrace] = {}
    for tid, entries in gathered.items():
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        threads[tid] = ThreadTrace(
            tid=tid, stream=[(tag, item) for _, _, tag, item in entries]
        )
    return threads
