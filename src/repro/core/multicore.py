"""Per-core -> per-thread trace reassembly (paper Section 6).

Hardware tracing records per physical core, but a thread migrates
between cores; its trace is distributed.  JPortal:

1. obtains, for each core, the thread-switch records (timestamps at which
   each thread begins running there);
2. partitions each core's packet stream into windows owned by one thread;
3. concatenates each thread's windows from all cores in timestamp order.

The switch timestamps come from the OS sideband and "can be inconsistent
with those embedded in the hardware trace, resulting in occasional
mistakes in data separation" (Section 7.2) -- reproduced here via the
runtime's ``switch_timestamp_jitter``, which makes boundary packets land
in the wrong thread's stream exactly as in the paper.

Loss records are split into the same windows: a loss span that crosses
one or more thread-switch boundaries is cut at each boundary
(:func:`split_loss_at_switches`), its ``bytes_lost``/``packets_lost``
apportioned by span fraction, so every thread that owned the core during
the hole sees its share -- and per-core totals stay conserved.  Each
per-thread stream is then a TSC-ordered list of
``("packet" | "loss", item)`` entries ready for the trace-source engines
(:mod:`repro.tracesource.engine`).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..jvm.machine import ThreadSwitchRecord
from ..pt.packets import AuxLossRecord
from ..pt.perf import PTTrace

TaggedStream = List[Tuple[str, object]]


@dataclass
class ThreadTrace:
    """One thread's reassembled, TSC-ordered packet/loss stream.

    ``source`` names the trace frontend that produced the packets
    (``"pt"``, ``"etrace"``), so the pipeline can resolve the matching
    decoder classes through the trace-source registry.
    """

    tid: int
    stream: TaggedStream = field(default_factory=list)
    source: str = "pt"

    def packet_count(self) -> int:
        return sum(1 for tag, _ in self.stream if tag == "packet")

    def loss_count(self) -> int:
        return sum(1 for tag, _ in self.stream if tag == "loss")


def split_loss_at_switches(
    loss: AuxLossRecord,
    timestamps: Sequence[int],
    owner_of: Callable[[int], int],
) -> List[Tuple[int, AuxLossRecord]]:
    """Cut one loss span at the thread-switch boundaries inside it.

    Returns ``[(tid, piece), ...]`` in timestamp order.  *timestamps* is
    the core's sorted switch-timestamp list and *owner_of* maps a tsc to
    the owning tid (the same ``bisect`` attribution used for packets).
    Boundaries strictly inside ``(start_tsc, end_tsc]`` cut the span;
    adjacent pieces with the same owner are re-merged, so a span that
    never changes hands comes back as the *original* record (splitting
    only happens when attribution actually differs).  ``bytes_lost`` and
    ``packets_lost`` are apportioned by each piece's fraction of the
    inclusive span length using cumulative rounding, so the piece totals
    equal the original counts exactly -- the per-core conservation
    property the reassembly tests pin.
    """
    start, end = loss.start_tsc, loss.end_tsc
    if end <= start or not timestamps:
        return [(owner_of(start), loss)]
    lo = bisect_right(timestamps, start)
    hi = bisect_right(timestamps, end)
    if lo >= hi:
        return [(owner_of(start), loss)]
    cuts: List[int] = []
    for index in range(lo, hi):
        tsc = timestamps[index]
        if not cuts or cuts[-1] != tsc:
            cuts.append(tsc)
    # Piece i covers [bounds[i], bounds[i+1] - 1]; the last runs to end.
    bounds = [start] + cuts
    pieces: List[List[int]] = []  # [tid, piece_start, piece_end]
    for index, piece_start in enumerate(bounds):
        piece_end = bounds[index + 1] - 1 if index + 1 < len(bounds) else end
        tid = owner_of(piece_start)
        if pieces and pieces[-1][0] == tid:
            pieces[-1][2] = piece_end
        else:
            pieces.append([tid, piece_start, piece_end])
    if len(pieces) == 1:
        return [(pieces[0][0], loss)]
    total = end - start + 1
    out: List[Tuple[int, AuxLossRecord]] = []
    cum = prev_bytes = prev_packets = 0
    for tid, piece_start, piece_end in pieces:
        cum += piece_end - piece_start + 1
        cum_bytes = loss.bytes_lost * cum // total
        cum_packets = loss.packets_lost * cum // total
        out.append(
            (
                tid,
                AuxLossRecord(
                    start_tsc=piece_start,
                    end_tsc=piece_end,
                    bytes_lost=cum_bytes - prev_bytes,
                    packets_lost=cum_packets - prev_packets,
                ),
            )
        )
        prev_bytes, prev_packets = cum_bytes, cum_packets
    return out


def split_by_thread(trace: PTTrace) -> Dict[int, ThreadTrace]:
    """Reassemble per-thread streams from a collected :class:`PTTrace`."""
    # Switch records per core, sorted by (possibly jittered) timestamp.
    switches_by_core: Dict[int, List[ThreadSwitchRecord]] = {}
    for record in trace.thread_switches:
        switches_by_core.setdefault(record.core, []).append(record)
    for records in switches_by_core.values():
        records.sort(key=lambda record: record.tsc)

    # A core with packets but no switch records has no sideband at all;
    # attributing to tid 0 would invent a phantom thread whenever tid 0
    # never ran there.  Fall back to the earliest owner observed anywhere.
    default_tid = 0
    if trace.thread_switches:
        default_tid = min(trace.thread_switches, key=lambda record: record.tsc).tid

    source = getattr(trace.config, "frontend", "pt") or "pt"

    # Window items per thread: (tsc, sequence, tag, item).  The running
    # sequence number keeps the original per-core order among items with
    # equal timestamps.
    gathered: Dict[int, List[Tuple[int, int, str, object]]] = {}
    sequence = 0
    for core_trace in trace.cores:
        records = switches_by_core.get(core_trace.core, [])
        timestamps = [record.tsc for record in records]

        def owner_of(tsc: int) -> int:
            position = bisect_right(timestamps, tsc) - 1
            if position < 0:
                # Before the first switch: attribute to this core's first
                # real owner (never a phantom tid 0).
                return records[0].tid if records else default_tid
            return records[position].tid

        merged: List[Tuple[int, str, object]] = []
        for packet in core_trace.packets:
            merged.append((packet.tsc, "packet", packet))
        for loss in core_trace.losses:
            merged.append((loss.start_tsc, "loss", loss))
        merged.sort(key=lambda entry: entry[0])
        for tsc, tag, item in merged:
            if tag == "loss":
                # A loss span crossing switch boundaries is cut per
                # owner; the pieces stay contiguous at the original
                # stream position (sort key = the span's start) so the
                # streaming release order reproduces this exactly.
                for tid, piece in split_loss_at_switches(
                    item, timestamps, owner_of
                ):
                    gathered.setdefault(tid, []).append(
                        (tsc, sequence, tag, piece)
                    )
                    sequence += 1
            else:
                tid = owner_of(tsc)
                gathered.setdefault(tid, []).append((tsc, sequence, tag, item))
                sequence += 1

    threads: Dict[int, ThreadTrace] = {}
    for tid, entries in gathered.items():
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        threads[tid] = ThreadTrace(
            tid=tid,
            stream=[(tag, item) for _, _, tag, item in entries],
            source=source,
        )
    return threads
