"""Interpreter-mode bytecode decoding (paper Section 3.1).

A TIP into template space identifies the template that ran, and template
address ranges map one-to-one onto opcodes, so "we can always precisely
determine the bytecode instruction interpreted" -- but not *where* in the
program it sits.  The PT-level decoder has already performed the address
-> opcode match (via the exported template metadata); this module lifts
its :class:`~repro.pt.decoder.InterpDispatch` items into
:class:`~repro.core.observed.ObservedStep` form.
"""

from __future__ import annotations

from ..pt.decoder import InterpDispatch
from .observed import ObservedStep


def lift_dispatch(item: InterpDispatch) -> ObservedStep:
    """Turn one decoded template dispatch into an observed step."""
    return ObservedStep(
        symbol=item.op,
        taken=item.taken,
        location=None,
        source="interp",
        tsc=item.tsc,
    )
