"""JIT-mode bytecode decoding (paper Section 3.2).

A decoded :class:`~repro.pt.decoder.JitSpan` is the sequence of machine
instruction addresses executed inside compiled code (Figure 3(d)).  The
compiler's debug info maps each address that implements a bytecode to its
``(method, bci)`` -- with inline frames for inlined code, whose innermost
entry is the executing location (Section 6, "Dealing with Inlined Code").
Synthetic instructions (prologues, layout jumps) carry no debug record
and are skipped, exactly as a real decoder skips PCs without a scope
descriptor.
"""

from __future__ import annotations

from typing import List

from ..jvm.model import JProgram
from ..pt.decoder import JitSpan
from .metadata import CodeDatabase
from .observed import ObservedStep


def lift_span(
    span: JitSpan, database: CodeDatabase, program: JProgram
) -> List[ObservedStep]:
    """Map one machine-code span to its observed bytecode steps."""
    steps: List[ObservedStep] = []
    for address in span.addresses:
        frames = database.debug_frames_at(address, span.tsc)
        if not frames:
            continue  # synthetic instruction: no debug record
        qname, bci = frames[-1]
        if bci < 0:
            continue  # prologue/epilogue marker
        class_name, method_name = qname.rsplit(".", 1)
        method = program.method(class_name, method_name)
        inst = method.code[bci]
        steps.append(
            ObservedStep(
                symbol=inst.op,
                taken=None,
                location=(qname, bci),
                source="jit",
                tsc=span.tsc,
            )
        )
    return steps
