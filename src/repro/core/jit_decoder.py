"""JIT-mode bytecode decoding (paper Section 3.2).

A decoded :class:`~repro.pt.decoder.JitSpan` is the sequence of machine
instruction addresses executed inside compiled code (Figure 3(d)).  The
compiler's debug info maps each address that implements a bytecode to its
``(method, bci)`` -- with inline frames for inlined code, whose innermost
entry is the executing location (Section 6, "Dealing with Inlined Code").
Synthetic instructions (prologues, layout jumps) carry no debug record
and are skipped, exactly as a real decoder skips PCs without a scope
descriptor.  A debug record that no longer *resolves* -- the method name
does not parse, the program has no such method, the bci runs off the end
of the bytecode -- is a stale-export symptom (code reclaimed before its
metadata was flushed): the instruction is skipped and counted under
``lift.stale_debug_entries`` rather than crashing the lift.
"""

from __future__ import annotations

from typing import List, Optional

from ..jvm.model import JProgram
from ..pt.decoder import JitSpan
from .metadata import CodeDatabase
from .observed import ObservedStep


def lift_span(
    span: JitSpan,
    database: CodeDatabase,
    program: JProgram,
    metrics=None,
    tid: Optional[int] = None,
) -> List[ObservedStep]:
    """Map one machine-code span to its observed bytecode steps."""
    steps: List[ObservedStep] = []
    stale = 0
    for address in span.addresses:
        frames = database.debug_frames_at(address, span.tsc)
        if not frames:
            continue  # synthetic instruction: no debug record
        qname, bci = frames[-1]
        if bci < 0:
            continue  # prologue/epilogue marker
        try:
            class_name, method_name = qname.rsplit(".", 1)
            inst = program.method(class_name, method_name).code[bci]
        except Exception:
            stale += 1
            continue
        steps.append(
            ObservedStep(
                symbol=inst.op,
                taken=None,
                location=(qname, bci),
                source="jit",
                tsc=span.tsc,
            )
        )
    if stale and metrics is not None:
        metrics.incr("lift.stale_debug_entries", stale, tid=tid)
    return steps
