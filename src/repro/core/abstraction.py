"""Sequence abstractions (paper Definitions 4.2 and 5.2).

The recovery and reconstruction machinery views a trace at three tiers:

* **tier 1 -- call structure**: calls, returns, throws;
* **tier 2 -- control structure**: tier 1 plus conditional branches,
  unconditional jumps, and switches (this is exactly Definition 4.2);
* **tier 3 -- concrete**: every instruction.

``alpha_l`` (:func:`abstract_sequence`) keeps only tier <= l entries,
preserving order -- the subsequence property of Definition 5.2.  The
functions are generic over anything that exposes the executed opcode
(observed steps, reconstructed nodes, plain opcode lists) via a key
function.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

from ..jvm.opcodes import Op, tier

T = TypeVar("T")

TIER_CALL = 1
TIER_CONTROL = 2
TIER_CONCRETE = 3


def abstract_sequence(
    sequence: Sequence[T],
    level: int,
    op_of: Callable[[T], Op],
) -> List[T]:
    """``alpha_l``: the subsequence of tier <= *level* entries.

    With ``level == 3`` this is the identity (every opcode has tier <= 3).
    """
    if level >= TIER_CONCRETE:
        return list(sequence)
    return [item for item in sequence if tier(op_of(item)) <= level]


def abstract_ops(ops: Sequence[Op], level: int) -> List[Op]:
    """:func:`abstract_sequence` specialised to plain opcode sequences."""
    return abstract_sequence(ops, level, lambda op: op)


def common_suffix_length(left: Sequence[T], right: Sequence[T]) -> int:
    """Length of the longest common suffix of two sequences.

    This is the paper's matching operator ``|a . b|`` evaluated directly on
    already-aligned sequences (recovery compares an IS against a CS prefix
    "from their end instructions, in reverse order").
    """
    limit = min(len(left), len(right))
    count = 0
    while count < limit and left[-1 - count] == right[-1 - count]:
        count += 1
    return count
