"""Abstraction-guided recovery of missing trace data (paper Section 5).

A hole (buffer overflow) splits a thread's reconstructed flow into
segments.  For each hole, the segment before it is the *incomplete
segment* (IS); recovery searches all segments for a *complete segment*
(CS) whose context matches the IS and borrows the CS's continuation to
fill the hole (Definition 5.1, Figure 6):

1. the last ``x`` instructions before the hole are the **anchor**; an
   inverted n-gram index finds every other occurrence of the anchor
   cheaply;
2. candidates are compared to the IS by the length of the common suffix
   of their prefixes -- evaluated **tier by tier** (call structure ->
   control structure -> concrete, Definition 5.2), with the early exits
   that Theorem 5.5 licenses: a candidate whose tier-l common suffix is
   already shorter than the best-so-far cannot win concretely
   (Algorithm 4); :func:`basic_search` is the non-abstracted Algorithm 3
   baseline;
3. the top-N candidates are tried in rank order: instructions following
   the anchor in the CS are copied into the hole until ``y`` consecutive
   instructions match the IS's post-hole continuation; a timestamp budget
   (hole duration / cost hint) bounds the copy, and exhausted candidates
   yield to the next (Section 5, "Recovery");
4. if no CS fills the hole, an ICFG walk connects the pre- and post-hole
   instructions (the paper's random-path fallback, made deterministic).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..jvm.icfg import ICFG
from ..jvm.opcodes import tier
from .observed import ObservedHole

Node = Tuple[str, int]
Entry = Optional[Node]  # a reconstructed step (None if projection failed)


@dataclass
class RecoveryConfig:
    """Recovery tuning (the paper's x, y, N and time-budget knobs)."""

    anchor_length: int = 3  # x
    post_match_length: int = 4  # y
    top_n: int = 5
    max_fill: int = 50_000
    # Conversion from hole duration (TSC units) to an instruction budget;
    # the runtime's compiled-step cost is the optimistic bound.
    cost_per_instruction: float = 1.0
    budget_slack: float = 2.0
    fallback_max_depth: int = 64
    # Efficiency valves: hot loops produce thousands of occurrences of the
    # same anchor, and candidate prefixes can be arbitrarily long; cap the
    # candidates ranked per hole (most recent first -- temporal locality)
    # and the per-tier suffix comparison depth.
    max_candidates: int = 200
    max_suffix_compare: int = 2_048
    # An anchor whose nodes have mostly SILENT out-edges (static
    # observability score below this floor) is a weak match key: identical
    # anchor windows may cover different true paths.  0.0 disables the
    # filter (default: behave exactly as before analysis existed).
    min_anchor_quality: float = 0.0


@dataclass
class RecoveryStats:
    holes: int = 0
    #: Holes declared by the decoder's error budget rather than a ring
    #: overflow; filled through the same CS/fallback machinery.
    synthetic_holes: int = 0
    filled_from_cs: int = 0
    filled_fallback: int = 0
    unfilled: int = 0
    candidates_indexed: int = 0
    candidates_tested: int = 0
    tier1_pruned: int = 0
    tier2_pruned: int = 0
    recovered_instructions: int = 0
    anchors_scored: int = 0
    anchor_quality_sum: float = 0.0
    low_quality_anchors: int = 0

    @property
    def mean_anchor_quality(self) -> float:
        if self.anchors_scored == 0:
            return 1.0
        return self.anchor_quality_sum / self.anchors_scored


@dataclass
class RecoveredFlow:
    """A thread's final flow: (entry, provenance) pairs.

    Provenance is ``"decoded"`` for directly reconstructed entries,
    ``"recovered"`` for CS-borrowed fills, ``"fallback"`` for ICFG-walk
    fills.
    """

    entries: List[Tuple[Entry, str]]
    stats: RecoveryStats

    def nodes(self) -> List[Entry]:
        return [entry for entry, _provenance in self.entries]

    def decoded_nodes(self) -> List[Entry]:
        return [e for e, p in self.entries if p == "decoded"]


class _SegmentView:
    """A reconstructed segment plus its per-tier abstract projections."""

    def __init__(self, entries: List[Entry], tier_of):
        self.entries = entries
        # Positions (into entries) of tier-1 / tier-2 instructions.
        self.tier_positions: Dict[int, List[int]] = {1: [], 2: []}
        for position, entry in enumerate(entries):
            if entry is None:
                continue
            level = tier_of(entry)
            if level <= 1:
                self.tier_positions[1].append(position)
            if level <= 2:
                self.tier_positions[2].append(position)

    def abstract_prefix_positions(self, level: int, end: int) -> List[int]:
        """Positions of tier <= level entries in ``entries[:end]``."""
        positions = self.tier_positions[level]
        cut = bisect_right(positions, end - 1)
        return positions[:cut]


@dataclass
class _Candidate:
    segment: int
    anchor_end: int  # position of the last anchor entry in that segment
    m1: int = 0
    m2: int = 0
    m3: int = 0


class RecoveryEngine:
    """Fills the holes of a segmented, reconstructed thread flow."""

    def __init__(
        self,
        icfg: ICFG,
        config: Optional[RecoveryConfig] = None,
        observability=None,
    ):
        self.icfg = icfg
        self.config = config or RecoveryConfig()
        # Optional repro.analysis ObservabilityMap: scores each anchor by
        # how much of its nodes' out-flow a trace can actually pin down.
        self.observability = observability
        self._tiers: Dict[Node, int] = {
            node: tier(icfg.instruction(node).op) for node in icfg.nodes()
        }

    def _anchor_quality(self, anchor: Tuple[Node, ...]) -> float:
        if self.observability is None or not anchor:
            return 1.0
        scores = [self.observability.node_score(node) for node in anchor]
        return sum(scores) / len(scores)

    def _tier_of(self, entry: Node) -> int:
        return self._tiers.get(entry, 3)

    # ------------------------------------------------------------------ API
    def recover(
        self,
        segments: Sequence[List[Entry]],
        holes: Sequence[ObservedHole],
        metrics=None,
        tid: Optional[int] = None,
    ) -> RecoveredFlow:
        """Recover a thread flow of ``len(segments)`` segments separated by
        ``len(holes)`` holes (``holes[i]`` sits after ``segments[i]``).

        A trailing hole (fewer segments than holes + 1) is left unfilled.
        When a :class:`~repro.core.metrics.MetricsRegistry` is supplied,
        the run's stats are published under ``recover.*`` for *tid*.
        """
        stats = RecoveryStats()
        views = [_SegmentView(list(segment), self._tier_of) for segment in segments]
        index = self._build_anchor_index(views, stats)
        entries: List[Tuple[Entry, str]] = []
        for position, view in enumerate(views):
            for entry in view.entries:
                entries.append((entry, "decoded"))
            if position < len(holes):
                next_view = views[position + 1] if position + 1 < len(views) else None
                fill = self._fill_hole(
                    views, index, position, holes[position], next_view, stats
                )
                entries.extend(fill)
        stats.holes = len(holes)
        stats.synthetic_holes = sum(
            1 for hole in holes if getattr(hole, "synthetic", False)
        )
        if metrics is not None:
            for name, value in (
                ("recover.holes", stats.holes),
                ("recover.synthetic_holes", stats.synthetic_holes),
                ("recover.filled_from_cs", stats.filled_from_cs),
                ("recover.filled_fallback", stats.filled_fallback),
                ("recover.unfilled", stats.unfilled),
                ("recover.candidates_tested", stats.candidates_tested),
                ("recover.recovered_instructions", stats.recovered_instructions),
                ("recover.low_quality_anchors", stats.low_quality_anchors),
            ):
                if value:
                    metrics.incr(name, value, tid=tid)
        return RecoveredFlow(entries=entries, stats=stats)

    # ----------------------------------------------------------- anchor index
    def _build_anchor_index(
        self, views: List[_SegmentView], stats: RecoveryStats
    ) -> Dict[Tuple, List[Tuple[int, int]]]:
        """n-gram index: anchor tuple -> [(segment, end_position), ...]."""
        x = self.config.anchor_length
        index: Dict[Tuple, List[Tuple[int, int]]] = {}
        for segment_id, view in enumerate(views):
            entries = view.entries
            if len(entries) < x:
                continue
            window = tuple(entries[:x])
            for end in range(x - 1, len(entries)):
                if end >= x:
                    window = window[1:] + (entries[end],)
                if None in window:
                    continue
                index.setdefault(window, []).append((segment_id, end))
                stats.candidates_indexed += 1
        return index

    # ------------------------------------------------------------- hole fill
    def _fill_hole(
        self,
        views: List[_SegmentView],
        index: Dict[Tuple, List[Tuple[int, int]]],
        is_id: int,
        hole: ObservedHole,
        next_view: Optional[_SegmentView],
        stats: RecoveryStats,
    ) -> List[Tuple[Entry, str]]:
        config = self.config
        is_view = views[is_id]
        is_entries = is_view.entries
        x = config.anchor_length
        if len(is_entries) < x:
            return self._fallback(is_view, next_view, stats)
        anchor = tuple(is_entries[-x:])
        if None in anchor:
            return self._fallback(is_view, next_view, stats)
        quality = self._anchor_quality(anchor)
        stats.anchors_scored += 1
        stats.anchor_quality_sum += quality
        if quality < self.config.min_anchor_quality:
            stats.low_quality_anchors += 1
            return self._fallback(is_view, next_view, stats)
        occurrences = [
            (segment, end)
            for segment, end in index.get(anchor, ())
            if not (segment == is_id and end == len(is_entries) - 1)
        ]
        if not occurrences:
            return self._fallback(is_view, next_view, stats)
        if len(occurrences) > config.max_candidates:
            occurrences = occurrences[-config.max_candidates :]
        ranked = self._rank_candidates(views, is_view, occurrences, stats)
        post = next_view.entries[: config.post_match_length] if next_view else []
        budget = int(
            hole.duration / max(config.cost_per_instruction, 1e-9) * config.budget_slack
        )
        budget = max(1, min(budget, config.max_fill))
        for candidate in ranked[: config.top_n]:
            fill = self._try_fill(views, candidate, post, budget)
            if fill is not None:
                stats.filled_from_cs += 1
                stats.recovered_instructions += len(fill)
                return [(entry, "recovered") for entry in fill]
        return self._fallback(is_view, next_view, stats)

    def _rank_candidates(
        self,
        views: List[_SegmentView],
        is_view: _SegmentView,
        occurrences: List[Tuple[int, int]],
        stats: RecoveryStats,
    ) -> List[_Candidate]:
        """Algorithm 4: tiered common-suffix ranking with early exits."""
        best = (0, 0, 0)
        candidates: List[_Candidate] = []
        is_end = len(is_view.entries)
        for segment_id, end in occurrences:
            stats.candidates_tested += 1
            cs_view = views[segment_id]
            m1 = self._tier_suffix(is_view, is_end, cs_view, end + 1, 1)
            if m1 < best[0]:
                stats.tier1_pruned += 1
                continue
            m2 = self._tier_suffix(is_view, is_end, cs_view, end + 1, 2)
            if m2 < best[1]:
                stats.tier2_pruned += 1
                continue
            m3 = self._concrete_suffix(is_view, is_end, cs_view, end + 1)
            candidate = _Candidate(segment=segment_id, anchor_end=end, m1=m1, m2=m2, m3=m3)
            candidates.append(candidate)
            if m3 >= best[2]:
                best = (m1, m2, m3)
        candidates.sort(key=lambda c: (-c.m3, -c.m2, -c.m1, c.segment, c.anchor_end))
        return candidates

    def _tier_suffix(
        self,
        is_view: _SegmentView,
        is_end: int,
        cs_view: _SegmentView,
        cs_end: int,
        level: int,
    ) -> int:
        left_positions = is_view.abstract_prefix_positions(level, is_end)
        right_positions = cs_view.abstract_prefix_positions(level, cs_end)
        left = is_view.entries
        right = cs_view.entries
        count = 0
        limit = min(
            len(left_positions), len(right_positions), self.config.max_suffix_compare
        )
        while count < limit:
            a = left[left_positions[-1 - count]]
            b = right[right_positions[-1 - count]]
            if a != b:
                break
            count += 1
        return count

    def _concrete_suffix(
        self, is_view: _SegmentView, is_end: int, cs_view: _SegmentView, cs_end: int
    ) -> int:
        left = is_view.entries
        right = cs_view.entries
        count = 0
        limit = min(is_end, cs_end, self.config.max_suffix_compare)
        while count < limit:
            a = left[is_end - 1 - count]
            b = right[cs_end - 1 - count]
            if a is None or a != b:
                break
            count += 1
        return count

    def _try_fill(
        self,
        views: List[_SegmentView],
        candidate: _Candidate,
        post: List[Entry],
        budget: int,
    ) -> Optional[List[Entry]]:
        """Copy the CS continuation until the post-hole context matches."""
        cs_entries = views[candidate.segment].entries
        suffix = cs_entries[candidate.anchor_end + 1 :]
        y = len(post)
        if y == 0:
            # Trailing hole: copy up to the budget.
            return list(suffix[:budget]) if suffix else None
        limit = min(len(suffix), budget + y)
        for position in range(0, limit - y + 1):
            if suffix[position : position + y] == post:
                return list(suffix[:position])
        return None

    # --------------------------------------------------------------- fallback
    def _fallback(
        self,
        is_view: _SegmentView,
        next_view: Optional[_SegmentView],
        stats: RecoveryStats,
    ) -> List[Tuple[Entry, str]]:
        """ICFG walk connecting the pre- and post-hole instructions."""
        source: Entry = None
        for entry in reversed(is_view.entries):
            if entry is not None:
                source = entry
                break
        target: Entry = None
        if next_view is not None:
            for entry in next_view.entries:
                if entry is not None:
                    target = entry
                    break
        if source is None or target is None:
            stats.unfilled += 1
            return []
        path = self._icfg_path(source, target)
        if path is None:
            stats.unfilled += 1
            return []
        stats.filled_fallback += 1
        stats.recovered_instructions += len(path)
        return [(node, "fallback") for node in path]

    def _icfg_path(self, source: Node, target: Node) -> Optional[List[Node]]:
        """Shortest ICFG path strictly between *source* and *target*."""
        limit = self.config.fallback_max_depth
        parents: Dict[Node, Optional[Node]] = {source: None}
        queue = deque([(source, 0)])
        while queue:
            current, depth = queue.popleft()
            if depth >= limit:
                continue
            for nxt, _kind in self.icfg.successors(current):
                if nxt in parents:
                    continue
                parents[nxt] = current
                if nxt == target:
                    path: List[Node] = []
                    walk = parents[target]
                    while walk is not None and walk != source:
                        path.append(walk)
                        walk = parents[walk]
                    path.reverse()
                    return path
                queue.append((nxt, depth + 1))
        return None


def basic_search(
    views_entries: Sequence[List[Entry]],
    is_id: int,
    anchor_length: int = 3,
) -> Optional[Tuple[int, int, int]]:
    """Algorithm 3: exhaustive concrete CS search (ablation baseline).

    Returns ``(segment, anchor_end, suffix_length)`` of the best match, or
    ``None``.  No abstraction, no index pruning beyond the anchor scan --
    per-instruction comparison against every occurrence, as written in the
    paper's basic algorithm.
    """
    segments = [list(entries) for entries in views_entries]
    is_entries = segments[is_id]
    if len(is_entries) < anchor_length:
        return None
    anchor = is_entries[-anchor_length:]
    if None in anchor:
        return None
    best: Optional[Tuple[int, int, int]] = None
    for segment_id, entries in enumerate(segments):
        for end in range(anchor_length - 1, len(entries)):
            if segment_id == is_id and end == len(is_entries) - 1:
                continue
            if entries[end - anchor_length + 1 : end + 1] != anchor:
                continue
            # Concrete common suffix of the prefixes.
            count = 0
            limit = min(len(is_entries), end + 1)
            while count < limit:
                a = is_entries[len(is_entries) - 1 - count]
                b = entries[end - count]
                if a is None or a != b:
                    break
                count += 1
            if best is None or count > best[2]:
                best = (segment_id, end, count)
    return best
