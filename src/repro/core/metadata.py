"""Machine-code metadata collection and the offline code database.

JPortal's online component exports (Section 3 and Section 6):

* the template interpreter's per-opcode address ranges (collected at JVM
  initialisation);
* every JIT-compiled method's machine code and address range (exported
  before GC can reclaim it), together with the compiler's debug info
  mapping machine PCs to bytecode locations (with inline frames).

:func:`collect_metadata` performs that export from a finished run, and
:class:`CodeDatabase` is the offline index the decoder and the bytecode
mappers query.  The database is built **only** from exported artefacts --
instruction kinds/sizes/targets and debug records -- never from the
runtime's private semantic maps, preserving the paper's information
boundary (the decoder must genuinely reconstruct, not peek).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..jvm.machine import AddressSpace, MachineInstruction, MIKind
from ..jvm.opcodes import Kind, MNEMONICS, Op, info
from ..jvm.runtime import RunResult
from ..pt.decoder import (
    BLOCK_CHAIN,
    BLOCK_COND,
    BLOCK_END,
    BLOCK_EPOCH,
    BLOCK_UNKNOWN,
    TARGET_CODE,
    TARGET_STUB,
    TARGET_TEMPLATE,
    TARGET_UNKNOWN,
)

#: Straight-line cap on one cached walk block (loop/runaway guard: a
#: direct-jump cycle inside compiled code must still terminate the block
#: builder; the decoder chains blocks, so the cap only bounds cache
#: granularity, never the walk itself).
MAX_BLOCK = 512


@dataclass(frozen=True)
class WalkBlock:
    """One cached straight-line run through compiled code.

    ``addresses`` are the executed instruction addresses of the run, in
    order.  ``kind`` says how it ends:

    * ``COND`` -- the last address is a conditional branch: consume one
      TNT bit, continue at ``taken_ip`` (taken) or ``fall_ip`` (not);
    * ``END`` -- the last address is an indirect branch/return: the walk
      stops and awaits the next TIP;
    * ``CHAIN`` -- the run was cut short (block cap, or the next address
      is epoch-dependent): continue walking at ``next_ip``;
    * ``UNKNOWN`` -- ``next_ip`` maps to no exported instruction: the
      walk desynchronises there (``addresses`` may be empty);
    * ``EPOCH`` -- the *starting* address has multiple exported
      candidates (code-cache reuse across GC epochs): nothing can be
      cached; the decoder steps it per-instruction with the real ``tsc``.

    Blocks are built only across addresses with exactly one exported
    candidate instruction, so one block is valid for every timestamp --
    epoch-dependent (reused) addresses force a ``CHAIN`` cut and are
    stepped per-instruction by the decoder with the real ``tsc``.
    """

    # The end-kind codes are the pt-layer contract (repro.pt.decoder
    # defines them; the pt layer cannot import this module).
    COND = BLOCK_COND
    END = BLOCK_END
    CHAIN = BLOCK_CHAIN
    UNKNOWN = BLOCK_UNKNOWN
    EPOCH = BLOCK_EPOCH

    bid: int
    addresses: Tuple[int, ...]
    kind: int
    taken_ip: int = -1
    fall_ip: int = -1
    next_ip: int = -1


@dataclass
class CodeDump:
    """One exported compiled-code blob.

    ``debug`` maps each instruction address to its debug frame stack:
    ``((caller_qname, call_bci), ..., (qname, bci))`` -- innermost last,
    exactly the paper's Figure 3(b) with inline frames.
    """

    qname: str
    entry: int
    limit: int
    instructions: List[MachineInstruction]
    debug: Dict[int, Tuple[Tuple[str, int], ...]]
    load_tsc: int
    unload_tsc: Optional[int]
    #: Number of debug records at export time; an integrity field the
    #: lint pass checks against ``len(debug)`` to catch truncation.
    declared_debug_count: Optional[int] = None

    def alive_at(self, tsc: Optional[int]) -> bool:
        if tsc is None:
            return self.unload_tsc is None
        if tsc < self.load_tsc:
            return False
        return self.unload_tsc is None or tsc < self.unload_tsc

    @property
    def identity(self) -> Tuple[str, int, int]:
        """Stable key for one exported blob: a method recompiled (or its
        address reused after GC) gets a new ``load_tsc``, so the triple
        distinguishes every export event.  The archive layer dedups the
        metadata snapshot against the incremental journal with it."""
        return (self.qname, self.entry, self.load_tsc)


def collect_metadata(run: RunResult) -> "CodeDatabase":
    """Export the machine-code metadata of a finished run."""
    template_metadata = run.template_table.metadata()
    dumps: List[CodeDump] = []
    for code in run.code_cache.all_code():
        dumps.append(
            CodeDump(
                qname=code.method.qualified_name,
                entry=code.entry,
                limit=code.limit,
                instructions=list(code.instructions),
                debug=dict(code.debug),
                load_tsc=code.load_tsc,
                unload_tsc=code.unload_tsc,
                declared_debug_count=len(code.debug),
            )
        )
    return CodeDatabase(template_metadata, dumps, run.address_space)


class CodeDatabase:
    """Offline index over exported machine-code metadata.

    Implements the protocol :class:`repro.pt.decoder.PTDecoder` expects,
    plus the debug-info queries of the JIT-mode bytecode mapper.
    """

    def __init__(
        self,
        template_metadata: Dict[str, Tuple[Tuple[int, int], ...]],
        code_dumps: List[CodeDump],
        address_space: AddressSpace,
    ):
        self.address_space = address_space
        self.code_dumps = list(code_dumps)
        self.template_metadata = dict(template_metadata)
        # Template interval index: mnemonic ranges -> Op.
        self._template_intervals: List[Tuple[int, int, Optional[Op]]] = []
        self._return_stub: Tuple[int, int] = (0, 0)
        for mnemonic, ranges in template_metadata.items():
            if mnemonic == "<return-stub>":
                self._return_stub = ranges[0]
                continue
            op = MNEMONICS[mnemonic]
            for start, end in ranges:
                self._template_intervals.append((start, end, op))
        self._template_intervals.sort()
        self._template_starts = [iv[0] for iv in self._template_intervals]
        # Compiled-code indices.  Address reuse across GC reclamation is
        # resolved by timestamp (a dump is consulted only while alive).
        self._dumps_sorted = sorted(self.code_dumps, key=lambda d: (d.entry, d.load_tsc))
        self._dump_starts = [dump.entry for dump in self._dumps_sorted]
        self._mi_index: Dict[int, List[Tuple[CodeDump, MachineInstruction]]] = {}
        for dump in self._dumps_sorted:
            for mi in dump.instructions:
                self._mi_index.setdefault(mi.address, []).append((dump, mi))
        # Batch-decoder caches (filled lazily; see the array decode core
        # section of DESIGN.md).  Both are monotone memo tables over
        # immutable inputs, so concurrent fills from pooled worker threads
        # are benign (worst case: the same entry computed twice).
        self._target_class: Dict[int, Tuple[int, Optional[Op]]] = {}
        self._blocks: Dict[int, WalkBlock] = {}
        self._block_count = 0

    # -------------------------------------------------- decoder protocol
    def template_op_at(self, ip: int) -> Optional[Op]:
        position = bisect_right(self._template_starts, ip) - 1
        if position < 0:
            return None
        start, end, op = self._template_intervals[position]
        if start <= ip < end:
            return op
        return None

    @staticmethod
    def op_is_conditional(op: Op) -> bool:
        return info(op).kind is Kind.COND

    def is_return_stub(self, ip: int) -> bool:
        start, end = self._return_stub
        return start <= ip < end

    def in_code_cache(self, ip: int) -> bool:
        return self.address_space.in_code_cache(ip)

    def native_instruction_at(
        self, ip: int, tsc: Optional[int] = None
    ) -> Optional[MachineInstruction]:
        candidates = self._mi_index.get(ip)
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0][1]
        for dump, mi in candidates:
            if dump.alive_at(tsc):
                return mi
        return candidates[-1][1]

    def classify_target(self, ip: int) -> Tuple[int, Optional[Op]]:
        """Memoized TIP-target classification: ``(class, template_op)``.

        The class codes and the *query order* (return stub, then template,
        then code cache, then unmapped) replicate the object decoder's
        ``_on_tip`` exactly, so both cores route every TIP identically.
        The mapping is a pure function of the immutable metadata, hence
        safe to memoize for the lifetime of the database.
        """
        hit = self._target_class.get(ip)
        if hit is None:
            if self.is_return_stub(ip):
                hit = (TARGET_STUB, None)
            else:
                op = self.template_op_at(ip)
                if op is not None:
                    hit = (TARGET_TEMPLATE, op)
                elif self.in_code_cache(ip):
                    hit = (TARGET_CODE, None)
                else:
                    hit = (TARGET_UNKNOWN, None)
            self._target_class[ip] = hit
        return hit

    def walk_block(self, address: int) -> WalkBlock:
        """The cached straight-line :class:`WalkBlock` starting at *address*.

        The batch decoder drains compiled-code walks block-at-a-time
        through this cache instead of one ``native_instruction_at`` call
        per instruction -- the same basic-block caching real PT decoders
        use.  Addresses with more than one exported candidate (code-cache
        reuse across GC epochs) are never folded into a block: they
        surface as an ``EPOCH`` block so the decoder can resolve them
        per-instruction with the real timestamp.
        """
        block = self._blocks.get(address)
        if block is None:
            block = self._build_block(address)
            self._blocks[address] = block
        return block

    def _build_block(self, start: int) -> WalkBlock:
        addresses: List[int] = []
        address = start
        mi_index = self._mi_index
        bid = self._block_count
        self._block_count += 1
        while True:
            candidates = mi_index.get(address)
            if not candidates:
                return WalkBlock(
                    bid, tuple(addresses), WalkBlock.UNKNOWN, next_ip=address
                )
            if len(candidates) != 1:
                if not addresses:
                    return WalkBlock(bid, (), WalkBlock.EPOCH, next_ip=address)
                return WalkBlock(
                    bid, tuple(addresses), WalkBlock.CHAIN, next_ip=address
                )
            mi = candidates[0][1]
            kind = mi.kind
            addresses.append(address)
            if kind is MIKind.OTHER:
                address = mi.end
            elif kind is MIKind.JMP_DIRECT or kind is MIKind.CALL_DIRECT:
                address = mi.target
            elif kind is MIKind.COND_BRANCH:
                return WalkBlock(
                    bid,
                    tuple(addresses),
                    WalkBlock.COND,
                    taken_ip=mi.target,
                    fall_ip=mi.end,
                )
            else:
                # Indirect branch / return: awaits the next TIP.
                return WalkBlock(bid, tuple(addresses), WalkBlock.END)
            if len(addresses) >= MAX_BLOCK:
                return WalkBlock(
                    bid, tuple(addresses), WalkBlock.CHAIN, next_ip=address
                )

    # ------------------------------------------------ debug-info queries
    def dump_at(self, ip: int, tsc: Optional[int] = None) -> Optional[CodeDump]:
        position = bisect_right(self._dump_starts, ip) - 1
        while position >= 0:
            dump = self._dumps_sorted[position]
            if dump.entry <= ip < dump.limit and dump.alive_at(tsc):
                return dump
            position -= 1
        return None

    def debug_frames_at(
        self, ip: int, tsc: Optional[int] = None
    ) -> Optional[Tuple[Tuple[str, int], ...]]:
        """Debug frame stack for the instruction at *ip* (innermost last)."""
        candidates = self._mi_index.get(ip)
        if not candidates:
            return None
        for dump, _mi in candidates:
            if dump.alive_at(tsc):
                return dump.debug.get(ip)
        dump, _mi = candidates[-1]
        return dump.debug.get(ip)

    def with_dumps(self, extra_dumps: List[CodeDump]) -> "CodeDatabase":
        """A new database with *extra_dumps* merged in (deduplicated by
        :attr:`CodeDump.identity`, ordered by load time).

        This is how an archive's metadata snapshot and its incremental
        ``CodeDump`` journal combine: the snapshot carries everything
        exported before it was taken, the journal carries the dumps the
        online side appended afterwards (before GC could reclaim them),
        and replayed journal entries collapse onto the snapshot copy.
        """
        merged: Dict[Tuple[str, int, int], CodeDump] = {
            dump.identity: dump for dump in self.code_dumps
        }
        for dump in extra_dumps:
            merged.setdefault(dump.identity, dump)
        dumps = sorted(merged.values(), key=lambda d: (d.load_tsc, d.entry))
        return CodeDatabase(self.template_metadata, dumps, self.address_space)

    def compiled_method_count(self) -> int:
        return len({dump.qname for dump in self.code_dumps})

    def metadata_bytes(self) -> int:
        """Approximate exported-metadata volume (for overhead accounting)."""
        total = 64 * len(self._template_intervals)
        for dump in self.code_dumps:
            total += (dump.limit - dump.entry) + 16 * len(dump.debug)
        return total
