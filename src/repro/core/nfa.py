"""ICFG-as-NFA formulation (paper Definitions 4.1--4.3, Figures 4--5).

:class:`ProgramNFA` models the program's ICFG as a nondeterministic finite
automaton:

* one state per ICFG node (bytecode instruction); ``N`` maps states to
  nodes and ``I`` maps nodes to the observable symbol (the opcode);
* a transition ``delta(q, s)`` yields every ICFG successor of ``N(q)``
  whose instruction matches ``s`` -- with the refinement that when the
  TNT outcome of a conditional is known, only the matching arm survives
  (the paper's edge labels ``ifeq 0`` / ``ifeq 1``);
* every state may start a match and every state may accept, because a
  hardware trace can begin and end anywhere.

For the abstraction of Definition 4.3 the module also provides a generic
:class:`NFA` with epsilon transitions, epsilon-elimination and subset-
construction determinisation (:func:`determinize`) -- used to realise the
ANFA -> DFA pipeline of Figure 5 -- and :meth:`ProgramNFA.control_closure`,
the precomputed epsilon-closure over non-control states that the
abstraction-guided matcher uses on the full program.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..jvm.icfg import ICFG, IEdgeKind
from ..jvm.opcodes import Kind, Op, info, tier

Node = Tuple[str, int]

#: Integer codes for :class:`~repro.jvm.icfg.IEdgeKind` in the adjacency
#: columns (``array('b')`` cells cannot hold enum members).  The order is
#: part of the array layout contract -- see DESIGN.md, "Array decode core".
EDGE_INTRA, EDGE_CALL, EDGE_RETURN, EDGE_THROW = 0, 1, 2, 3

_EDGE_CODE = {
    IEdgeKind.INTRA: EDGE_INTRA,
    IEdgeKind.CALL: EDGE_CALL,
    IEdgeKind.RETURN: EDGE_RETURN,
    IEdgeKind.THROW: EDGE_THROW,
}

#: Inverse of :data:`_EDGE_CODE`, index == code.
EDGE_KINDS = (IEdgeKind.INTRA, IEdgeKind.CALL, IEdgeKind.RETURN, IEdgeKind.THROW)

#: TNT-outcome codes for the transition memo key (``None``/``False``/``True``).
TAKEN_NONE, TAKEN_FALSE, TAKEN_TRUE = 0, 1, 2


def taken_code(taken: Optional[bool]) -> int:
    """Map a TNT outcome to its :data:`TAKEN_NONE`-family code."""
    if taken is None:
        return TAKEN_NONE
    return TAKEN_TRUE if taken else TAKEN_FALSE


class ProgramNFA:
    """The Definition 4.1 NFA over a program's ICFG, with integer states."""

    def __init__(self, icfg: ICFG):
        self.icfg = icfg
        self.nodes: List[Node] = list(icfg.nodes())
        self.state_of: Dict[Node, int] = {
            node: state for state, node in enumerate(self.nodes)
        }
        self.op_of: List[Op] = [icfg.instruction(node).op for node in self.nodes]
        self.kind_of: List[Kind] = [info(op).kind for op in self.op_of]
        self.tier_of: List[int] = [tier(op) for op in self.op_of]
        # Full successor relation (ints), with the ICFG edge kind and the
        # stable :class:`repro.jvm.icfg.IEdge` id kept in parallel (the
        # context-sensitive projector needs the kind; the observability
        # classifier keys its per-edge verdicts by the id).
        self.successors: List[List[int]] = []
        self.successor_kinds: List[List["IEdgeKind"]] = []
        self.successor_edge_ids: List[List[int]] = []
        # For conditionals: (fallthrough_state, taken_state).
        self.cond_arms: List[Optional[Tuple[Optional[int], Optional[int]]]] = []
        for state, node in enumerate(self.nodes):
            succ = []
            kinds = []
            edge_ids = []
            for edge in icfg.out_edges(node):
                if edge.dst in self.state_of:
                    succ.append(self.state_of[edge.dst])
                    kinds.append(edge.kind)
                    edge_ids.append(edge.edge_id)
            self.successors.append(succ)
            self.successor_kinds.append(kinds)
            self.successor_edge_ids.append(edge_ids)
            if self.kind_of[state] is Kind.COND:
                inst = icfg.instruction(node)
                qname = node[0]
                fall = self.state_of.get((qname, node[1] + 1))
                taken = self.state_of.get((qname, inst.target))
                self.cond_arms.append((fall, taken))
            else:
                self.cond_arms.append(None)
        # Symbol index: op -> states carrying that op (candidate starts and
        # transition filtering).
        self.states_by_op: Dict[Op, List[int]] = {}
        for state, op in enumerate(self.op_of):
            self.states_by_op.setdefault(op, []).append(state)
        # Method-entry states by op: the callback-search fallback for call
        # sites the static ICFG could not resolve (Section 4, Discussions).
        self.entry_states_by_op: Dict[Op, List[int]] = {}
        for state, node in enumerate(self.nodes):
            if node[1] == 0:
                self.entry_states_by_op.setdefault(self.op_of[state], []).append(state)
        self._control_closure: Optional[List[Tuple[int, ...]]] = None
        self._build_columns()

    def _build_columns(self) -> None:
        """Flatten the successor relation into integer adjacency columns.

        Layout (CSR): state ``q``'s successors occupy positions
        ``succ_off[q]:succ_off[q+1]`` of the parallel columns
        ``succ_state`` (destination state), ``succ_kind`` (edge-kind code,
        see :data:`EDGE_KINDS`) and ``succ_edge`` (stable ICFG edge id).
        ``cond_fall``/``cond_taken`` carry the two arms of conditional
        states (-1 when absent / not a conditional), ``return_site``
        the ``call_bci + 1`` state pushed on calls (-1 when absent), and
        ``op_code`` the opcode ordinal of each state's instruction.  The
        columns are plain ``array`` objects so a later numpy or
        C-extension backend can adopt the same layout without any API
        change; the object-level ``successors``/``cond_arms`` views built
        above stay authoritative for the legacy matchers.
        """
        count = len(self.nodes)
        self.succ_off = array("q", [0] * (count + 1))
        succ_state = array("q")
        succ_kind = array("b")
        succ_edge = array("q")
        for state in range(count):
            for dst, kind, edge_id in zip(
                self.successors[state],
                self.successor_kinds[state],
                self.successor_edge_ids[state],
            ):
                succ_state.append(dst)
                succ_kind.append(_EDGE_CODE[kind])
                succ_edge.append(edge_id)
            self.succ_off[state + 1] = len(succ_state)
        self.succ_state = succ_state
        self.succ_kind = succ_kind
        self.succ_edge = succ_edge
        self.cond_fall = array("q", [-1] * count)
        self.cond_taken = array("q", [-1] * count)
        for state, arms in enumerate(self.cond_arms):
            if arms is not None:
                fall, taken = arms
                self.cond_fall[state] = -1 if fall is None else fall
                self.cond_taken[state] = -1 if taken is None else taken
        self.return_site = array("q", [-1] * count)
        for state in range(count):
            site = self.return_site_of_call(state)
            if site is not None:
                self.return_site[state] = site
        self.op_code = array("q", [int(op) for op in self.op_of])
        # Transition memo for the columnar projector: (state, taken_code,
        # op_code) -> tuple of (succ, kind_code), in adjacency order --
        # exactly what :meth:`step_edges` would yield, pre-filtered by the
        # wanted symbol.  Filled lazily by the projector; sharing it on
        # the NFA lets every Projector over this program reuse entries.
        self.transition_memo: Dict[Tuple[int, int, int], Tuple[Tuple[int, int], ...]] = {}

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, state: int) -> Node:
        return self.nodes[state]

    def initial_states(self, op: Op) -> List[int]:
        """States whose instruction matches the first observed symbol."""
        return self.states_by_op.get(op, [])

    def step(self, state: int, taken: Optional[bool]) -> Iterable[int]:
        """Successor states after executing ``state``'s instruction.

        *taken* is the TNT outcome of that instruction when it is a
        conditional; it prunes the nondeterminism to the matching arm.
        """
        arms = self.cond_arms[state]
        if arms is not None and taken is not None:
            arm = arms[1] if taken else arms[0]
            return () if arm is None else (arm,)
        return self.successors[state]

    def step_edges(
        self, state: int, taken: Optional[bool]
    ) -> Iterable[Tuple[int, "IEdgeKind"]]:
        """Like :meth:`step`, but with each successor's ICFG edge kind."""
        from ..jvm.icfg import IEdgeKind

        arms = self.cond_arms[state]
        if arms is not None and taken is not None:
            arm = arms[1] if taken else arms[0]
            return () if arm is None else ((arm, IEdgeKind.INTRA),)
        return zip(self.successors[state], self.successor_kinds[state])

    def return_site_of_call(self, call_state: int) -> Optional[int]:
        """The state of ``call_bci + 1`` in the caller (pushed on calls)."""
        qname, bci = self.nodes[call_state]
        return self.state_of.get((qname, bci + 1))

    def transitions(
        self, state: int, tcode: int, opcode: int
    ) -> Tuple[Tuple[int, int], ...]:
        """Memoized integer form of :meth:`step_edges` + symbol filter.

        Returns ``(succ_state, edge_kind_code)`` pairs, in adjacency
        order, for successors of *state* whose instruction's opcode
        ordinal is *opcode*, after pruning conditionals by *tcode* (a
        :data:`TAKEN_NONE`/:data:`TAKEN_FALSE`/:data:`TAKEN_TRUE` code
        for the TNT outcome of *state*'s instruction).  This is the
        columnar projector's inner loop: the memo turns the per-step
        edge scan into one dict hit per (state, outcome, symbol) triple.
        """
        key = (state, tcode, opcode)
        hit = self.transition_memo.get(key)
        if hit is None:
            hit = self._compute_transitions(state, tcode, opcode)
            self.transition_memo[key] = hit
        return hit

    def _compute_transitions(
        self, state: int, tcode: int, opcode: int
    ) -> Tuple[Tuple[int, int], ...]:
        if tcode != TAKEN_NONE and self.cond_arms[state] is not None:
            arm = (
                self.cond_taken[state]
                if tcode == TAKEN_TRUE
                else self.cond_fall[state]
            )
            if arm < 0 or self.op_code[arm] != opcode:
                return ()
            return ((arm, EDGE_INTRA),)
        lo, hi = self.succ_off[state], self.succ_off[state + 1]
        dsts, kinds, codes = self.succ_state, self.succ_kind, self.op_code
        return tuple(
            (dsts[i], kinds[i])
            for i in range(lo, hi)
            if codes[dsts[i]] == opcode
        )

    def is_control(self, state: int) -> bool:
        return self.tier_of[state] <= 2

    # ----------------------------------------------------- abstraction closure
    def control_closure(self) -> List[Tuple[int, ...]]:
        """For each state: control states reachable via non-control states.

        This is the epsilon-closure of the Definition 4.3 ANFA, restricted
        to landing states that carry a (tier <= 2) control symbol: the
        first control instruction that can follow ``state``'s instruction.
        Computed once and cached; straight-line runs make closures small.
        """
        if self._control_closure is not None:
            return self._control_closure
        count = len(self.nodes)
        closure: List[Optional[Tuple[int, ...]]] = [None] * count
        for start in range(count):
            if closure[start] is not None:
                continue
            # Iterative DFS over non-control states.
            result: Set[int] = set()
            seen: Set[int] = set()
            stack = [start]
            while stack:
                current = stack.pop()
                for nxt in self.successors[current]:
                    if self.is_control(nxt):
                        result.add(nxt)
                    elif nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            closure[start] = tuple(sorted(result))
        self._control_closure = closure  # type: ignore[assignment]
        return self._control_closure

    def abstract_step(self, state: int, taken: Optional[bool]) -> Set[int]:
        """ANFA transition: next *control* states after ``state``.

        ``state`` must itself be a control state (abstract sequences only
        contain control symbols).
        """
        closure = self.control_closure()
        result: Set[int] = set()
        for nxt in self.step(state, taken):
            if self.is_control(nxt):
                result.add(nxt)
            else:
                result.update(closure[nxt])
        return result


# --------------------------------------------------------------- generic NFA
@dataclass
class NFA:
    """A small, explicit NFA with epsilon transitions.

    Used to realise Definition 4.3's ANFA and the Figure 5 DFA on
    method-sized automata (tests, teaching examples, ablations).  States
    are integers; symbols are hashable labels; ``EPSILON`` marks epsilon
    transitions.
    """

    EPSILON = None

    state_count: int
    transitions: Dict[int, List[Tuple[object, int]]] = field(default_factory=dict)
    starts: FrozenSet[int] = frozenset()
    accepts: FrozenSet[int] = frozenset()

    def add(self, src: int, symbol: object, dst: int) -> None:
        self.transitions.setdefault(src, []).append((symbol, dst))

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        result = set(states)
        stack = list(result)
        while stack:
            current = stack.pop()
            for symbol, dst in self.transitions.get(current, ()):
                if symbol is self.EPSILON and dst not in result:
                    result.add(dst)
                    stack.append(dst)
        return frozenset(result)

    def move(self, states: Iterable[int], symbol: object) -> FrozenSet[int]:
        result: Set[int] = set()
        for state in states:
            for label, dst in self.transitions.get(state, ()):
                if label == symbol and label is not self.EPSILON:
                    result.add(dst)
        return frozenset(result)

    def accepts_sequence(self, symbols: Iterable[object]) -> bool:
        current = self.epsilon_closure(self.starts)
        for symbol in symbols:
            current = self.epsilon_closure(self.move(current, symbol))
            if not current:
                return False
        return bool(current & self.accepts) if self.accepts else bool(current)

    def alphabet(self) -> Set[object]:
        symbols: Set[object] = set()
        for edges in self.transitions.values():
            for label, _dst in edges:
                if label is not self.EPSILON:
                    symbols.add(label)
        return symbols


@dataclass
class DFA:
    """Deterministic automaton produced by :func:`determinize`.

    States are frozensets of NFA states (the Figure 5(b) presentation).
    """

    start: FrozenSet[int]
    transitions: Dict[FrozenSet[int], Dict[object, FrozenSet[int]]]
    accepts: Set[FrozenSet[int]]

    def accepts_sequence(self, symbols: Iterable[object]) -> bool:
        current = self.start
        for symbol in symbols:
            table = self.transitions.get(current)
            if table is None or symbol not in table:
                return False
            current = table[symbol]
        return current in self.accepts if self.accepts else True

    def state_count(self) -> int:
        return len(self.transitions)


def determinize(nfa: NFA) -> DFA:
    """Subset construction with epsilon-elimination (Figure 5(a) -> (b))."""
    start = nfa.epsilon_closure(nfa.starts)
    transitions: Dict[FrozenSet[int], Dict[object, FrozenSet[int]]] = {}
    accepts: Set[FrozenSet[int]] = set()
    alphabet = nfa.alphabet()
    work = [start]
    while work:
        current = work.pop()
        if current in transitions:
            continue
        table: Dict[object, FrozenSet[int]] = {}
        for symbol in alphabet:
            nxt = nfa.epsilon_closure(nfa.move(current, symbol))
            if nxt:
                table[symbol] = nxt
                if nxt not in transitions:
                    work.append(nxt)
        transitions[current] = table
        if not nfa.accepts or (current & nfa.accepts):
            accepts.add(current)
    return DFA(start=start, transitions=transitions, accepts=accepts)


# ----------------------------------------------------- Definition 4.3 bridge
def method_nfa(icfg: ICFG, qname: str, start_bci: int = 0, model=None) -> NFA:
    """Build the explicit per-method NFA of Figure 4(b).

    States are bcis.  An edge ``src -> dst`` consumes the *source*
    instruction: its label is ``(src_op, arm)`` where ``arm`` is the
    branch direction for conditionals (the figure's ``ifeq 0`` /
    ``ifeq 1``) and ``None`` otherwise.  A decoded sequence
    ``b1, ..., bn`` is matched by starting at ``b1``'s state and consuming
    ``(op_i, taken_i)`` for each instruction -- see
    :func:`repro.core.reconstruct.explicit_symbols`.  Intra-method edges
    only, as in the figure.  An optional frontend *model*
    (:class:`repro.tracesource.projection.ProjectionModel`) reshapes the
    label alphabet the way the analysis layer does -- conditional arms
    merge under a model that hides outcome bits; the default (``None``)
    keeps the concrete ``(op, arm)`` labels the match engine consumes.
    """
    method = icfg.method(qname)
    count = len(method.code)
    nfa = NFA(state_count=count + 1)  # extra sink state for returns
    sink = count
    nfa.starts = frozenset({start_bci})
    nfa.accepts = frozenset(range(count + 1))
    for inst in method.code:
        kind = info(inst.op).kind
        if kind is Kind.COND:
            if model is None or model.observes_conditionals:
                if inst.bci + 1 < count:
                    nfa.add(inst.bci, (inst.op, False), inst.bci + 1)
                nfa.add(inst.bci, (inst.op, True), inst.target)
            else:
                if inst.bci + 1 < count:
                    nfa.add(inst.bci, (inst.op, None), inst.bci + 1)
                nfa.add(inst.bci, (inst.op, None), inst.target)
        elif kind in (Kind.RETURN, Kind.THROW):
            nfa.add(inst.bci, (inst.op, None), sink)
        else:
            for target in inst.successors_within(count):
                nfa.add(inst.bci, (inst.op, None), target)
    return nfa


def abstract_method_nfa(nfa: NFA, is_control) -> NFA:
    """Definition 4.3: replace non-control labels by epsilon.

    *is_control* is a predicate over the ``(op, taken)`` labels.
    """
    abstract = NFA(state_count=nfa.state_count)
    abstract.starts = nfa.starts
    abstract.accepts = nfa.accepts
    for src, edges in nfa.transitions.items():
        for label, dst in edges:
            if label is not NFA.EPSILON and is_control(label):
                abstract.add(src, label, dst)
            else:
                abstract.add(src, NFA.EPSILON, dst)
    return abstract
