"""Persistent static-analysis cache: skip subset construction on reruns.

Building a :class:`~repro.core.pipeline.JPortal` pays a static cost that
depends only on the program: :func:`repro.analysis.report.analyze_program`
determinizes every method's NFA (subset construction, the Figure 5
pipeline) for the ambiguity verdicts, classifies edge observability, and
lints the bytecode.  For repeated analyses of the same program -- the
normal profiling workflow, and every worker of the process-pool backend
-- that work is pure recomputation.  :class:`AnalysisCache` persists the
finished :class:`~repro.analysis.report.AnalysisReport` on disk, keyed by
a digest of the program's full disassembly plus the opaque-call-site set,
so a warm build loads the determinized verdicts instead of rebuilding
them.

Durability follows the archive layer's salvage semantics
(:mod:`repro.pt.archive`): cache damage must never take the pipeline
down.  Entries are written atomically (temp file + ``os.replace``, like
the RPT2 metadata snapshot sidecar) and carry a magic/version header and
a SHA-256 payload checksum; a read that fails *any* gate -- missing
magic, stale format version, truncated payload, checksum mismatch,
unpicklable body -- degrades to a cold build and publishes a
``cache.anomaly.<kind>`` counter, never an exception.  Store failures
degrade the same way (the run simply stays cold).

Key stability: the digest hashes the program's deterministic textual
disassembly, not Python object identities, so any two processes (or
pool workers) analysing the same bytecode share one entry.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import struct
import tempfile
from typing import Dict, Iterable, Optional, Tuple

from ..jvm.disasm import disassemble_program
from ..jvm.model import JProgram

#: Bump on any change to the entry layout *or* to what the pickled
#: report contains; old entries then read as ``stale_version`` and
#: rebuild cold.  v2: reports carry the frontend field and the key
#: hashes the (frontend, projection-model version) pair.
CACHE_VERSION = 2

#: Entry header: magic + little-endian format version.
MAGIC = b"JPDC"
_HEADER = struct.Struct("<4sI32sQ")  # magic, version, sha256, payload length

#: ``cache.anomaly.<kind>`` counter kinds (one per directed failure mode).
ANOMALY_CORRUPT = "corrupt_entry"
ANOMALY_STALE_VERSION = "stale_version"
ANOMALY_TRUNCATED = "truncated_entry"
ANOMALY_STORE_FAILED = "store_failed"

#: Prefix under which cache damage is published (folded into
#: ``anomalies_by_kind`` alongside decode/archive anomalies).
CACHE_METRIC_PREFIX = "cache.anomaly."


def analysis_cache_key(
    program: JProgram,
    opaque_call_sites: Iterable[Tuple[str, int]] = (),
    frontend: str = "pt",
    model_version: Optional[int] = None,
) -> str:
    """Stable digest identifying one (program, opaque-sites, frontend)
    analysis.

    The disassembly covers every method's bytecode and handlers in
    deterministic order, so recompiling an unchanged program hits and
    any bytecode edit misses.  The frontend name and its
    ProjectionModel version are part of the key: observability and
    ambiguity verdicts are per-projection, so a report built under one
    frontend must never be served to another (nor survive a model
    revision).  *model_version* defaults to the registered frontend's
    current version.
    """
    if model_version is None:
        from ..tracesource import get_projection_model

        model_version = get_projection_model(frontend).version
    hasher = hashlib.sha256()
    hasher.update(disassemble_program(program).encode("utf-8"))
    hasher.update(repr(sorted(opaque_call_sites)).encode("utf-8"))
    hasher.update(
        ("frontend:%s/%d" % (frontend, model_version)).encode("utf-8")
    )
    return hasher.hexdigest()


class AnalysisCache:
    """On-disk cache of finished analysis reports, salvage-style.

    All counters accumulate into :attr:`events` (plain name -> count),
    which the pipeline folds into each run's metrics registry --
    ``cache.hits`` / ``cache.misses`` / ``cache.stores`` plus the
    ``cache.anomaly.*`` family.
    """

    def __init__(self, cache_dir: str):
        self.cache_dir = str(cache_dir)
        self.events: Dict[str, int] = {}

    # -------------------------------------------------------------- paths
    def path_for(self, key: str) -> str:
        return os.path.join(self.cache_dir, "analysis-%s.jpdc" % key)

    # --------------------------------------------------------------- read
    def load(self, key: str):
        """The cached report for *key*, or ``None`` (cold build needed).

        Never raises: every damage class is counted under its
        ``cache.anomaly.<kind>`` name and reads as a miss.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            self._count("cache.misses")
            return None
        if len(blob) < _HEADER.size:
            return self._damaged(ANOMALY_TRUNCATED)
        magic, version, digest, length = _HEADER.unpack_from(blob)
        if magic != MAGIC:
            return self._damaged(ANOMALY_CORRUPT)
        if version != CACHE_VERSION:
            return self._damaged(ANOMALY_STALE_VERSION)
        payload = blob[_HEADER.size:]
        if len(payload) != length:
            return self._damaged(ANOMALY_TRUNCATED)
        if hashlib.sha256(payload).digest() != digest:
            return self._damaged(ANOMALY_CORRUPT)
        try:
            report = pickle.loads(payload)
        except Exception:
            return self._damaged(ANOMALY_CORRUPT)
        self._count("cache.hits")
        return report

    # -------------------------------------------------------------- write
    def store(self, key: str, report) -> bool:
        """Persist *report* atomically; ``False`` (plus a counter) on any
        failure -- a cache that cannot write just stays cold."""
        try:
            payload = self._serialize(report)
            os.makedirs(self.cache_dir, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                prefix=".analysis-", suffix=".tmp", dir=self.cache_dir
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp_path, self.path_for(key))
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except Exception:
            self._count(CACHE_METRIC_PREFIX + ANOMALY_STORE_FAILED)
            return False
        self._count("cache.stores")
        return True

    # ---------------------------------------------------------- internals
    @staticmethod
    def _serialize(report) -> bytes:
        body = io.BytesIO()
        pickle.dump(report, body, protocol=pickle.HIGHEST_PROTOCOL)
        payload = body.getvalue()
        digest = hashlib.sha256(payload).digest()
        return _HEADER.pack(MAGIC, CACHE_VERSION, digest, len(payload)) + payload

    def _damaged(self, kind: str):
        self._count(CACHE_METRIC_PREFIX + kind)
        self._count("cache.misses")
        return None

    def _count(self, name: str, value: int = 1) -> None:
        self.events[name] = self.events.get(name, 0) + value
