"""JPortal core: metadata, decoding, NFA reconstruction, recovery, pipeline."""

from .abstraction import (
    TIER_CALL,
    TIER_CONCRETE,
    TIER_CONTROL,
    abstract_ops,
    abstract_sequence,
    common_suffix_length,
)
from .degradation import (
    ANOMALY_METRIC_PREFIX,
    ARCHIVE_METRIC_PREFIX,
    CACHE_METRIC_PREFIX,
    DEFAULT_POLICY,
    AnomalyKind,
    DegradationPolicy,
    anomaly_breakdown,
    metric_name,
)
from .dfacache import AnalysisCache, analysis_cache_key
from .metadata import CodeDatabase, CodeDump, collect_metadata
from .metrics import MetricsRegistry
from .multicore import ThreadTrace, split_by_thread
from .nfa import DFA, NFA, ProgramNFA, abstract_method_nfa, determinize, method_nfa
from .observed import ObservedColumns, ObservedHole, ObservedStep, ObservedTrace
from .parallel import ParallelPipeline, ideal_makespan
from .pipeline import (
    JPortal,
    JPortalResult,
    ParallelismReport,
    PhaseTimings,
    ThreadFlow,
    ThreadPhaseTimings,
)
from .reconstruct import (
    MatchStats,
    Projection,
    Projector,
    abstraction_guided,
    enumerate_and_test,
    match_from,
)
from .recovery import (
    RecoveredFlow,
    RecoveryConfig,
    RecoveryEngine,
    RecoveryStats,
    basic_search,
)

__all__ = [
    "TIER_CALL",
    "TIER_CONCRETE",
    "TIER_CONTROL",
    "abstract_ops",
    "abstract_sequence",
    "common_suffix_length",
    "ANOMALY_METRIC_PREFIX",
    "ARCHIVE_METRIC_PREFIX",
    "CACHE_METRIC_PREFIX",
    "DEFAULT_POLICY",
    "AnomalyKind",
    "DegradationPolicy",
    "anomaly_breakdown",
    "metric_name",
    "AnalysisCache",
    "analysis_cache_key",
    "CodeDatabase",
    "CodeDump",
    "collect_metadata",
    "MetricsRegistry",
    "ParallelPipeline",
    "ideal_makespan",
    "ThreadTrace",
    "split_by_thread",
    "DFA",
    "NFA",
    "ProgramNFA",
    "abstract_method_nfa",
    "determinize",
    "method_nfa",
    "ObservedColumns",
    "ObservedHole",
    "ObservedStep",
    "ObservedTrace",
    "JPortal",
    "JPortalResult",
    "ParallelismReport",
    "PhaseTimings",
    "ThreadFlow",
    "ThreadPhaseTimings",
    "MatchStats",
    "Projection",
    "Projector",
    "abstraction_guided",
    "enumerate_and_test",
    "match_from",
    "RecoveredFlow",
    "RecoveryConfig",
    "RecoveryEngine",
    "RecoveryStats",
    "basic_search",
]
