"""The observed bytecode-level trace: what decoding yields before projection.

Decoding (Section 3) turns a hardware trace into a sequence of *observed*
bytecode instructions.  Crucially, the two execution modes reveal
different amounts of information:

* **interpreted** code reveals which template ran -- the opcode (plus the
  TNT outcome for conditionals) but *not* the bytecode position;
* **JITed** code reveals the exact ``(method, bci)`` via debug info.

Both become :class:`ObservedStep`; data-loss holes become
:class:`ObservedHole`.  Reconstruction (Section 4) then projects observed
steps onto the ICFG, using JIT-known locations as anchors, and recovery
(Section 5) fills the holes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..jvm.opcodes import Op


@dataclass
class ObservedStep:
    """One observed executed bytecode instruction.

    Attributes:
        symbol: The opcode observed (template identity / machine semantics).
        taken: Conditional outcome, when known (TNT bit).
        location: ``(method_qname, bci)`` when known (JIT debug info),
            ``None`` for interpreted steps.
        source: ``"interp"`` or ``"jit"``.
        tsc: Timestamp.
    """

    symbol: Op
    taken: Optional[bool]
    location: Optional[Tuple[str, int]]
    source: str
    tsc: int


@dataclass
class ObservedHole:
    """A data-loss hole between observed steps (the paper's diamond).

    ``synthetic=True`` marks a hole declared by the decoder's error
    budget (no bytes physically lost; the span was untrustworthy) --
    recovery treats it exactly like an overflow hole.
    """

    start_tsc: int
    end_tsc: int
    bytes_lost: int = 0
    synthetic: bool = False

    @property
    def duration(self) -> int:
        return max(0, self.end_tsc - self.start_tsc)


ObservedItem = Union[ObservedStep, ObservedHole]


@dataclass
class ObservedTrace:
    """One thread's observed trace: steps interleaved with holes."""

    tid: int
    items: List[ObservedItem] = field(default_factory=list)
    anomalies: int = 0

    def steps(self) -> List[ObservedStep]:
        return [item for item in self.items if isinstance(item, ObservedStep)]

    def holes(self) -> List[ObservedHole]:
        return [item for item in self.items if isinstance(item, ObservedHole)]

    def segments(self) -> List[List[ObservedStep]]:
        """Maximal hole-free runs of steps, in order (may include empties
        collapsed away)."""
        result: List[List[ObservedStep]] = []
        current: List[ObservedStep] = []
        for item in self.items:
            if isinstance(item, ObservedStep):
                current.append(item)
            else:
                if current:
                    result.append(current)
                current = []
        if current:
            result.append(current)
        return result
