"""The observed bytecode-level trace: what decoding yields before projection.

Decoding (Section 3) turns a hardware trace into a sequence of *observed*
bytecode instructions.  Crucially, the two execution modes reveal
different amounts of information:

* **interpreted** code reveals which template ran -- the opcode (plus the
  TNT outcome for conditionals) but *not* the bytecode position;
* **JITed** code reveals the exact ``(method, bci)`` via debug info.

Both become :class:`ObservedStep`; data-loss holes become
:class:`ObservedHole`.  Reconstruction (Section 4) then projects observed
steps onto the ICFG, using JIT-known locations as anchors, and recovery
(Section 5) fills the holes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..jvm.opcodes import Op


@dataclass(slots=True)
class ObservedStep:
    """One observed executed bytecode instruction.

    Attributes:
        symbol: The opcode observed (template identity / machine semantics).
        taken: Conditional outcome, when known (TNT bit).
        location: ``(method_qname, bci)`` when known (JIT debug info),
            ``None`` for interpreted steps.
        source: ``"interp"`` or ``"jit"``.
        tsc: Timestamp.
    """

    symbol: Op
    taken: Optional[bool]
    location: Optional[Tuple[str, int]]
    source: str
    tsc: int


@dataclass(slots=True)
class ObservedHole:
    """A data-loss hole between observed steps (the paper's diamond).

    ``synthetic=True`` marks a hole declared by the decoder's error
    budget (no bytes physically lost; the span was untrustworthy) --
    recovery treats it exactly like an overflow hole.
    """

    start_tsc: int
    end_tsc: int
    bytes_lost: int = 0
    synthetic: bool = False

    @property
    def duration(self) -> int:
        return max(0, self.end_tsc - self.start_tsc)


ObservedItem = Union[ObservedStep, ObservedHole]


class ObservedColumns:
    """Columnar observed trace: the array decode core's native output.

    The decode->project hot path never needs one object per observed
    step; it needs the step *columns*.  ``symbols``/``takens``/
    ``locations``/``sources``/``tscs`` are parallel lists (position ``i``
    across all five is step ``i``), holes are kept out-of-band as
    ``(position, hole)`` pairs where ``position`` is the number of steps
    emitted before the hole, and anomalies are a count (matching what
    :class:`ObservedTrace` retains after lifting).

    The class is duck-type compatible with :class:`ObservedTrace` --
    ``tid``, ``anomalies``, ``items``, :meth:`steps`, :meth:`holes`,
    :meth:`segments` all work -- so everything downstream of the pipeline
    (benchmarks, profiling clients, tests) reads it unchanged.  ``items``
    materialises real :class:`ObservedStep` objects lazily, exactly once:
    the object view is a compatibility layer, paid for only when asked
    for, never inside the timed decode phase.
    """

    __slots__ = (
        "tid",
        "symbols",
        "takens",
        "locations",
        "sources",
        "tscs",
        "hole_positions",
        "_holes",
        "anomalies",
        "_items",
    )

    def __init__(self, tid: int):
        self.tid = tid
        self.symbols: List[Op] = []
        self.takens: List[Optional[bool]] = []
        self.locations: List[Optional[Tuple[str, int]]] = []
        self.sources: List[str] = []
        self.tscs: List[int] = []
        self.hole_positions: List[int] = []
        self._holes: List[ObservedHole] = []
        self.anomalies = 0
        self._items: Optional[List[ObservedItem]] = None

    # ------------------------------------------------------------- emission
    def add_hole(
        self, start_tsc: int, end_tsc: int, bytes_lost: int, synthetic: bool
    ) -> None:
        """Record a hole after the steps emitted so far (decoder callback)."""
        self.hole_positions.append(len(self.symbols))
        self._holes.append(
            ObservedHole(
                start_tsc=start_tsc,
                end_tsc=end_tsc,
                bytes_lost=bytes_lost,
                synthetic=synthetic,
            )
        )
        self._items = None

    def step_count(self) -> int:
        return len(self.symbols)

    def segment_ranges(self) -> List[Tuple[int, int]]:
        """Maximal hole-free ``[lo, hi)`` column ranges (empties dropped),
        mirroring :meth:`ObservedTrace.segments`."""
        result: List[Tuple[int, int]] = []
        previous = 0
        for position in self.hole_positions:
            if position > previous:
                result.append((previous, position))
            previous = position
        count = len(self.symbols)
        if count > previous:
            result.append((previous, count))
        return result

    # ------------------------------------------- ObservedTrace compatibility
    @property
    def items(self) -> List[ObservedItem]:
        cached = self._items
        if cached is None:
            cached = []
            hole_at = 0
            positions = self.hole_positions
            holes = self._holes
            hole_count = len(holes)
            for index in range(len(self.symbols)):
                while hole_at < hole_count and positions[hole_at] <= index:
                    cached.append(holes[hole_at])
                    hole_at += 1
                cached.append(
                    ObservedStep(
                        self.symbols[index],
                        self.takens[index],
                        self.locations[index],
                        self.sources[index],
                        self.tscs[index],
                    )
                )
            while hole_at < hole_count:
                cached.append(holes[hole_at])
                hole_at += 1
            self._items = cached
        return cached

    def steps(self) -> List[ObservedStep]:
        return [item for item in self.items if isinstance(item, ObservedStep)]

    def holes(self) -> List[ObservedHole]:
        return list(self._holes)

    def segments(self) -> List[List[ObservedStep]]:
        items = self.items
        result: List[List[ObservedStep]] = []
        current: List[ObservedStep] = []
        for item in items:
            if isinstance(item, ObservedStep):
                current.append(item)
            else:
                if current:
                    result.append(current)
                current = []
        if current:
            result.append(current)
        return result

    def to_trace(self) -> ObservedTrace:
        """An eager :class:`ObservedTrace` copy (equivalence tests)."""
        return ObservedTrace(
            tid=self.tid, items=list(self.items), anomalies=self.anomalies
        )

    def __eq__(self, other) -> bool:
        """Value equality over the observed content (mirrors the
        dataclass equality of :class:`ObservedTrace`, which the
        serial/parallel bit-identity tests compare through).

        Also compares equal to an :class:`ObservedTrace` with the same
        content: Python tries ``ObservedTrace.__eq__`` first (returns
        ``NotImplemented`` across classes) and then reflects here, so
        cross-engine flow comparisons (object core vs array core) work
        with plain ``==``."""
        if isinstance(other, ObservedTrace):
            return (
                self.tid == other.tid
                and self.anomalies == other.anomalies
                and self.items == other.items
            )
        if not isinstance(other, ObservedColumns):
            return NotImplemented
        return (
            self.tid == other.tid
            and self.anomalies == other.anomalies
            and self.symbols == other.symbols
            and self.takens == other.takens
            and self.locations == other.locations
            and self.sources == other.sources
            and self.tscs == other.tscs
            and self.hole_positions == other.hole_positions
            and self._holes == other._holes
        )

    __hash__ = None  # mutable container, like the dataclass traces


@dataclass
class ObservedTrace:
    """One thread's observed trace: steps interleaved with holes."""

    tid: int
    items: List[ObservedItem] = field(default_factory=list)
    anomalies: int = 0

    def steps(self) -> List[ObservedStep]:
        return [item for item in self.items if isinstance(item, ObservedStep)]

    def holes(self) -> List[ObservedHole]:
        return [item for item in self.items if isinstance(item, ObservedHole)]

    def segments(self) -> List[List[ObservedStep]]:
        """Maximal hole-free runs of steps, in order (may include empties
        collapsed away)."""
        result: List[List[ObservedStep]] = []
        current: List[ObservedStep] = []
        for item in self.items:
            if isinstance(item, ObservedStep):
                current.append(item)
            else:
                if current:
                    result.append(current)
                current = []
        if current:
            result.append(current)
        return result
