"""Fused decode+lift support for the array decode core.

:class:`repro.pt.decoder.PTBatchDecoder` walks compiled code
block-at-a-time through :meth:`repro.core.metadata.CodeDatabase.walk_block`
and needs each block's *lifted* form -- the observed-step columns its
addresses contribute (paper Section 3.2 semantics: innermost debug frame,
skip synthetic instructions and negative bcis, count stale records).
:class:`JitLifter` supplies that as a cached :class:`BlockTemplate` per
block, turning the per-address ``debug_frames_at`` + method-resolution
work of :func:`repro.core.jit_decoder.lift_span` into tuple concatenations
after the first traversal.

Cache safety: a block only exists when every address in it has exactly
one exported candidate dump (see ``walk_block``), which makes both the
debug lookup and the bytecode resolution independent of the timestamp --
one template is valid for every traversal.  Epoch-dependent addresses
never reach :meth:`JitLifter.block_template`; the decoder resolves them
through :meth:`JitLifter.lift_one` with the real span timestamp.

A lifter instance is stateless across decodes (templates and the
location-resolution memo are pure caches), so one instance is shared by
every thread chain analysing the same (program, database) pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..jvm.model import JProgram
from ..pt.decoder import LIFT_STALE
from .metadata import CodeDatabase, WalkBlock

#: Memo value for a location whose bytecode no longer resolves.
_STALE: Optional[object] = None


class BlockTemplate:
    """The lifted columns of one :class:`~repro.core.metadata.WalkBlock`.

    ``ops``/``locs`` are the step columns the whole block contributes
    (parallel tuples), with ``nones``/``jits`` the matching constant
    columns (``taken=None``, ``source="jit"``) pre-sized for one
    ``list += tuple`` emission each.  The ``body_*`` family excludes the
    *last* address's contribution -- what a TNT-starved walk emits before
    suspending at the block's conditional.  ``stale``/``body_stale``
    count debug records that no longer resolve (re-counted on every
    traversal, like the object lifter).
    """

    __slots__ = (
        "ops",
        "locs",
        "nones",
        "jits",
        "count",
        "stale",
        "body_ops",
        "body_locs",
        "body_nones",
        "body_jits",
        "body_count",
        "body_stale",
    )

    def __init__(
        self,
        ops: Tuple[object, ...],
        locs: Tuple[Tuple[str, int], ...],
        stale: int,
        body_count: int,
        body_stale: int,
    ):
        self.ops = ops
        self.locs = locs
        self.count = len(ops)
        self.nones = (None,) * self.count
        self.jits = ("jit",) * self.count
        self.stale = stale
        self.body_ops = ops[:body_count]
        self.body_locs = locs[:body_count]
        self.body_nones = (None,) * body_count
        self.body_jits = ("jit",) * body_count
        self.body_count = body_count
        self.body_stale = body_stale


class JitLifter:
    """Per-(program, database) cache of block lift templates."""

    def __init__(self, database: CodeDatabase, program: JProgram):
        self.database = database
        self.program = program
        self._templates: Dict[int, BlockTemplate] = {}
        # (qname, bci) -> Op, or None when the record is stale (the
        # method no longer resolves / the bci runs off the bytecode).
        self._location_ops: Dict[Tuple[str, int], Optional[object]] = {}

    # ------------------------------------------------------------ block path
    def block_template(self, block: WalkBlock) -> BlockTemplate:
        template = self._templates.get(block.bid)
        if template is None:
            template = self._build(block)
            self._templates[block.bid] = template
        return template

    def _build(self, block: WalkBlock) -> BlockTemplate:
        ops: List[object] = []
        locs: List[Tuple[str, int]] = []
        stale = 0
        body_count = 0
        body_stale = 0
        addresses = block.addresses
        last = len(addresses) - 1
        debug_frames_at = self.database.debug_frames_at
        resolve = self._resolve
        for index, address in enumerate(addresses):
            if index == last:
                body_count = len(ops)
                body_stale = stale
            frames = debug_frames_at(address, None)
            if not frames:
                continue  # synthetic instruction: no debug record
            location = frames[-1]
            if location[1] < 0:
                continue  # prologue/epilogue marker
            op = resolve(location)
            if op is None:
                stale += 1
                continue
            ops.append(op)
            locs.append(location)
        return BlockTemplate(tuple(ops), tuple(locs), stale, body_count, body_stale)

    # ----------------------------------------------------- per-address path
    def lift_one(self, address: int, tsc: int):
        """Lift a single epoch-dependent address at *tsc*.

        Returns ``(op, location)``, ``None`` for a silent (synthetic /
        negative-bci) address, or :data:`~repro.pt.decoder.LIFT_STALE`
        for a record that no longer resolves.
        """
        frames = self.database.debug_frames_at(address, tsc)
        if not frames:
            return None
        location = frames[-1]
        if location[1] < 0:
            return None
        op = self._resolve(location)
        if op is None:
            return LIFT_STALE
        return (op, location)

    def _resolve(self, location: Tuple[str, int]) -> Optional[object]:
        memo = self._location_ops
        if location in memo:
            return memo[location]
        qname, bci = location
        try:
            class_name, method_name = qname.rsplit(".", 1)
            op = self.program.method(class_name, method_name).code[bci].op
        except Exception:
            op = _STALE
        memo[location] = op
        return op
