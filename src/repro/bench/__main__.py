"""CLI for the perf trajectory: ``python -m repro.bench [options]``.

Default invocation runs the full Table 5 matrix plus the archive
overhead benchmark on the array engine and merges the entry into
``BENCH_<today>.json`` under the label ``post``.  The committed baseline
pair is produced with::

    python -m repro.bench --engine object --label pre
    python -m repro.bench --engine array  --label post

and CI's perf-smoke gate with::

    python -m repro.bench --subjects avrora,h2,luindex --skip-archive \\
        --label ci-smoke --out /tmp/bench_ci.json \\
        --check-against BENCH_<date>.json
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    SMOKE_SUBJECTS,
    check_regression,
    merge_into,
    run_advisor_accuracy,
    run_archive_overhead,
    run_cross_format,
    run_id,
    run_resilience,
    run_stream_lag,
    run_table5,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument(
        "--engine", choices=("array", "object"), default="array",
        help="decode core to benchmark (default: array)",
    )
    parser.add_argument(
        "--label", default="post",
        help="run label inside the bench file (default: post)",
    )
    parser.add_argument(
        "--out", default=None,
        help="bench file path (default: BENCH_<today>.json)",
    )
    parser.add_argument(
        "--subjects", default=None,
        help="comma-separated subject subset (default: all); "
             "'smoke' selects the CI matrix %s" % (SMOKE_SUBJECTS,),
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent analysis cache directory (default: off)",
    )
    parser.add_argument(
        "--skip-archive", action="store_true",
        help="skip the archive-overhead benchmark",
    )
    parser.add_argument(
        "--skip-stream", action="store_true",
        help="skip the streaming-lag benchmark",
    )
    parser.add_argument(
        "--skip-resilience", action="store_true",
        help="skip the checkpoint/recovery resilience benchmark",
    )
    parser.add_argument(
        "--skip-etrace", action="store_true",
        help="skip the PT-vs-E-Trace cross-format benchmark",
    )
    parser.add_argument(
        "--skip-advisor", action="store_true",
        help="skip the advisor prediction-accuracy benchmark "
             "(implied by --skip-etrace: it reuses the cross-format run)",
    )
    parser.add_argument(
        "--check-against", default=None, metavar="BENCH_JSON",
        help="compare decode throughput against this committed bench file "
             "and exit 1 on a regression beyond --tolerance",
    )
    parser.add_argument(
        "--check-run", default="post",
        help="label inside --check-against to compare to (default: post)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="fractional regression tolerance for --check-against "
             "(default: 0.20)",
    )
    args = parser.parse_args(argv)

    subjects = None
    if args.subjects == "smoke":
        subjects = SMOKE_SUBJECTS
    elif args.subjects:
        subjects = tuple(name.strip() for name in args.subjects.split(","))

    out = args.out or ("BENCH_%s.json" % time.strftime("%Y-%m-%d"))

    entry = dict(run_id())
    entry["engine"] = args.engine
    print("bench: engine=%s subjects=%s" % (args.engine, subjects or "all"))
    entry["table5"] = run_table5(
        engine=args.engine, subjects=subjects, cache_dir=args.cache_dir
    )
    totals = entry["table5"]["totals"]
    print(
        "bench: decode %.3fs over %d bytes -> %.1f KB/s (decode), %.1f KB/s (DT)"
        % (
            totals["decode_s"],
            totals["pt_bytes"],
            totals["decode_throughput_kbs"],
            totals["dt_throughput_kbs"],
        )
    )
    if not args.skip_archive:
        entry["archive"] = run_archive_overhead()
        print(
            "bench: archive framing %.1f%% / write %.1f KB/s / read %.1f KB/s"
            % (
                100.0 * entry["archive"]["framing_overhead"],
                entry["archive"]["write_throughput_kbs"],
                entry["archive"]["read_throughput_kbs"],
            )
        )
    if not args.skip_stream:
        entry["stream"] = run_stream_lag()
        print(
            "bench: stream poll %.2fms mean / %.2fms max, lag <= %d segments,"
            " finalize %.3fs (batch %.3fs)"
            % (
                1e3 * entry["stream"]["poll_latency_mean_s"],
                1e3 * entry["stream"]["poll_latency_max_s"],
                entry["stream"]["max_lag_segments"],
                entry["stream"]["finalize_s"],
                entry["stream"]["batch_s"],
            )
        )
    if not args.skip_resilience:
        entry["resilience"] = run_resilience()
        print(
            "bench: resilience checkpoint %.2fms mean write (%d bytes, %.1f%%"
            " of poll time), recovery %.3fs vs cold replay %.3fs (%.2fx)"
            % (
                1e3 * entry["resilience"]["checkpoint_write_mean_s"],
                entry["resilience"]["checkpoint_bytes"],
                100.0 * entry["resilience"]["checkpoint_overhead_fraction"],
                entry["resilience"]["recovery_s"],
                entry["resilience"]["cold_replay_s"],
                entry["resilience"]["recovery_speedup"],
            )
        )
    if not args.skip_etrace:
        entry["cross_format"] = run_cross_format()
        formats = entry["cross_format"]["formats"]
        print(
            "bench: cross-format pt %.2f B/branch vs etrace %.2f B/branch"
            " (ratio %.2fx), lossy loss %.1f%% vs %.1f%%"
            % (
                formats["pt"]["bytes_per_branch"],
                formats["etrace"]["bytes_per_branch"],
                entry["cross_format"]["compression_ratio"],
                100.0 * formats["pt"]["lossy_loss_fraction"],
                100.0 * formats["etrace"]["lossy_loss_fraction"],
            )
        )
        if not args.skip_advisor:
            entry["advisor_accuracy"] = run_advisor_accuracy(
                cross_format=entry["cross_format"]
            )
            accuracy = entry["advisor_accuracy"]
            errors = [
                row["relative_error"]
                for row in accuracy["frontends"].values()
                if row["relative_error"] is not None
            ]
            print(
                "bench: advisor recommends %s (measured best %s),"
                " max relative error %.3f, sound=%s"
                % (
                    accuracy["recommended"],
                    accuracy["measured_best"],
                    max(errors) if errors else 0.0,
                    accuracy["sound"],
                )
            )
    merge_into(out, args.label, entry)
    print("bench: wrote %r run to %s" % (args.label, out))

    if args.check_against:
        ok, messages = check_regression(
            entry,
            args.check_against,
            against=args.check_run,
            tolerance=args.tolerance,
            subjects=subjects,
        )
        for message in messages:
            print("bench:", message)
        if not ok:
            print("bench: FAIL decode throughput regression")
            return 1
        print("bench: OK within %.0f%% of baseline" % (args.tolerance * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
