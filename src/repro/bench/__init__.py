"""Machine-readable performance trajectory (``python -m repro.bench``).

The pytest benchmarks under ``benchmarks/`` assert *shapes*; this module
records *numbers*.  One invocation runs the Table 5 decode/recovery
measurement (every DaCapo-style subject, the same ``BUFFER_128``
calibration the pytest suite uses) plus the archive-overhead benchmark,
and merges the result -- tagged with a host/timestamp run id and the
decode engine -- into a ``BENCH_<date>.json`` file.  Committing that
file per PR gives the repo a perf trajectory that survives host changes
(every entry names its host) and makes regressions diffable.

The committed baseline pair for the array-core PR:

* ``pre``  -- ``--engine object``: the original per-item decode core;
* ``post`` -- ``--engine array``: the fused columnar core.

CI's ``perf-smoke`` job reruns a reduced subject matrix and calls
:func:`check_regression` against the committed ``post`` entry, failing
on a >20% decode-throughput drop (see ``--check-against``).
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
from typing import Dict, Iterable, List, Optional, Tuple

from ..core import JPortal
from ..core.metadata import collect_metadata
from ..core.recovery import RecoveryConfig
from ..pt.buffer import RingBufferConfig
from ..pt.encoder import PTEncoder
from ..pt.perf import PTConfig, calibrate_drain_period, collect
from ..workloads import SUBJECT_NAMES, build_subject, default_config

#: The "128 MB" equivalent in scaled bytes (same as benchmarks/conftest).
BUFFER_128 = 2048

#: Reduced matrix for the CI perf-smoke job: the biggest interpreter-heavy
#: subject, the most multi-threaded one, and the highest-throughput one.
SMOKE_SUBJECTS = ("avrora", "h2", "luindex")


# --------------------------------------------------------------------- runs
def run_id() -> Dict[str, str]:
    """Host/timestamp identity stamped onto every bench entry."""
    identity = {
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    try:
        identity["commit"] = (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=10,
                cwd=os.path.dirname(os.path.abspath(__file__)),
            ).stdout.strip()
            or "unknown"
        )
    except Exception:
        identity["commit"] = "unknown"
    return identity


def _subject_setup(name: str):
    subject = build_subject(name)
    run = subject.run(default_config())
    drain_period = calibrate_drain_period(run, BUFFER_128)
    config = PTConfig(
        buffer=RingBufferConfig(
            capacity_bytes=BUFFER_128, drain_period=drain_period
        )
    )
    return subject, run, config


def run_table5(
    engine: str = "array",
    subjects: Optional[Iterable[str]] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, object]:
    """The Table 5 measurement: per-subject phase timings + totals."""
    rows: Dict[str, Dict[str, float]] = {}
    for name in subjects or SUBJECT_NAMES:
        subject, run, config = _subject_setup(name)
        pt_bytes = sum(
            sum(p.size for p in PTEncoder().encode(events))
            for events in run.core_events
        )
        jportal = JPortal(
            subject.program,
            recovery=RecoveryConfig(
                cost_per_instruction=run.config.compiled_step_cost
            ),
            engine=engine,
            cache_dir=cache_dir,
        )
        trace = collect(run, config)
        database = collect_metadata(run)
        result = jportal.analyze_trace(trace, database)
        timings = result.timings
        rows[name] = {
            "pt_bytes": pt_bytes,
            "decode_s": timings.decode_seconds,
            "reconstruct_s": timings.reconstruct_seconds,
            "recovery_s": timings.recovery_seconds,
            "analysis_s": timings.analysis_seconds,
            "wall_s": timings.wall_seconds,
            "entries": result.total_entries(),
            "anomalies": result.anomalies,
            "loss_fraction": result.loss_fraction,
            "threads": len(timings.per_thread),
        }
    return {"rows": rows, "totals": _totals(rows)}


def _totals(rows: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    total = lambda key: sum(row[key] for row in rows.values())  # noqa: E731
    pt_bytes = total("pt_bytes")
    decode = total("decode_s")
    dt = decode + total("reconstruct_s")
    return {
        "pt_bytes": pt_bytes,
        "decode_s": decode,
        "reconstruct_s": total("reconstruct_s"),
        "recovery_s": total("recovery_s"),
        "decode_throughput_kbs": (pt_bytes / decode / 1024.0) if decode else 0.0,
        "dt_throughput_kbs": (pt_bytes / dt / 1024.0) if dt else 0.0,
    }


def run_archive_overhead(subject_name: str = "sunflow") -> Dict[str, object]:
    """The archive-overhead measurement: framing cost + IO throughput."""
    import tempfile

    from ..pt.archive import merge_core_stream, read_archive, write_archive
    from ..pt.serialize import dump_bytes

    subject, run, _config = _subject_setup(subject_name)
    lossless = PTConfig(
        buffer=RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1e9)
    )
    trace = collect(run, lossless)
    database = collect_metadata(run)
    flat_bytes = sum(
        len(dump_bytes(merge_core_stream(core.packets, core.losses)))
        for core in trace.cores
    )
    results: Dict[str, object] = {"subject": subject_name, "flat_bytes": flat_bytes}
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.rpt2")
        started = time.perf_counter()
        write_archive(trace, database, path, segment_packets=256)
        write_seconds = time.perf_counter() - started
        archive_bytes = os.path.getsize(path)
        started = time.perf_counter()
        read_archive(path)
        read_seconds = time.perf_counter() - started
    results.update(
        archive_bytes=archive_bytes,
        framing_overhead=archive_bytes / flat_bytes - 1.0 if flat_bytes else 0.0,
        write_s=write_seconds,
        read_s=read_seconds,
        write_throughput_kbs=archive_bytes / write_seconds / 1024.0,
        read_throughput_kbs=archive_bytes / read_seconds / 1024.0,
    )
    return results


def run_stream_lag(subject_name: str = "luindex") -> Dict[str, object]:
    """The streaming-lag measurement: delta latency and segment lag of
    the incremental decoder following a live writer, plus the cost of
    the sealed-tail ``finalize`` relative to a one-shot batch decode."""
    import tempfile

    from ..pt.archive import (
        ArchiveWriter,
        iter_archive_events,
        write_archive_event,
    )
    from ..stream import StreamDecoder

    subject, run, _config = _subject_setup(subject_name)
    lossless = PTConfig(
        buffer=RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1e9)
    )
    trace = collect(run, lossless)
    database = collect_metadata(run)
    jportal = JPortal(
        subject.program,
        recovery=RecoveryConfig(
            cost_per_instruction=run.config.compiled_step_cost
        ),
        engine="array",
    )
    latencies: List[float] = []
    max_lag = 0
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.rpt2")
        writer = ArchiveWriter(path)
        writer.snapshot_metadata(database, include_dumps=False)
        tenant = StreamDecoder(jportal, path, name="bench")
        events = list(iter_archive_events(trace, database, 256))
        started = time.perf_counter()
        for index, event in enumerate(events):
            write_archive_event(writer, event)
            if index % 4 == 3:
                delta = tenant.poll()
                latencies.append(delta.latency_seconds)
                max_lag = max(max_lag, delta.lag_segments)
        writer.close()
        delta = tenant.poll()
        latencies.append(delta.latency_seconds)
        max_lag = max(max_lag, delta.lag_segments)
        stream_wall = time.perf_counter() - started
        started = time.perf_counter()
        result = tenant.finalize()
        finalize_seconds = time.perf_counter() - started
        started = time.perf_counter()
        batch = jportal.analyze_archive(path)
        batch_seconds = time.perf_counter() - started
        if result.total_entries() != batch.total_entries():
            raise AssertionError(
                "stream/batch divergence: %d != %d"
                % (result.total_entries(), batch.total_entries())
            )
    return {
        "subject": subject_name,
        "records": len(events) + 1,
        "entries": result.total_entries(),
        "replayed": tenant.replayed,
        "poll_latency_mean_s": sum(latencies) / len(latencies),
        "poll_latency_max_s": max(latencies),
        "max_lag_segments": max_lag,
        "stream_wall_s": stream_wall,
        "finalize_s": finalize_seconds,
        "batch_s": batch_seconds,
    }


def run_resilience(subject_name: str = "luindex") -> Dict[str, object]:
    """The resilience measurement: what a ``JPSC`` checkpoint costs per
    poll and what it buys after a crash.

    Streams a run into a growing archive while checkpointing on every
    poll (the worst-case ``checkpoint_interval=1`` write amplification),
    snapshots the sidecar once the reader has consumed roughly half the
    archive, then compares two restarts against the sealed file: a
    *recovery* that restores from the half-way checkpoint and drains the
    remaining tail, and a *cold replay* that re-reads from offset zero.
    Both must finalize bit-identical to the uninterrupted stream, and
    the restore must be clean (no finalize replay) -- the ratio between
    the two restart times is the checkpoint's payoff.
    """
    import shutil
    import tempfile

    from ..pt.archive import (
        ArchiveWriter,
        iter_archive_events,
        write_archive_event,
    )
    from ..stream import StreamDecoder, checkpoint_path_for

    subject, run, _config = _subject_setup(subject_name)
    lossless = PTConfig(
        buffer=RingBufferConfig(capacity_bytes=10**9, drain_bandwidth=1e9)
    )
    trace = collect(run, lossless)
    database = collect_metadata(run)
    jportal = JPortal(
        subject.program,
        recovery=RecoveryConfig(
            cost_per_instruction=run.config.compiled_step_cost
        ),
        engine="array",
    )
    poll_times: List[float] = []
    checkpoint_times: List[float] = []
    checkpoint_bytes = 0
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.rpt2")
        sidecar = checkpoint_path_for(path)
        half_sidecar = os.path.join(tmp, "half.jpsc")
        half_offset = None
        writer = ArchiveWriter(path)
        writer.snapshot_metadata(database, include_dumps=False)
        tenant = StreamDecoder(jportal, path, name="bench")
        events = list(iter_archive_events(trace, database, 256))
        for index, event in enumerate(events):
            write_archive_event(writer, event)
            if index % 4 == 3:
                started = time.perf_counter()
                tenant.poll()
                poll_times.append(time.perf_counter() - started)
                started = time.perf_counter()
                size = tenant.write_checkpoint(sidecar)
                checkpoint_times.append(time.perf_counter() - started)
                checkpoint_bytes = max(checkpoint_bytes, size or 0)
                if half_offset is None and index >= len(events) // 2:
                    shutil.copy(sidecar, half_sidecar)
                    half_offset = tenant.reader.offset
        writer.close()
        tenant.poll()
        reference = tenant.finalize()
        archive_bytes = os.path.getsize(path)

        started = time.perf_counter()
        restored, anomaly = StreamDecoder.restore(
            jportal, path, name="restored", checkpoint_path=half_sidecar
        )
        recovered = restored.finalize()
        recovery_seconds = time.perf_counter() - started
        if anomaly is not None:
            raise AssertionError(
                "half-way checkpoint failed to load: %s" % anomaly
            )
        if restored.replayed:
            raise AssertionError(
                "restore fell back to a finalize replay: %s"
                % restored.replay_reason
            )

        started = time.perf_counter()
        cold = StreamDecoder(jportal, path, name="cold").finalize()
        cold_seconds = time.perf_counter() - started

        for label, result in (("recovery", recovered), ("cold", cold)):
            if result.total_entries() != reference.total_entries():
                raise AssertionError(
                    "%s diverged from the uninterrupted stream: %d != %d"
                    % (
                        label,
                        result.total_entries(),
                        reference.total_entries(),
                    )
                )
    return {
        "subject": subject_name,
        "polls": len(poll_times),
        "entries": reference.total_entries(),
        "archive_bytes": archive_bytes,
        "checkpoint_bytes": checkpoint_bytes,
        "checkpoint_write_mean_s": sum(checkpoint_times) / len(checkpoint_times),
        "checkpoint_write_max_s": max(checkpoint_times),
        "checkpoint_overhead_fraction": (
            sum(checkpoint_times) / sum(poll_times) if sum(poll_times) else 0.0
        ),
        "resume_offset": half_offset,
        "resume_fraction": (
            half_offset / archive_bytes if archive_bytes else 0.0
        ),
        "recovery_s": recovery_seconds,
        "cold_replay_s": cold_seconds,
        "recovery_speedup": (
            cold_seconds / recovery_seconds if recovery_seconds else 0.0
        ),
    }


def run_cross_format(subject_name: str = "sunflow") -> Dict[str, object]:
    """The cross-format measurement: PT vs E-Trace encoding density.

    Collects the same run through both frontends and records bytes per
    conditional branch, the overall compression ratio (PT bytes over
    E-Trace bytes -- >1 means the branch-map/delta-address format is
    denser), and the loss behaviour of each format at the same
    ``BUFFER_128`` buffer bytes and drain schedule.
    """
    from ..tracesource.events import ConditionalOutcomes, IndirectTarget

    subject, run, lossy_config = _subject_setup(subject_name)
    database = collect_metadata(run)
    jportal = JPortal(
        subject.program,
        recovery=RecoveryConfig(
            cost_per_instruction=run.config.compiled_step_cost
        ),
        engine="array",
    )
    results: Dict[str, object] = {
        "subject": subject_name,
        "buffer_bytes": BUFFER_128,
        "formats": {},
    }
    for name in ("pt", "etrace"):
        lossless = PTConfig(
            buffer=RingBufferConfig(
                capacity_bytes=10**9, drain_bandwidth=1e9
            ),
            frontend=name,
        )
        trace = collect(run, lossless)
        packets = [p for core in trace.cores for p in core.packets]
        stream_bytes = sum(p.size for p in packets)
        branches = sum(
            len(p.bits) for p in packets if isinstance(p, ConditionalOutcomes)
        )
        indirects = sum(1 for p in packets if isinstance(p, IndirectTarget))
        lossy = collect(
            run,
            PTConfig(
                buffer=RingBufferConfig(
                    capacity_bytes=BUFFER_128,
                    drain_period=lossy_config.buffer.drain_period,
                ),
                frontend=name,
            ),
        )
        analysis = jportal.analyze_trace(lossy, database)
        results["formats"][name] = {
            "stream_bytes": stream_bytes,
            "branches": branches,
            "indirect_targets": indirects,
            "bytes_per_branch": stream_bytes / branches if branches else 0.0,
            "lossy_bytes_lost": lossy.bytes_lost,
            "lossy_loss_fraction": analysis.loss_fraction,
            "lossy_anomalies": analysis.anomalies,
            "lossy_entries": analysis.total_entries(),
        }
    pt_bytes = results["formats"]["pt"]["stream_bytes"]
    et_bytes = results["formats"]["etrace"]["stream_bytes"]
    results["compression_ratio"] = pt_bytes / et_bytes if et_bytes else 0.0
    return results


def run_advisor_accuracy(
    subject_name: str = "sunflow",
    cross_format: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Static trace-plan predictions against the measured cross-format run.

    Runs the advisor (:func:`repro.analysis.advisor.plan_trace`) on the
    subject, measures the same subject through both frontends
    (:func:`run_cross_format`, or the caller's entry), and records, per
    frontend, the predicted vs measured bytes-per-branch and the
    relative error -- plus whether the advisor's recommendation matches
    the measured densest frontend and whether every measurement fell
    inside the static bounds.  The entry is the soundness oracle the
    acceptance criteria name: ``sound`` must be ``True`` and every
    ``relative_error`` must stay within the documented
    :data:`repro.analysis.advisor.BYTES_PER_BRANCH_RTOL`.
    """
    from ..analysis.advisor import (
        BYTES_PER_BRANCH_RTOL,
        plan_trace,
        verify_against_measurement,
    )

    if cross_format is None:
        cross_format = run_cross_format(subject_name)
    subject = build_subject(subject_name)
    run = subject.run(default_config())
    plan = plan_trace(
        subject.program,
        template_table=run.template_table,
        subject=subject_name,
        opaque_call_sites=subject.opaque_call_sites,
    )
    problems = verify_against_measurement(plan, cross_format)
    formats = cross_format.get("formats", {})
    measured = {
        name: float(entry["bytes_per_branch"])
        for name, entry in formats.items()
    }
    per_frontend = {}
    for row in plan.plans:
        value = measured.get(row.frontend)
        per_frontend[row.frontend] = {
            "predicted_bytes_per_branch": row.bytes_per_branch_estimate,
            "predicted_low": row.bytes_per_branch_low,
            "predicted_high": row.bytes_per_branch_high,
            "measured_bytes_per_branch": value,
            "relative_error": (
                abs(row.bytes_per_branch_estimate - value) / value
                if value
                else None
            ),
        }
    return {
        "subject": subject_name,
        "recommended": plan.recommended.frontend,
        "measured_best": (
            min(measured, key=lambda name: measured[name]) if measured else None
        ),
        "error_bound": BYTES_PER_BRANCH_RTOL,
        "frontends": per_frontend,
        "violations": problems,
        "sound": not problems,
    }


# ------------------------------------------------------------------ storage
def merge_into(path: str, label: str, entry: Dict[str, object]) -> Dict[str, object]:
    """Merge one labelled run into the bench file (atomic rewrite)."""
    document: Dict[str, object] = {"format": "repro-bench-v1", "runs": {}}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            pass  # unreadable trajectory: start fresh rather than crash
        document.setdefault("runs", {})
    document["runs"][label] = entry
    temp_path = path + ".tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, path)
    return document


# ---------------------------------------------------------------- CI gate
def check_regression(
    current: Dict[str, object],
    committed_path: str,
    against: str = "post",
    tolerance: float = 0.20,
    subjects: Optional[Iterable[str]] = None,
) -> Tuple[bool, List[str]]:
    """Compare *current* Table 5 numbers against a committed baseline run.

    The gate is the **aggregate** decode throughput over the common
    subjects (total bytes / total decode seconds): byte counts are
    deterministic, so a reduced CI matrix stays comparable with the full
    committed run, and aggregating over subjects averages out the
    per-subject timer noise that dominates sub-100ms decodes.
    Per-subject ratios are reported informationally.  Returns
    ``(ok, messages)``; an aggregate drop beyond *tolerance*
    (fractional) flips ``ok``.  Host differences are real differences
    here -- the committed baseline names its host, and the perf-smoke
    job is expected to run on comparable runners.
    """
    messages: List[str] = []
    try:
        with open(committed_path, "r", encoding="utf-8") as handle:
            committed = json.load(handle)
        baseline = committed["runs"][against]["table5"]["rows"]
    except (OSError, ValueError, KeyError) as error:
        return False, ["cannot read baseline %r: %s" % (committed_path, error)]
    current_rows = current["table5"]["rows"]
    names = [
        name
        for name in (subjects or current_rows)
        if name in current_rows and name in baseline
    ]
    if not names:
        return False, ["no common subjects between current run and baseline"]
    for name in names:
        base_row, cur_row = baseline[name], current_rows[name]
        base_tp = base_row["pt_bytes"] / base_row["decode_s"]
        cur_tp = cur_row["pt_bytes"] / cur_row["decode_s"]
        messages.append(
            "%-10s decode throughput %7.1f KB/s vs baseline %7.1f KB/s (%.2fx)"
            % (name, cur_tp / 1024.0, base_tp / 1024.0, cur_tp / base_tp)
        )
    base_total = sum(baseline[n]["pt_bytes"] for n in names) / sum(
        baseline[n]["decode_s"] for n in names
    )
    cur_total = sum(current_rows[n]["pt_bytes"] for n in names) / sum(
        current_rows[n]["decode_s"] for n in names
    )
    ratio = cur_total / base_total if base_total else 1.0
    verdict = "aggregate   decode throughput %7.1f KB/s vs baseline %7.1f KB/s (%.2fx)" % (
        cur_total / 1024.0, base_total / 1024.0, ratio
    )
    ok = ratio >= 1.0 - tolerance
    if not ok:
        verdict += "  REGRESSION (>%d%%)" % round(tolerance * 100)
    messages.append(verdict)
    resilience = current.get("resilience")
    if resilience:
        # Self-consistency gate on the resilience run: restoring from a
        # half-way checkpoint must not be slower than replaying the whole
        # archive cold (within the same fractional tolerance) -- if it
        # is, checkpoints have stopped paying for themselves.
        recovery = resilience["recovery_s"]
        cold = resilience["cold_replay_s"]
        line = (
            "resilience  recovery %.3fs vs cold replay %.3fs (%.2fx speedup)"
            % (recovery, cold, resilience["recovery_speedup"])
        )
        if recovery > cold * (1.0 + tolerance):
            ok = False
            line += "  REGRESSION (checkpoint slower than cold replay)"
        messages.append(line)
    return ok, messages
