"""Control-flow profiles and the clients built on them.

A :class:`ControlFlowProfile` is what JPortal ultimately delivers (and
what the paper's intro promises is "close at hand" once the control flow
is known): per-instruction execution counts, statement coverage, edge
frequencies, method invocation counts, and hot methods.

Profiles can be built from the ground-truth path (equivalent to perfect
instrumentation-based control-flow tracing) or from a JPortal-
reconstructed flow -- the accuracy experiments compare the two.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..jvm.model import JProgram

Node = Tuple[str, int]


@dataclass
class ControlFlowProfile:
    """Aggregated execution statistics of one run (all threads)."""

    program: JProgram
    node_counts: Counter = field(default_factory=Counter)
    edge_counts: Counter = field(default_factory=Counter)
    invocation_counts: Counter = field(default_factory=Counter)
    total_instructions: int = 0

    # ------------------------------------------------------------- building
    @classmethod
    def from_paths(
        cls, program: JProgram, paths: Iterable[Sequence[Optional[Node]]]
    ) -> "ControlFlowProfile":
        """Build a profile from per-thread node paths.

        ``None`` entries (unprojected steps) contribute to nothing.
        """
        profile = cls(program=program)
        for path in paths:
            previous: Optional[Node] = None
            for node in path:
                if node is None:
                    previous = None
                    continue
                profile.node_counts[node] += 1
                profile.total_instructions += 1
                if node[1] == 0:
                    profile.invocation_counts[node[0]] += 1
                if previous is not None:
                    profile.edge_counts[(previous, node)] += 1
                previous = node
        return profile

    @classmethod
    def from_truth(cls, run) -> "ControlFlowProfile":
        """Profile from the runtime's ground-truth paths (exact)."""
        return cls.from_paths(run.program, [t.truth for t in run.threads])

    # --------------------------------------------------------------- queries
    def statement_coverage(self) -> Dict[str, float]:
        """Per-method fraction of bytecode instructions executed."""
        executed: Dict[str, set] = {}
        for (qname, bci), count in self.node_counts.items():
            if count:
                executed.setdefault(qname, set()).add(bci)
        coverage: Dict[str, float] = {}
        for method in self.program.methods():
            qname = method.qualified_name
            total = len(method.code)
            coverage[qname] = len(executed.get(qname, ())) / total if total else 0.0
        return coverage

    def overall_coverage(self) -> float:
        """Whole-program statement coverage."""
        total = sum(len(m.code) for m in self.program.methods())
        if total == 0:
            return 0.0
        covered = len({node for node, count in self.node_counts.items() if count})
        return covered / total

    def method_instruction_counts(self) -> Counter:
        """Instructions executed per method (self counts)."""
        counts: Counter = Counter()
        for (qname, _bci), count in self.node_counts.items():
            counts[qname] += count
        return counts

    def hot_methods(self, top: int = 10) -> List[str]:
        """Top methods by executed-instruction count (a time proxy)."""
        counts = self.method_instruction_counts()
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return [qname for qname, _count in ranked[:top]]

    def edge_frequency(self, src: Node, dst: Node) -> int:
        return self.edge_counts.get((src, dst), 0)

    def executed_methods(self) -> List[str]:
        return sorted(self.method_instruction_counts())
