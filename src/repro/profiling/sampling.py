"""Sampling-based profiler baselines (xprof / JProfiler stand-ins).

Both tools periodically sample which method is executing and estimate hot
methods from sample counts.  The runtime records exact (tsc, method)
samples when ``RuntimeConfig.sample_interval`` is set; the two profiler
models differ the way the real tools do:

* :class:`XProfSampler` (HotSpot's flat profiler): samples at a fixed
  period but only *attributes* a sample when the sampled method is at a
  safepoint-like boundary -- modelled as dropping a deterministic subset
  of samples for compiled code (safepoint bias);
* :class:`JProfilerSampler`: attributes every sample, but at a coarser
  default period.

Accuracy for Table 4 is the intersection of the estimated top-N with the
ground-truth top-N (by self cost).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..jvm.runtime import RunResult


@dataclass
class SampleProfile:
    """Estimated per-method weights from samples."""

    counts: Counter

    def hot_methods(self, top: int = 10) -> List[str]:
        ranked = sorted(self.counts.items(), key=lambda item: (-item[1], item[0]))
        return [qname for qname, _count in ranked[:top]]

    def sample_count(self) -> int:
        return sum(self.counts.values())


class XProfSampler:
    """xprof-like sampling with safepoint-attribution bias."""

    def __init__(self, keep_fraction: float = 0.7, seed: int = 7):
        self.keep_fraction = keep_fraction
        self.seed = seed

    def profile(self, run: RunResult) -> SampleProfile:
        rng = random.Random(self.seed)
        counts: Counter = Counter()
        for _tsc, qname in run.samples:
            if rng.random() <= self.keep_fraction:
                counts[qname] += 1
        return SampleProfile(counts=counts)


class JProfilerSampler:
    """JProfiler-like sampling: every sample attributed, coarser period."""

    def __init__(self, stride: int = 2):
        # Uses every stride-th runtime sample, modelling a longer period
        # from the same underlying record.
        self.stride = max(1, stride)

    def profile(self, run: RunResult) -> SampleProfile:
        counts: Counter = Counter()
        for position, (_tsc, qname) in enumerate(run.samples):
            if position % self.stride == 0:
                counts[qname] += 1
        return SampleProfile(counts=counts)


def ground_truth_hot_methods(run: RunResult, top: int = 10) -> List[str]:
    """Top methods by exact self cost (the paper's instrumentation-derived
    ground truth for Table 4)."""
    items: List[Tuple[str, int]] = [
        (qname, cost)
        for qname, cost in run.method_self_cost.items()
        if not qname.startswith("<")
    ]
    items.sort(key=lambda item: (-item[1], item[0]))
    return [qname for qname, _cost in items[:top]]
