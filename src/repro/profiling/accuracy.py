"""Accuracy metrics: reconstructed flows vs. ground truth.

The paper measures "the degree of matching between each JPortal-
reconstructed control flow path and its corresponding path collected by
the baseline approach" (Section 7.2, Figure 7).  We realise that as the
similarity ratio of an optimal-ish alignment (difflib's matching-blocks,
i.e. ``2*M / (len_a + len_b)``) over ``(method, bci)`` sequences.

Table 3's per-component breakdown is computed from the same alignment
plus provenance tags:

* **PMD** -- percent of trace bytes lost to buffer overflow;
* **PDC** -- percent captured (1 - PMD);
* **PD / PR** -- share of the final flow that was decoded directly /
  recovered;
* **DA / RA** -- alignment accuracy restricted to decoded / recovered
  entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import SequenceMatcher
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.pipeline import JPortalResult, ThreadFlow
from ..jvm.runtime import RunResult

Node = Tuple[str, int]


#: Chunk width for the windowed aligner.  difflib's SequenceMatcher can go
#: quadratic on long, highly repetitive sequences (loop-dominated traces
#: are exactly that), so long inputs are aligned chunk by chunk: match a
#: window of each side, commit up to the last agreed block, repeat.  The
#: result is a (slightly conservative) set of matching blocks computed in
#: roughly linear time.
_ALIGN_WINDOW = 1_500
#: Inputs shorter than this are aligned exactly in one SequenceMatcher call.
_EXACT_LIMIT = 6_000


def _matching_blocks(
    truth: Sequence, reconstructed: Sequence
) -> List[Tuple[int, int, int]]:
    """(a_start, b_start, size) matching blocks between the sequences."""
    a = list(truth)
    b = list(reconstructed)
    if not a or not b:
        return []
    if len(a) <= _EXACT_LIMIT and len(b) <= _EXACT_LIMIT:
        matcher = SequenceMatcher(a=a, b=b, autojunk=False)
        return [
            (block.a, block.b, block.size)
            for block in matcher.get_matching_blocks()
            if block.size
        ]
    blocks: List[Tuple[int, int, int]] = []
    i = j = 0
    window = _ALIGN_WINDOW
    while i < len(a) and j < len(b):
        sub_a = a[i : i + window]
        sub_b = b[j : j + window]
        matcher = SequenceMatcher(a=sub_a, b=sub_b, autojunk=False)
        local = [blk for blk in matcher.get_matching_blocks() if blk.size]
        if not local:
            i += window // 2
            j += window // 2
            continue
        for block in local:
            blocks.append((i + block.a, j + block.b, block.size))
        last = local[-1]
        advance_a = last.a + last.size
        advance_b = last.b + last.size
        # Always make progress even if matching stalled at the window edge.
        i += max(advance_a, 1)
        j += max(advance_b, 1)
    return blocks


def sequence_similarity(
    truth: Sequence[Node], reconstructed: Sequence[Optional[Node]]
) -> float:
    """Alignment ratio in [0, 1] between two node sequences."""
    if not truth and not reconstructed:
        return 1.0
    if not truth or not reconstructed:
        return 0.0
    matched = sum(size for _a, _b, size in _matching_blocks(truth, reconstructed))
    return 2.0 * matched / (len(truth) + len(reconstructed))


def _aligned_correct_flags(
    truth: Sequence[Node], reconstructed: Sequence[Optional[Node]]
) -> List[bool]:
    """Per-reconstructed-entry correctness under the alignment."""
    flags = [False] * len(reconstructed)
    for _a_start, b_start, size in _matching_blocks(truth, reconstructed):
        for offset in range(size):
            flags[b_start + offset] = True
    return flags


@dataclass
class ThreadAccuracy:
    """Accuracy breakdown for one thread (Table 3 rows)."""

    tid: int
    truth_length: int
    overall: float
    decoded_entries: int
    recovered_entries: int
    decoded_correct: int
    recovered_correct: int

    @property
    def decoding_accuracy(self) -> float:
        """DA: correctness of directly decoded/reconstructed entries."""
        if self.decoded_entries == 0:
            return 0.0
        return self.decoded_correct / self.decoded_entries

    @property
    def recovery_accuracy(self) -> float:
        """RA: correctness of hole-filled entries."""
        if self.recovered_entries == 0:
            return 0.0
        return self.recovered_correct / self.recovered_entries

    @property
    def percent_decoded(self) -> float:
        """PD: decoded share of the true flow."""
        if self.truth_length == 0:
            return 0.0
        return min(1.0, self.decoded_entries / self.truth_length)

    @property
    def percent_recovered(self) -> float:
        """PR: recovered share of the true flow."""
        if self.truth_length == 0:
            return 0.0
        return min(1.0, self.recovered_entries / self.truth_length)


def thread_accuracy(truth: Sequence[Node], flow: ThreadFlow) -> ThreadAccuracy:
    """Accuracy of one thread's reconstructed flow against its truth."""
    nodes = flow.flow.nodes()
    provenance = [p for _e, p in flow.flow.entries]
    overall = sequence_similarity(truth, nodes)
    flags = _aligned_correct_flags(truth, nodes)
    decoded = recovered = decoded_ok = recovered_ok = 0
    for flag, tag in zip(flags, provenance):
        if tag == "decoded":
            decoded += 1
            if flag:
                decoded_ok += 1
        else:
            recovered += 1
            if flag:
                recovered_ok += 1
    return ThreadAccuracy(
        tid=flow.tid,
        truth_length=len(truth),
        overall=overall,
        decoded_entries=decoded,
        recovered_entries=recovered,
        decoded_correct=decoded_ok,
        recovered_correct=recovered_ok,
    )


@dataclass
class RunAccuracy:
    """Whole-run accuracy: Figure 7's bar plus Table 3's breakdown."""

    threads: List[ThreadAccuracy]
    percent_missing_data: float  # PMD (trace bytes lost)

    @property
    def overall(self) -> float:
        """Length-weighted overall accuracy (the Figure 7 number)."""
        total = sum(t.truth_length for t in self.threads)
        if total == 0:
            return 1.0
        return sum(t.overall * t.truth_length for t in self.threads) / total

    @property
    def percent_data_captured(self) -> float:
        return 1.0 - self.percent_missing_data

    def _weighted(self, value, weight) -> float:
        total = sum(weight(t) for t in self.threads)
        if total == 0:
            return 0.0
        return sum(value(t) * weight(t) for t in self.threads) / total

    @property
    def decoding_accuracy(self) -> float:
        return self._weighted(
            lambda t: t.decoding_accuracy, lambda t: t.decoded_entries
        )

    @property
    def recovery_accuracy(self) -> float:
        return self._weighted(
            lambda t: t.recovery_accuracy, lambda t: t.recovered_entries
        )

    @property
    def percent_decoded(self) -> float:
        return self._weighted(lambda t: t.percent_decoded, lambda t: t.truth_length)

    @property
    def percent_recovered(self) -> float:
        return self._weighted(lambda t: t.percent_recovered, lambda t: t.truth_length)


def run_accuracy(run: RunResult, result: JPortalResult) -> RunAccuracy:
    """Compare a JPortal analysis against the run's ground truth."""
    threads: List[ThreadAccuracy] = []
    for thread in run.threads:
        flow = result.flows.get(thread.tid)
        if flow is None:
            threads.append(
                ThreadAccuracy(
                    tid=thread.tid,
                    truth_length=len(thread.truth),
                    overall=0.0,
                    decoded_entries=0,
                    recovered_entries=0,
                    decoded_correct=0,
                    recovered_correct=0,
                )
            )
            continue
        threads.append(thread_accuracy(thread.truth, flow))
    return RunAccuracy(threads=threads, percent_missing_data=result.loss_fraction)


def hot_method_intersection(
    truth_hot: Sequence[str], estimated_hot: Sequence[str]
) -> int:
    """Table 4's metric: |top-N(estimate) intersect top-N(ground truth)|."""
    return len(set(truth_hot) & set(estimated_hot))
