"""Ball-Larus profiling baselines (the paper's SC / PF / CF comparators).

Implements the real algorithms the paper reimplemented over ASM:

* **Efficient path profiling** (Ball & Larus, MICRO'96): per-method DAG
  construction (back edges replaced by pseudo entry/exit edges), the
  ``NumPaths``/``Val`` numbering that makes path sums unique and compact,
  a *spanning-tree chord placement* so only chord edges carry increments,
  and path regeneration from ids.
* **Statement coverage** and **control-flow tracing** probe models
  (Ball & Larus, TOPLAS'94): probe counts per block execution, used by the
  overhead model (Table 2).

Profiles are computed by replaying the runtime's exact ground-truth paths
through the instrumentation semantics -- equivalent to running the
instrumented program, with the probe executions counted for the cost
model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..jvm.cfg import CFG, Edge, EdgeKind
from ..jvm.model import JProgram
from ..jvm.opcodes import Kind

Node = Tuple[str, int]

#: Virtual entry/exit node ids used by the DAG transformation.  A real
#: synthetic ENTRY matters: when the loop header is block 0, the pseudo
#: edge ENTRY -> header must not self-loop.
ENTRY = -2
EXIT = -1


@dataclass(frozen=True)
class DagEdge:
    """One DAG edge; pseudo edges come from the back-edge transformation."""

    src: int
    dst: int
    pseudo: bool = False
    # The original back edge this pseudo edge stands for (None otherwise).
    back: Optional[Tuple[int, int]] = None


class BallLarusNumbering:
    """Path numbering + chord instrumentation for one method."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.back_edge_set = {
            (edge.src, edge.dst)
            for edge in cfg.back_edges()
        }
        self.edges: List[DagEdge] = []
        self._build_dag()
        self.val: Dict[DagEdge, int] = {}
        self.num_paths: Dict[int, int] = {}
        self._assign_values()
        self.phi: Dict[int, int] = {}
        self.chords: Dict[Tuple[int, int, bool], DagEdge] = {}
        self.inc: Dict[DagEdge, int] = {}
        self._place_chords()

    # ------------------------------------------------------------------- DAG
    def _build_dag(self) -> None:
        seen = set()

        def add(edge: DagEdge) -> None:
            key = (edge.src, edge.dst, edge.pseudo, edge.back)
            if key not in seen:
                seen.add(key)
                self.edges.append(edge)

        add(DagEdge(ENTRY, 0))
        has_exit_edge = False
        for block in self.cfg.blocks:
            terminal = True
            for edge in block.successors:
                if edge.kind is EdgeKind.EXCEPTION:
                    continue  # exception edges are outside the BL DAG
                terminal = False
                pair = (edge.src, edge.dst)
                if pair in self.back_edge_set:
                    add(DagEdge(ENTRY, edge.dst, pseudo=True, back=pair))
                    add(DagEdge(edge.src, EXIT, pseudo=True, back=pair))
                else:
                    add(DagEdge(edge.src, edge.dst))
            if terminal:
                add(DagEdge(block.block_id, EXIT))
                has_exit_edge = True
        if not has_exit_edge and not self.edges:
            add(DagEdge(0, EXIT))

    def _topological(self) -> List[int]:
        indegree: Dict[int, int] = {EXIT: 0, ENTRY: 0}
        succ: Dict[int, List[DagEdge]] = {}
        for edge in self.edges:
            indegree.setdefault(edge.src, 0)
            indegree[edge.dst] = indegree.get(edge.dst, 0) + 1
            succ.setdefault(edge.src, []).append(edge)
        order: List[int] = []
        ready = sorted(node for node, degree in indegree.items() if degree == 0)
        while ready:
            node = ready.pop()
            order.append(node)
            for edge in succ.get(node, ()):
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
        return order

    def _assign_values(self) -> None:
        succ: Dict[int, List[DagEdge]] = {}
        for edge in self.edges:
            succ.setdefault(edge.src, []).append(edge)
        for edges in succ.values():
            edges.sort(key=lambda e: (e.dst, e.pseudo))
        order = self._topological()
        for node in reversed(order):
            if node == EXIT or node not in succ:
                self.num_paths[node] = 1
                continue
            total = 0
            for edge in succ[node]:
                self.val[edge] = total
                total += self.num_paths.get(edge.dst, 1)
            self.num_paths[node] = total if total else 1

    @property
    def path_count(self) -> int:
        """Number of distinct ENTRY -> EXIT DAG paths."""
        return self.num_paths.get(ENTRY, 1)

    # ---------------------------------------------------------------- chords
    def _place_chords(self) -> None:
        """Spanning tree + chord increments (the BL event-counting trick).

        With ``phi`` the signed Val-potential over an (undirected) spanning
        tree, every tree edge's increment telescopes to zero and a chord
        ``u -> v`` carries ``Val + phi(u) - phi(v)``; a path's chord-sum
        then equals its Val-sum plus the constant ``phi(ENTRY) -
        phi(EXIT)``, which the initialisation absorbs.
        """
        adjacency: Dict[int, List[Tuple[int, DagEdge, int]]] = {}
        for edge in self.edges:
            adjacency.setdefault(edge.src, []).append((edge.dst, edge, +1))
            adjacency.setdefault(edge.dst, []).append((edge.src, edge, -1))
        tree: set = set()
        self.phi = {ENTRY: 0}
        stack = [ENTRY]
        while stack:
            node = stack.pop()
            for other, edge, sign in adjacency.get(node, ()):
                if other in self.phi:
                    continue
                tree.add(edge)
                self.phi[other] = self.phi[node] + sign * self.val.get(edge, 0)
                stack.append(other)
        for edge in self.edges:
            if edge in tree:
                continue
            self.inc[edge] = (
                self.val.get(edge, 0)
                + self.phi.get(edge.src, 0)
                - self.phi.get(edge.dst, 0)
            )

    @property
    def initial_register(self) -> int:
        return self.phi.get(EXIT, 0) - self.phi.get(ENTRY, 0)

    @property
    def chord_count(self) -> int:
        return len(self.inc)

    # -------------------------------------------------------------- profiling
    def _edge_for(self, src: int, dst: int) -> Optional[DagEdge]:
        for edge in self.edges:
            if edge.src == src and edge.dst == dst and not edge.pseudo:
                return edge
        return None

    def path_events(
        self, blocks: Sequence[int]
    ) -> Tuple[Counter, int, int]:
        """Replay one activation's block sequence through instrumentation.

        Returns ``(path_counter, probe_executions, truncated_paths)``.
        Probe executions count chord-increment firings plus the final
        table update -- what the instrumented program would execute.
        """
        counts: Counter = Counter()
        probes = 0
        truncated = 0
        if not blocks:
            return counts, probes, truncated

        register = self.initial_register

        def fire(edge: Optional[DagEdge]) -> None:
            nonlocal register, probes
            if edge is not None and edge in self.inc:
                register += self.inc[edge]
                probes += 1

        fire(self._edge_for(ENTRY, blocks[0]))
        previous = blocks[0]
        for block in blocks[1:]:
            pair = (previous, block)
            if pair in self.back_edge_set:
                # Back edge: finish via v -> EXIT pseudo, restart via
                # ENTRY -> w pseudo.
                for edge in self.edges:
                    if edge.pseudo and edge.back == pair and edge.dst == EXIT:
                        fire(edge)
                counts[register] += 1
                probes += 1
                register = self.initial_register
                for edge in self.edges:
                    if edge.pseudo and edge.back == pair and edge.src == ENTRY:
                        fire(edge)
            else:
                edge = self._edge_for(previous, block)
                if edge is None:
                    # Off-DAG transition (exception): truncate the path.
                    counts[register] += 1
                    probes += 1
                    register = self.initial_register
                    truncated += 1
                else:
                    fire(edge)
            previous = block
        exit_edge = self._edge_for(previous, EXIT)
        fire(exit_edge)
        counts[register] += 1
        probes += 1
        return counts, probes, truncated

    def regenerate(self, path_id: int) -> List[int]:
        """Blocks of the DAG path with sum *path_id* (unique by BL)."""
        succ: Dict[int, List[DagEdge]] = {}
        for edge in self.edges:
            succ.setdefault(edge.src, []).append(edge)
        for edges in succ.values():
            edges.sort(key=lambda e: -self.val.get(e, 0))
        node = ENTRY
        remaining = path_id
        path = []
        while node != EXIT:
            chosen = None
            for edge in succ.get(node, ()):
                if self.val.get(edge, 0) <= remaining:
                    chosen = edge
                    break
            if chosen is None:
                break
            remaining -= self.val.get(chosen, 0)
            node = chosen.dst
            if node != EXIT:
                path.append(node)
        return path


# ------------------------------------------------------------- path splitting
def split_activations(
    program: JProgram, path: Sequence[Node]
) -> Dict[str, List[List[int]]]:
    """Split a thread's ground-truth path into per-method block sequences.

    Walks the path with a simulated call stack (calls push on entering
    bci 0, returns pop, throws unwind) and converts each activation's bci
    run into the sequence of basic blocks entered.
    """
    cfgs: Dict[str, CFG] = {}

    def cfg_of(qname: str) -> CFG:
        cfg = cfgs.get(qname)
        if cfg is None:
            class_name, method_name = qname.rsplit(".", 1)
            cfg = CFG(program.method(class_name, method_name))
            cfgs[qname] = cfg
        return cfg

    result: Dict[str, List[List[int]]] = {}

    def finish(activation: Tuple[str, List[int]]) -> None:
        qname, blocks = activation
        if blocks:
            result.setdefault(qname, []).append(blocks)

    stack: List[Tuple[str, List[int]]] = []
    prev: Optional[Node] = None
    prev_block: Optional[int] = None
    for node in path:
        qname, bci = node
        cfg = cfg_of(qname)
        block = cfg.block_of(bci).block_id
        starts_new = False
        if prev is None:
            starts_new = True
        else:
            prev_qname, prev_bci = prev
            prev_kind = cfg_of(prev_qname).method.code[prev_bci].kind
            if prev_kind is Kind.CALL and bci == 0:
                # A call always enters the callee at bci 0 (including
                # recursive self-calls) -- push a fresh activation.
                starts_new = True
            elif prev_kind is Kind.RETURN:
                if stack:
                    finish(stack.pop())
                starts_new = not stack or stack[-1][0] != qname
                if not starts_new:
                    prev_block = None  # returning: block continuity broken
            elif prev_kind is Kind.THROW:
                # Unwind until an activation of this method is on top (or
                # the handler is in the throwing method itself).
                while stack and stack[-1][0] != qname:
                    finish(stack.pop())
                starts_new = not stack
                prev_block = None
            elif prev_qname != qname:
                # Mode/attribution glitch; treat as a fresh activation.
                while stack and stack[-1][0] != qname:
                    finish(stack.pop())
                starts_new = not stack
                prev_block = None
        if starts_new:
            stack.append((qname, []))
            prev_block = None
        blocks = stack[-1][1]
        prev_bci_val = prev[1] if prev and prev[0] == qname else None
        if (
            prev_block is None
            or block != prev_block
            or prev_bci_val is None
            or bci != prev_bci_val + 1
        ):
            blocks.append(block)
        prev = node
        prev_block = block
    while stack:
        finish(stack.pop())
    return result


# ------------------------------------------------------------------ profilers
@dataclass
class PathProfile:
    """Whole-program Ball-Larus path profile."""

    per_method: Dict[str, Counter] = field(default_factory=dict)
    probe_executions: int = 0
    truncated_paths: int = 0

    def total_paths(self) -> int:
        return sum(sum(counter.values()) for counter in self.per_method.values())


class BallLarusProfiler:
    """Path-frequency profiling over ground-truth paths (the PF baseline)."""

    def __init__(self, program: JProgram):
        self.program = program
        self._numberings: Dict[str, BallLarusNumbering] = {}

    def numbering(self, qname: str) -> BallLarusNumbering:
        numbering = self._numberings.get(qname)
        if numbering is None:
            class_name, method_name = qname.rsplit(".", 1)
            numbering = BallLarusNumbering(CFG(self.program.method(class_name, method_name)))
            self._numberings[qname] = numbering
        return numbering

    def profile(self, paths: Iterable[Sequence[Node]]) -> PathProfile:
        profile = PathProfile()
        for path in paths:
            activations = split_activations(self.program, path)
            for qname, runs in activations.items():
                numbering = self.numbering(qname)
                counter = profile.per_method.setdefault(qname, Counter())
                for blocks in runs:
                    counts, probes, truncated = numbering.path_events(blocks)
                    counter.update(counts)
                    profile.probe_executions += probes
                    profile.truncated_paths += truncated
        return profile


def block_executions(program: JProgram, paths: Iterable[Sequence[Node]]) -> int:
    """Total basic-block entries (probe count for SC / CF instrumentation)."""
    total = 0
    for path in paths:
        for runs in split_activations(program, path).values():
            for blocks in runs:
                total += len(blocks)
    return total
