"""Hot-method detection from JPortal-reconstructed flows (Table 4).

JPortal's hot-method report ranks methods by the number of reconstructed
instructions attributed to them, weighting each entry by the per-mode
execution cost when the run's cost model is available -- the equivalent of
"detection of invocation hot spots" from the paper's introduction.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.pipeline import JPortalResult

Node = Tuple[str, int]


def jportal_hot_methods(
    result: JPortalResult,
    top: int = 10,
    mode_costs: Optional[Dict[str, float]] = None,
) -> List[str]:
    """Top methods by reconstructed execution weight.

    ``mode_costs`` maps observed-step source (``"interp"`` / ``"jit"``) to
    a per-instruction cost; recovered entries (no source) use the average.
    When omitted, every instruction weighs 1.
    """
    weights: Counter = Counter()
    for flow in result.flows.values():
        # Weight decoded entries by their observed mode; recovered entries
        # get the mean weight since their mode is unknown.
        sources = iter(step.source for step in flow.observed.steps())
        if mode_costs:
            mean_cost = sum(mode_costs.values()) / len(mode_costs)
        for entry, provenance in flow.flow.entries:
            if mode_costs is None:
                weight = 1.0
            elif provenance == "decoded":
                # Decoded entries align 1:1 with observed steps, so the
                # source iterator must advance even for unprojected ones.
                weight = mode_costs.get(next(sources, "interp"), 1.0)
            else:
                weight = mean_cost
            if entry is None:
                continue
            weights[entry[0]] += weight
    ranked = sorted(weights.items(), key=lambda item: (-item[1], item[0]))
    return [qname for qname, _weight in ranked[:top]]
