"""Runtime-overhead cost model (Table 2).

The paper measures wall-clock slowdowns of five profiling approaches over
uninstrumented runs.  Our substrate is a simulator, so wall-clock time is
meaningless; instead, every technique's cost is computed from the *exact
dynamic event counts* of the run (blocks executed, chord probes fired,
packets generated, samples taken) multiplied by per-event costs in the
same "cycle" units as the runtime's cost model.  The slowdown is then

    (base_cost + technique_cost) / base_cost

so the *shape* of Table 2 -- which technique is cheap, which explodes on
loop-heavy programs, how JPortal compares to sampling -- emerges from the
workloads' real behaviour rather than being hard-coded.

Per-event constants are calibrated once, against the paper's reported
ranges (JPortal 4--16%, sampling 6--82%, SC/PF 1.1x--44x, CF up to
~3555x), and documented here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..jvm.runtime import RunResult
from .ball_larus import BallLarusProfiler, block_executions

Node = Tuple[str, int]


@dataclass
class OverheadModel:
    """Per-event cost constants (runtime-cost units).

    The runtime charges 10 units per interpreted bytecode and 1 per
    compiled one; the constants below are in the same currency.
    """

    # JPortal: PT packet generation is nearly free in hardware; the cost is
    # the slightly higher memory traffic plus metadata collection/export.
    jportal_per_packet_byte: float = 0.30
    jportal_metadata_per_byte: float = 0.05
    # Statement coverage: one flag write per basic-block execution.
    sc_per_block: float = 10.0
    # Path profiling: chord register updates + a path-table update per
    # completed path.
    pf_per_probe: float = 14.0
    # Control-flow tracing: append a record to a trace buffer per block,
    # including amortised I/O -- by far the most expensive.
    cf_per_block: float = 110.0
    # Hot-method instrumentation: entry/exit counter per invocation.
    hm_per_invocation: float = 60.0
    # Sampling: cost per sample taken (stack walk + bookkeeping); the
    # JProfiler-style agent additionally walks full stacks and records
    # allocation context, hence the multiplier below.
    sample_cost: float = 500.0
    jprofiler_cost_factor: float = 4.0


@dataclass
class SlowdownRow:
    """One Table 2 row."""

    subject: str
    jportal: float
    statement_coverage: float
    path_frequency: float
    control_flow: float
    hot_methods: float
    xprof: float
    jprofiler: float

    def as_tuple(self) -> Tuple[float, ...]:
        return (
            self.jportal,
            self.statement_coverage,
            self.path_frequency,
            self.control_flow,
            self.hot_methods,
            self.xprof,
            self.jprofiler,
        )


def compute_slowdowns(
    subject: str,
    run: RunResult,
    trace_bytes: int,
    metadata_bytes: int,
    model: OverheadModel = OverheadModel(),
    sample_counts: Tuple[int, int] = (0, 0),
) -> SlowdownRow:
    """Compute every technique's slowdown for one run.

    ``sample_counts`` are (xprof, jprofiler) samples taken; ``trace_bytes``
    is the PT trace volume generated; ``metadata_bytes`` the exported
    machine-code metadata.
    """
    base = float(run.total_cost)
    if base <= 0:
        raise ValueError("run has no cost")
    paths = [thread.truth for thread in run.threads]
    blocks = block_executions(run.program, paths)
    profiler = BallLarusProfiler(run.program)
    path_profile = profiler.profile(paths)
    invocations = run.counters.get("invocations", 0)

    jportal_cost = (
        trace_bytes * model.jportal_per_packet_byte
        + metadata_bytes * model.jportal_metadata_per_byte
    )
    sc_cost = blocks * model.sc_per_block
    pf_cost = path_profile.probe_executions * model.pf_per_probe
    cf_cost = blocks * model.cf_per_block
    hm_cost = invocations * model.hm_per_invocation
    xprof_cost = sample_counts[0] * model.sample_cost
    jprofiler_cost = sample_counts[1] * model.sample_cost * model.jprofiler_cost_factor

    def slowdown(cost: float) -> float:
        return (base + cost) / base

    return SlowdownRow(
        subject=subject,
        jportal=slowdown(jportal_cost),
        statement_coverage=slowdown(sc_cost),
        path_frequency=slowdown(pf_cost),
        control_flow=slowdown(cf_cost),
        hot_methods=slowdown(hm_cost),
        xprof=slowdown(xprof_cost),
        jprofiler=slowdown(jprofiler_cost),
    )
