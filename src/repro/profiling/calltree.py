"""Calling-context tree (CCT) profiles from control-flow paths.

The paper's introduction lists "call tree profiles" among the statistics
that are "all close at hand" once the control flow is reconstructed.
This module builds them: a calling-context tree whose nodes are call
chains, each carrying invocation counts and self/inclusive instruction
counts, constructed by replaying a (ground-truth or reconstructed)
``(method, bci)`` path with the same call/return/throw tracking used by
the Ball-Larus activation splitter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..jvm.model import JProgram
from ..jvm.opcodes import Kind

Node = Tuple[str, int]


@dataclass
class CallTreeNode:
    """One calling context: a method reached through a specific chain."""

    qname: str
    children: Dict[str, "CallTreeNode"] = field(default_factory=dict)
    invocations: int = 0
    self_instructions: int = 0

    def child(self, qname: str) -> "CallTreeNode":
        node = self.children.get(qname)
        if node is None:
            node = CallTreeNode(qname=qname)
            self.children[qname] = node
        return node

    @property
    def inclusive_instructions(self) -> int:
        return self.self_instructions + sum(
            child.inclusive_instructions for child in self.children.values()
        )

    def walk(self, depth: int = 0):
        yield depth, self
        for qname in sorted(self.children):
            yield from self.children[qname].walk(depth + 1)


class CallTree:
    """A whole-thread calling-context tree."""

    def __init__(self):
        self.root = CallTreeNode(qname="<root>")

    # ------------------------------------------------------------- building
    @classmethod
    def from_path(
        cls, program: JProgram, path: Sequence[Optional[Node]]
    ) -> "CallTree":
        """Replay *path*, attributing instructions to calling contexts.

        ``None`` entries (unprojected steps) reset the context tracking to
        the last known frame, losing only their own attribution.
        """
        tree = cls()
        stack: List[CallTreeNode] = []
        prev: Optional[Node] = None

        def enter(qname: str) -> None:
            parent = stack[-1] if stack else tree.root
            node = parent.child(qname)
            node.invocations += 1
            stack.append(node)

        for entry in path:
            if entry is None:
                prev = None
                continue
            qname, bci = entry
            class_name, method_name = qname.rsplit(".", 1)
            method = program.method(class_name, method_name)
            if prev is None:
                if not stack or stack[-1].qname != qname:
                    enter(qname)
            else:
                prev_qname, prev_bci = prev
                prev_class, prev_method = prev_qname.rsplit(".", 1)
                prev_kind = (
                    program.method(prev_class, prev_method).code[prev_bci].kind
                )
                if prev_kind is Kind.CALL and bci == 0:
                    enter(qname)
                elif prev_kind is Kind.RETURN:
                    if stack:
                        stack.pop()
                    if not stack or stack[-1].qname != qname:
                        # Lost context (e.g. trace began mid-execution).
                        enter(qname)
                elif prev_kind is Kind.THROW:
                    while stack and stack[-1].qname != qname:
                        stack.pop()
                    if not stack:
                        enter(qname)
                elif prev_qname != qname:
                    # Attribution glitch: resynchronise.
                    while stack and stack[-1].qname != qname:
                        stack.pop()
                    if not stack:
                        enter(qname)
            stack[-1].self_instructions += 1
            prev = entry
        return tree

    # --------------------------------------------------------------- queries
    def node_count(self) -> int:
        return sum(1 for _depth, _node in self.root.walk()) - 1

    def hottest_contexts(self, top: int = 5) -> List[Tuple[Tuple[str, ...], int]]:
        """Top calling contexts by self instruction count."""
        contexts: List[Tuple[Tuple[str, ...], int]] = []

        def visit(node: CallTreeNode, chain: Tuple[str, ...]) -> None:
            for qname in sorted(node.children):
                child = node.children[qname]
                extended = chain + (qname,)
                contexts.append((extended, child.self_instructions))
                visit(child, extended)

        visit(self.root, ())
        contexts.sort(key=lambda item: (-item[1], item[0]))
        return contexts[:top]

    def render(self, max_depth: int = 6) -> str:
        """Human-readable tree dump."""
        lines = []
        for depth, node in self.root.walk():
            if node is self.root or depth > max_depth:
                continue
            lines.append(
                "%s%s  calls=%d self=%d incl=%d"
                % (
                    "  " * (depth - 1),
                    node.qname,
                    node.invocations,
                    node.self_instructions,
                    node.inclusive_instructions,
                )
            )
        return "\n".join(lines)
