"""Timestamp-based hot-spot detection.

"Hardware traces contain event timestamps, enabling performance analysis
such as detection of invocation hot spots" (paper, introduction).  The
observed steps that come out of decoding carry TSC timestamps; this
module slices a thread's observed trace into fixed-width time windows and
reports, per window, the dominant method and the instruction throughput --
surfacing *when* a method was hot, not just that it was.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.pipeline import JPortalResult


@dataclass(frozen=True)
class HotWindow:
    """One time window of a thread's execution."""

    start_tsc: int
    end_tsc: int
    instructions: int
    dominant_method: Optional[str]
    dominant_share: float

    @property
    def width(self) -> int:
        return self.end_tsc - self.start_tsc


def thread_hot_windows(
    result: JPortalResult, tid: int, window: int = 5_000
) -> List[HotWindow]:
    """Slice thread *tid*'s observed trace into *window*-wide TSC slices."""
    flow = result.flows[tid]
    steps = flow.observed.steps()
    if not steps:
        return []
    buckets: Dict[int, Counter] = {}
    for step in steps:
        if step.location is not None:
            method = step.location[0]
        else:
            method = None  # interpreted: method known only post-projection
        buckets.setdefault(step.tsc // window, Counter())[method] += 1
    # Fill interpreted attribution from the projection where available.
    projected = iter_projected_methods(flow)
    for method, tsc in projected:
        bucket = buckets.setdefault(tsc // window, Counter())
        if bucket.get(None):
            bucket[method] += 1
            bucket[None] -= 1
            if bucket[None] <= 0:
                del bucket[None]
    windows: List[HotWindow] = []
    for index in sorted(buckets):
        counts = buckets[index]
        total = sum(counts.values())
        named = Counter(
            {method: count for method, count in counts.items() if method is not None}
        )
        if named:
            method, count = named.most_common(1)[0]
            share = count / total
        else:
            method, share = None, 0.0
        windows.append(
            HotWindow(
                start_tsc=index * window,
                end_tsc=(index + 1) * window,
                instructions=total,
                dominant_method=method,
                dominant_share=share,
            )
        )
    return windows


def iter_projected_methods(flow) -> List[Tuple[str, int]]:
    """(method, tsc) for interpreted steps whose projection succeeded."""
    steps = flow.observed.steps()
    result: List[Tuple[str, int]] = []
    entries = [e for e, p in flow.flow.entries if p == "decoded"]
    for step, entry in zip(steps, entries):
        if step.location is None and entry is not None:
            result.append((entry[0], step.tsc))
    return result


def hottest_window(
    result: JPortalResult, tid: int, window: int = 5_000
) -> Optional[HotWindow]:
    """The window with the highest instruction throughput."""
    windows = thread_hot_windows(result, tid, window)
    if not windows:
        return None
    return max(windows, key=lambda w: (w.instructions, -w.start_tsc))


def invocation_hot_spots(
    result: JPortalResult, window: int = 5_000, top: int = 5
) -> List[Tuple[int, HotWindow]]:
    """Across all threads: the *top* busiest (tid, window) pairs."""
    spots: List[Tuple[int, HotWindow]] = []
    for tid in result.flows:
        for hot in thread_hot_windows(result, tid, window):
            spots.append((tid, hot))
    spots.sort(key=lambda item: (-item[1].instructions, item[0], item[1].start_tsc))
    return spots[:top]
