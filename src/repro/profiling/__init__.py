"""Profiling clients and baselines: profiles, accuracy, Ball-Larus, sampling."""

from .accuracy import (
    RunAccuracy,
    ThreadAccuracy,
    hot_method_intersection,
    run_accuracy,
    sequence_similarity,
    thread_accuracy,
)
from .calltree import CallTree, CallTreeNode
from .ball_larus import (
    BallLarusNumbering,
    BallLarusProfiler,
    PathProfile,
    block_executions,
    split_activations,
)
from .hotmethods import jportal_hot_methods
from .hotspots import HotWindow, hottest_window, invocation_hot_spots, thread_hot_windows
from .overhead import OverheadModel, SlowdownRow, compute_slowdowns
from .profiles import ControlFlowProfile
from .sampling import (
    JProfilerSampler,
    SampleProfile,
    XProfSampler,
    ground_truth_hot_methods,
)

__all__ = [
    "RunAccuracy",
    "ThreadAccuracy",
    "hot_method_intersection",
    "run_accuracy",
    "sequence_similarity",
    "thread_accuracy",
    "CallTree",
    "CallTreeNode",
    "BallLarusNumbering",
    "BallLarusProfiler",
    "PathProfile",
    "block_executions",
    "split_activations",
    "jportal_hot_methods",
    "HotWindow",
    "hottest_window",
    "invocation_hot_spots",
    "thread_hot_windows",
    "OverheadModel",
    "SlowdownRow",
    "compute_slowdowns",
    "ControlFlowProfile",
    "JProfilerSampler",
    "SampleProfile",
    "XProfSampler",
    "ground_truth_hot_methods",
]
