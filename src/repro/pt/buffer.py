"""Per-core ring buffer with finite export bandwidth -> real data loss.

PT writes packets into a physical-memory ring buffer that a consumer
(perf) drains to disk.  When the program generates trace faster than the
consumer drains it, packets are dropped and perf emits a truncated-aux
record.  The paper measures 22.2%--28.0% loss under a 128 MB buffer and
>50% under 64 MB (Sections 1 and 7.2, Table 3); the *mechanism* -- fill
rate vs. drain rate against a capacity -- is reproduced here so that the
loss percentage responds to buffer size the same way.

The model: walking packets in TSC order, the buffer drains
``drain_bandwidth`` bytes per TSC unit between packets; a packet that
does not fit is dropped (consecutive drops merge into one
:class:`AuxLossRecord`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .packets import AuxLossRecord, Packet


@dataclass
class RingBufferConfig:
    """Buffer capacity and drain characteristics.

    Attributes:
        capacity_bytes: Ring size (the paper's 64/128/256 MB knob, scaled).
        drain_bandwidth: Bytes exported per TSC unit.
        low_watermark: Once the buffer overflows, packets keep being
            dropped until the fill level drains below
            ``low_watermark * capacity_bytes``.  This hysteresis mirrors
            real perf/PT behaviour, where an overflow loses a large
            contiguous chunk of trace (the reader must catch up before
            collection resumes), producing the paper's "execution periods
            of arbitrary length" holes rather than single-packet drops.
    """

    capacity_bytes: int = 8_192
    drain_bandwidth: float = 0.5
    low_watermark: float = 0.5
    # Periodic-reader mode: when set, the continuous-bandwidth model is
    # replaced by a perf-style reader that wakes every ``drain_period``
    # TSC units and empties the whole ring at once.  Between wakeups the
    # ring must absorb the full trace burst, so the loss fraction depends
    # directly on capacity -- the paper's observed buffer-size sensitivity
    # (Table 3).  ``None`` keeps the continuous model.
    drain_period: Optional[int] = None


@dataclass
class BufferResult:
    """Outcome of pushing one core's packet stream through the buffer."""

    kept: List[Packet]
    losses: List[AuxLossRecord]
    bytes_in: int
    bytes_lost: int

    @property
    def loss_fraction(self) -> float:
        if self.bytes_in == 0:
            return 0.0
        return self.bytes_lost / self.bytes_in


class RingBuffer:
    """Simulates the fill/drain race that causes PT data loss."""

    def __init__(self, config: RingBufferConfig):
        self.config = config

    def apply(self, packets: Sequence[Packet]) -> BufferResult:
        """Filter *packets* (TSC-ordered) through the buffer model."""
        kept: List[Packet] = []
        losses: List[AuxLossRecord] = []
        fill = 0.0
        last_tsc = None
        bytes_in = 0
        bytes_lost = 0
        dropping = False
        resume_level = self.config.low_watermark * self.config.capacity_bytes
        # Open loss span: [start_tsc, end_tsc, bytes, count]
        open_loss: List = []

        def close_loss():
            if open_loss:
                losses.append(
                    AuxLossRecord(
                        start_tsc=open_loss[0],
                        end_tsc=open_loss[1],
                        bytes_lost=open_loss[2],
                        packets_lost=open_loss[3],
                    )
                )
                del open_loss[:]

        period = self.config.drain_period
        next_drain = None
        for packet in packets:
            bytes_in += packet.size
            if period:
                if next_drain is None:
                    next_drain = (packet.tsc // period + 1) * period
                while packet.tsc >= next_drain:
                    fill = 0.0  # reader wakeup: the whole ring is copied out
                    dropping = False
                    # The wakeup ends any overflow in progress: trace
                    # collected after it lands in a fresh ring, so a loss
                    # span never extends across a drain boundary.
                    close_loss()
                    next_drain += period
            elif last_tsc is not None and packet.tsc > last_tsc:
                fill = max(
                    0.0, fill - (packet.tsc - last_tsc) * self.config.drain_bandwidth
                )
            last_tsc = packet.tsc
            if dropping and fill <= resume_level:
                dropping = False
            if not dropping and fill + packet.size > self.config.capacity_bytes:
                dropping = True
            if not dropping:
                fill += packet.size
                close_loss()
                kept.append(packet)
            else:
                bytes_lost += packet.size
                if open_loss:
                    open_loss[1] = packet.tsc
                    open_loss[2] += packet.size
                    open_loss[3] += 1
                else:
                    open_loss.extend([packet.tsc, packet.tsc, packet.size, 1])
        close_loss()
        return BufferResult(
            kept=kept, losses=losses, bytes_in=bytes_in, bytes_lost=bytes_lost
        )


def interleave_with_losses(
    result: BufferResult,
) -> List[Tuple[str, object]]:
    """Merge kept packets and loss records into one TSC-ordered stream.

    Returns ``("packet", Packet)`` and ``("loss", AuxLossRecord)`` tagged
    items -- the segmented stream the decoder consumes.
    """
    merged: List[Tuple[str, object]] = []
    loss_iter = iter(result.losses)
    next_loss = next(loss_iter, None)
    for packet in result.kept:
        # Tie ordering: a loss whose span *starts* at this packet's TSC
        # began at-or-after the packet was kept (within one tick, kept
        # packets precede the drops), so the packet is emitted first and
        # the loss follows -- the decoder must not clear TNT state for a
        # loss that actually happened after the packet.
        while next_loss is not None and next_loss.start_tsc < packet.tsc:
            merged.append(("loss", next_loss))
            next_loss = next(loss_iter, None)
        merged.append(("packet", packet))
    while next_loss is not None:
        merged.append(("loss", next_loss))
        next_loss = next(loss_iter, None)
    return merged
