"""Seeded fault injection for packet/loss streams and code metadata.

The decode pipeline's robustness contract (``PTDecoder.decode`` never
raises; corruption degrades into anomalies and holes) is only credible if
it is exercised against failure shapes *other* than the one our own
:class:`~repro.pt.buffer.RingBuffer` produces.  Hardware trace encoders
are validated the same way -- against injected error patterns -- and this
module provides the software equivalent: a seeded :class:`FaultInjector`
that mutates a collected trace (or a single merged packet/loss stream)
with realistic malformations:

* truncation at arbitrary packet boundaries and *inside* a TNT byte;
* dropped, duplicated, and overlapping ``perf_record_aux`` loss records;
* TIP targets corrupted into unmapped address space;
* TNT packets split or merged (merging drops overflow bits -- a short
  TNT byte holds at most six);
* reordering within one TSC tick (losing the packet-first tie order);
* invalidated debug-info entries, simulating the pre-GC export race
  where compiled code is reclaimed before its metadata is flushed.

Every mutation is reported as an :class:`InjectedFault`, so fuzz tests
can assert kind coverage.  All randomness flows from the seed passed to
:class:`FaultInjector` -- a given seed always produces the same
corruption, which keeps fuzz failures reproducible.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, replace
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from .packets import AuxLossRecord, TIPPacket, TNTPacket

#: Base of an address range no component ever maps (far below the
#: template area and the code cache); corrupted TIP targets land here.
UNMAPPED_BASE = 0x0BAD00000000

TaggedStream = List[Tuple[str, object]]


class FaultKind(str, Enum):
    """The malformation vocabulary (see the module docstring)."""

    #: Cut the stream at a packet boundary (truncated export).
    TRUNCATE_STREAM = "truncate_stream"
    #: Cut *inside* a TNT packet: a bit-prefix survives, the rest is lost.
    TRUNCATE_MID_TNT = "truncate_mid_tnt"
    #: Split one TNT packet into two carrying the same bits.
    SPLIT_TNT = "split_tnt"
    #: Merge two adjacent TNT packets; bits beyond six are dropped.
    MERGE_TNT = "merge_tnt"
    #: Remove a loss record (the hole stays, its sideband marker is gone).
    DROP_LOSS = "drop_loss"
    #: Emit a loss record twice.
    DUPLICATE_LOSS = "duplicate_loss"
    #: Extend a loss span past packets that were actually kept.
    OVERLAP_LOSS = "overlap_loss"
    #: Rewrite a TIP target into unmapped address space.
    CORRUPT_TIP = "corrupt_tip"
    #: Shuffle a run of equal-TSC stream entries.
    REORDER_TIE = "reorder_tie"
    #: Invalidate debug-info entries (database-level, not stream-level).
    STALE_DEBUG = "stale_debug"
    # ---- archive (disk) level: byte mutations of an ``RPT2`` file
    # applied by :meth:`FaultInjector.corrupt_archive` /
    # :meth:`FaultInjector.corrupt_snapshot`, not a packet stream.
    #: Cut the archive file at an arbitrary byte (crash mid-dump).
    TRUNCATE_ARCHIVE = "truncate_archive"
    #: Flip one bit anywhere in the file (media rot, transfer damage).
    BIT_FLIP = "bit_flip"
    #: Remove one whole committed segment record (lost dump window).
    DROP_SEGMENT = "drop_segment"
    #: Replay one committed segment record (retransmitted dump window).
    DUPLICATE_SEGMENT = "duplicate_segment"
    #: Remove or corrupt the metadata snapshot sidecar (stale export).
    STALE_SNAPSHOT = "stale_snapshot"
    # ---- process / I/O level: runtime faults against a *live* reader
    # or supervisor (``repro.stream`` resilience), not byte mutations.
    #: Transient ``OSError`` raised from one read attempt.
    IO_ERROR = "io_error"
    #: One read returns fewer bytes than available (short read).
    PARTIAL_READ = "partial_read"
    #: One read stalls (slow media / contended device).
    SLOW_READ = "slow_read"
    #: The archive file is replaced wholesale under the reader.
    FILE_REPLACED = "file_replaced"
    #: The JPSC checkpoint sidecar is deleted/truncated/bit-rotted.
    CHECKPOINT_CORRUPT = "checkpoint_corrupt"
    #: The supervisor process dies at a seeded poll index and restarts.
    SUPERVISOR_KILL = "supervisor_kill"


#: Kinds applied at the archive-byte level by ``corrupt_archive``
#: (``STALE_SNAPSHOT`` is file-level: see ``corrupt_snapshot``).
ARCHIVE_FAULT_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.TRUNCATE_ARCHIVE,
    FaultKind.BIT_FLIP,
    FaultKind.DROP_SEGMENT,
    FaultKind.DUPLICATE_SEGMENT,
)

#: Every disk-durability fault, including the sidecar one.
DISK_FAULT_KINDS: Tuple[FaultKind, ...] = ARCHIVE_FAULT_KINDS + (
    FaultKind.STALE_SNAPSHOT,
)

#: Runtime process/I/O faults for the streaming resilience layer: the
#: read-path ones drive :class:`IOFaultSchedule`, the rest are applied
#: by the chaos harness (file replacement, checkpoint corruption via
#: :meth:`FaultInjector.corrupt_checkpoint`, seeded supervisor kills).
PROCESS_FAULT_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.IO_ERROR,
    FaultKind.PARTIAL_READ,
    FaultKind.SLOW_READ,
    FaultKind.FILE_REPLACED,
    FaultKind.CHECKPOINT_CORRUPT,
    FaultKind.SUPERVISOR_KILL,
)

#: Kinds that mutate a packet/loss stream (everything except the
#: metadata-level fault, which :meth:`FaultInjector.corrupt_database`
#: applies to a code database instead, the archive-byte-level faults,
#: which mutate serialised files, and the runtime process faults).
STREAM_FAULT_KINDS: Tuple[FaultKind, ...] = tuple(
    kind for kind in FaultKind
    if kind is not FaultKind.STALE_DEBUG
    and kind not in DISK_FAULT_KINDS
    and kind not in PROCESS_FAULT_KINDS
)


class IOFaultSchedule:
    """Seeded transient-fault hooks for an ``ArchiveTailReader``.

    Plugs into :attr:`~repro.pt.archive.ArchiveTailReader.io_hooks`:
    ``before_read`` fires on every poll and, per the seeded schedule,
    raises a transient ``OSError`` (``EIO``) or sleeps (slow media);
    ``read_limit`` occasionally shortens one read (partial read).  All
    decisions flow from the seed, so a chaos run is reproducible; every
    fired fault is recorded in :attr:`applied` for coverage assertions.
    """

    def __init__(
        self,
        seed: int,
        error_rate: float = 0.0,
        partial_rate: float = 0.0,
        stall_rate: float = 0.0,
        stall_seconds: float = 0.01,
        max_faults: Optional[int] = None,
    ):
        self.rng = random.Random(seed)
        self.error_rate = error_rate
        self.partial_rate = partial_rate
        self.stall_rate = stall_rate
        self.stall_seconds = stall_seconds
        self.max_faults = max_faults
        self.polls = 0
        self.applied: List[InjectedFault] = []

    def _exhausted(self) -> bool:
        return (
            self.max_faults is not None and len(self.applied) >= self.max_faults
        )

    def before_read(self, reader) -> None:
        import errno
        import time as _time

        self.polls += 1
        if self._exhausted():
            return
        if self.stall_rate and self.rng.random() < self.stall_rate:
            self.applied.append(
                InjectedFault(
                    FaultKind.SLOW_READ, self.polls,
                    "read stalled %.3fs" % self.stall_seconds,
                )
            )
            _time.sleep(self.stall_seconds)
        if self.error_rate and self.rng.random() < self.error_rate:
            self.applied.append(
                InjectedFault(
                    FaultKind.IO_ERROR, self.polls, "transient EIO on poll"
                )
            )
            raise OSError(errno.EIO, "injected transient I/O error")

    def read_limit(self, available: int) -> Optional[int]:
        if self._exhausted() or available <= 1:
            return None
        if self.partial_rate and self.rng.random() < self.partial_rate:
            limit = self.rng.randrange(1, available)
            self.applied.append(
                InjectedFault(
                    FaultKind.PARTIAL_READ, self.polls,
                    "read shortened to %d of %d bytes" % (limit, available),
                )
            )
            return limit
        return None


@dataclass(frozen=True)
class InjectedFault:
    """One applied mutation (``index`` is -1 for database faults)."""

    kind: FaultKind
    index: int
    detail: str


class FaultInjector:
    """Deterministic, seeded mutator for traces and code databases."""

    def __init__(self, seed: int):
        self.seed = seed
        self.rng = random.Random(seed)

    # ----------------------------------------------------------- stream level
    def mutate_stream(
        self,
        stream: Sequence[Tuple[str, object]],
        kinds: Optional[Sequence[FaultKind]] = None,
        faults: int = 1,
    ) -> Tuple[TaggedStream, List[InjectedFault]]:
        """Apply *faults* mutations drawn from *kinds* to a merged
        ``("packet"|"loss", item)`` stream; returns the mutated stream and
        the faults actually applied (a kind whose precondition fails --
        e.g. no TNT packet to split -- is skipped, not an error)."""
        mutated: TaggedStream = list(stream)
        applied: List[InjectedFault] = []
        pool = [
            k for k in (kinds or STREAM_FAULT_KINDS) if k in STREAM_FAULT_KINDS
        ]
        for _ in range(faults):
            if not pool or not mutated:
                break
            kind = self.rng.choice(pool)
            fault = self._apply(mutated, kind)
            if fault is not None:
                applied.append(fault)
        return mutated, applied

    def _apply(
        self, stream: TaggedStream, kind: FaultKind
    ) -> Optional[InjectedFault]:
        handler = getattr(self, "_fault_%s" % kind.value)
        return handler(stream)

    def _indices(self, stream: TaggedStream, predicate) -> List[int]:
        return [i for i, entry in enumerate(stream) if predicate(entry)]

    def _fault_truncate_stream(self, stream) -> Optional[InjectedFault]:
        if len(stream) < 2:
            return None
        cut = self.rng.randrange(1, len(stream))
        del stream[cut:]
        return InjectedFault(
            FaultKind.TRUNCATE_STREAM, cut, "cut at entry %d" % cut
        )

    def _fault_truncate_mid_tnt(self, stream) -> Optional[InjectedFault]:
        candidates = self._indices(
            stream, lambda e: e[0] == "packet" and isinstance(e[1], TNTPacket)
        )
        if not candidates:
            return None
        index = self.rng.choice(candidates)
        packet: TNTPacket = stream[index][1]
        if len(packet.bits) > 1:
            keep = self.rng.randrange(1, len(packet.bits))
            stream[index] = (
                "packet", TNTPacket(tsc=packet.tsc, bits=packet.bits[:keep])
            )
            detail = "kept %d of %d bits" % (keep, len(packet.bits))
        else:
            # A 1-bit packet has no proper prefix: the whole byte is lost.
            del stream[index]
            detail = "single-bit TNT removed"
        return InjectedFault(FaultKind.TRUNCATE_MID_TNT, index, detail)

    def _fault_split_tnt(self, stream) -> Optional[InjectedFault]:
        candidates = self._indices(
            stream,
            lambda e: e[0] == "packet"
            and isinstance(e[1], TNTPacket)
            and len(e[1].bits) >= 2,
        )
        if not candidates:
            return None
        index = self.rng.choice(candidates)
        packet: TNTPacket = stream[index][1]
        at = self.rng.randrange(1, len(packet.bits))
        stream[index : index + 1] = [
            ("packet", TNTPacket(tsc=packet.tsc, bits=packet.bits[:at])),
            ("packet", TNTPacket(tsc=packet.tsc, bits=packet.bits[at:])),
        ]
        return InjectedFault(
            FaultKind.SPLIT_TNT, index, "split %d bits at %d" % (len(packet.bits), at)
        )

    def _fault_merge_tnt(self, stream) -> Optional[InjectedFault]:
        candidates = [
            i
            for i in range(len(stream) - 1)
            if stream[i][0] == "packet"
            and isinstance(stream[i][1], TNTPacket)
            and stream[i + 1][0] == "packet"
            and isinstance(stream[i + 1][1], TNTPacket)
        ]
        if not candidates:
            return None
        index = self.rng.choice(candidates)
        first: TNTPacket = stream[index][1]
        second: TNTPacket = stream[index + 1][1]
        bits = (first.bits + second.bits)[:6]  # overflow bits are LOST
        dropped = len(first.bits) + len(second.bits) - len(bits)
        stream[index : index + 2] = [
            ("packet", TNTPacket(tsc=first.tsc, bits=bits))
        ]
        return InjectedFault(
            FaultKind.MERGE_TNT, index, "merged; %d bits dropped" % dropped
        )

    def _fault_drop_loss(self, stream) -> Optional[InjectedFault]:
        candidates = self._indices(stream, lambda e: e[0] == "loss")
        if not candidates:
            return None
        index = self.rng.choice(candidates)
        del stream[index]
        return InjectedFault(FaultKind.DROP_LOSS, index, "loss record removed")

    def _fault_duplicate_loss(self, stream) -> Optional[InjectedFault]:
        candidates = self._indices(stream, lambda e: e[0] == "loss")
        if not candidates:
            return None
        index = self.rng.choice(candidates)
        stream.insert(index + 1, stream[index])
        return InjectedFault(
            FaultKind.DUPLICATE_LOSS, index, "loss record duplicated"
        )

    def _fault_overlap_loss(self, stream) -> Optional[InjectedFault]:
        candidates = self._indices(stream, lambda e: e[0] == "loss")
        if not candidates:
            return None
        index = self.rng.choice(candidates)
        loss: AuxLossRecord = stream[index][1]
        # Stretch the span past the next few kept packets.
        horizon = loss.end_tsc
        seen = 0
        for tag, item in stream[index + 1 :]:
            if tag == "packet":
                horizon = max(horizon, item.tsc)
                seen += 1
                if seen >= self.rng.randrange(1, 5):
                    break
        stream[index] = (
            "loss", replace(loss, end_tsc=horizon + self.rng.randrange(0, 3))
        )
        return InjectedFault(
            FaultKind.OVERLAP_LOSS,
            index,
            "span stretched to %d" % stream[index][1].end_tsc,
        )

    def _fault_corrupt_tip(self, stream) -> Optional[InjectedFault]:
        candidates = self._indices(
            stream, lambda e: e[0] == "packet" and isinstance(e[1], TIPPacket)
        )
        if not candidates:
            return None
        index = self.rng.choice(candidates)
        packet: TIPPacket = stream[index][1]
        bogus = UNMAPPED_BASE | self.rng.getrandbits(24)
        stream[index] = ("packet", replace(packet, target=bogus))
        return InjectedFault(
            FaultKind.CORRUPT_TIP, index, "target -> 0x%x" % bogus
        )

    def _fault_reorder_tie(self, stream) -> Optional[InjectedFault]:
        def tsc_of(entry):
            tag, item = entry
            return item.start_tsc if tag == "loss" else item.tsc

        runs = []
        start = 0
        for i in range(1, len(stream) + 1):
            if i == len(stream) or tsc_of(stream[i]) != tsc_of(stream[start]):
                if i - start >= 2:
                    runs.append((start, i))
                start = i
        if not runs:
            return None
        lo, hi = self.rng.choice(runs)
        run = stream[lo:hi]
        self.rng.shuffle(run)
        stream[lo:hi] = run
        return InjectedFault(
            FaultKind.REORDER_TIE, lo, "shuffled %d-entry tie run" % (hi - lo)
        )

    # ------------------------------------------------------------ trace level
    def mutate_trace(
        self,
        trace,
        kinds: Optional[Sequence[FaultKind]] = None,
        faults_per_core: int = 2,
    ):
        """Deep-copy a :class:`~repro.pt.perf.PTTrace` and corrupt each
        core's packets/losses.  Returns ``(mutated_trace, faults)``."""
        mutated = copy.deepcopy(trace)
        applied: List[InjectedFault] = []
        for core in mutated.cores:
            stream = _merge_core(core.packets, core.losses)
            stream, faults = self.mutate_stream(stream, kinds, faults_per_core)
            applied.extend(faults)
            core.packets = [item for tag, item in stream if tag == "packet"]
            core.losses = [item for tag, item in stream if tag == "loss"]
        return mutated, applied

    # ---------------------------------------------------------- archive level
    def corrupt_archive(
        self,
        data: bytes,
        kinds: Optional[Sequence[FaultKind]] = None,
        faults: int = 1,
    ) -> Tuple[bytes, List[InjectedFault]]:
        """Apply *faults* disk-level mutations to serialised ``RPT2``
        archive bytes; returns the mutated bytes and the faults applied.

        Like :meth:`mutate_stream`, a kind whose precondition fails (no
        committed segment left to drop, nothing left to truncate) is
        skipped rather than an error, so fuzz loops stay total.  The
        salvage contract under test: for every mutation produced here,
        :func:`repro.pt.archive.read_archive` completes and reports the
        damage in its salvage stats.
        """
        from .archive import REC_SEGMENT, scan_record_spans

        mutated = bytearray(data)
        applied: List[InjectedFault] = []
        pool = [
            k for k in (kinds or ARCHIVE_FAULT_KINDS) if k in ARCHIVE_FAULT_KINDS
        ]
        for _ in range(faults):
            if not pool or not mutated:
                break
            kind = self.rng.choice(pool)
            if kind is FaultKind.TRUNCATE_ARCHIVE:
                if len(mutated) < 6:
                    continue
                cut = self.rng.randrange(5, len(mutated))
                del mutated[cut:]
                applied.append(
                    InjectedFault(kind, cut, "file cut at byte %d" % cut)
                )
            elif kind is FaultKind.BIT_FLIP:
                position = self.rng.randrange(len(mutated))
                bit = self.rng.randrange(8)
                mutated[position] ^= 1 << bit
                applied.append(
                    InjectedFault(
                        kind, position, "bit %d flipped at byte %d" % (bit, position)
                    )
                )
            else:  # drop / duplicate a committed segment record
                spans = [
                    span for span in scan_record_spans(bytes(mutated))
                    if span.rtype == REC_SEGMENT
                ]
                if not spans:
                    continue
                span = self.rng.choice(spans)
                if kind is FaultKind.DROP_SEGMENT:
                    del mutated[span.start:span.end]
                    applied.append(
                        InjectedFault(
                            kind, span.start,
                            "segment seq %d removed (%d bytes)"
                            % (span.seq, span.end - span.start),
                        )
                    )
                else:
                    mutated[span.end:span.end] = mutated[span.start:span.end]
                    applied.append(
                        InjectedFault(
                            kind, span.end,
                            "segment seq %d replayed" % span.seq,
                        )
                    )
        return bytes(mutated), applied

    def corrupt_snapshot(self, snapshot_path) -> Optional[InjectedFault]:
        """Make the metadata snapshot sidecar stale: delete it, truncate
        it mid-payload, or rot one byte -- the pre-GC export race at the
        file level.  Returns the fault, or ``None`` if no sidecar exists.
        """
        import os

        path = str(snapshot_path)
        if not os.path.exists(path):
            return None
        mode = self.rng.randrange(3)
        if mode == 0:
            os.unlink(path)
            detail = "snapshot deleted"
        else:
            with open(path, "rb") as source:
                blob = bytearray(source.read())
            if mode == 1 and len(blob) > 1:
                blob = blob[:self.rng.randrange(1, len(blob))]
                detail = "snapshot truncated to %d bytes" % len(blob)
            elif blob:
                position = self.rng.randrange(len(blob))
                blob[position] ^= 1 << self.rng.randrange(8)
                detail = "snapshot byte %d rotted" % position
            else:
                os.unlink(path)
                detail = "empty snapshot deleted"
            if os.path.exists(path):
                with open(path, "wb") as sink:
                    sink.write(bytes(blob))
        return InjectedFault(FaultKind.STALE_SNAPSHOT, -1, detail)

    # ---------------------------------------------------- process / I/O level
    def io_schedule(
        self,
        error_rate: float = 0.0,
        partial_rate: float = 0.0,
        stall_rate: float = 0.0,
        stall_seconds: float = 0.01,
        max_faults: Optional[int] = None,
    ) -> IOFaultSchedule:
        """A seeded :class:`IOFaultSchedule` derived from this injector
        (its own child seed, so archive and I/O faults stay independent
        yet both reproduce from the one top-level seed)."""
        return IOFaultSchedule(
            seed=self.rng.getrandbits(32),
            error_rate=error_rate,
            partial_rate=partial_rate,
            stall_rate=stall_rate,
            stall_seconds=stall_seconds,
            max_faults=max_faults,
        )

    def kill_index(self, polls: int) -> int:
        """A seeded supervisor-kill point within *polls* rounds."""
        return self.rng.randrange(1, max(polls, 2))

    def corrupt_checkpoint(self, checkpoint_path) -> Optional[InjectedFault]:
        """Damage a JPSC checkpoint sidecar: delete it, truncate it
        mid-payload, or rot one byte.  The resilience contract under
        test: every variant loads as a counted anomaly and a cold
        start, never an exception.  Returns ``None`` if no sidecar
        exists."""
        import os

        path = str(checkpoint_path)
        if not os.path.exists(path):
            return None
        mode = self.rng.randrange(3)
        if mode == 0:
            os.unlink(path)
            detail = "checkpoint deleted"
        else:
            with open(path, "rb") as source:
                blob = bytearray(source.read())
            if mode == 1 and len(blob) > 1:
                blob = blob[:self.rng.randrange(1, len(blob))]
                detail = "checkpoint truncated to %d bytes" % len(blob)
            elif blob:
                position = self.rng.randrange(len(blob))
                blob[position] ^= 1 << self.rng.randrange(8)
                detail = "checkpoint byte %d rotted" % position
            else:
                os.unlink(path)
                detail = "empty checkpoint deleted"
            if os.path.exists(path):
                with open(path, "wb") as sink:
                    sink.write(bytes(blob))
        return InjectedFault(FaultKind.CHECKPOINT_CORRUPT, -1, detail)

    # --------------------------------------------------------- metadata level
    def corrupt_database(self, database, entries: int = 4):
        """Deep-copy a code database and invalidate debug info in it,
        simulating the pre-GC export race: records vanish, frames point at
        methods that no longer resolve, bytecode indices run off the end.
        Returns ``(corrupt_database, faults)``."""
        mutated = copy.deepcopy(database)
        applied: List[InjectedFault] = []
        dumps = [d for d in mutated.code_dumps if d.debug]
        for _ in range(entries):
            if not dumps:
                break
            dump = self.rng.choice(dumps)
            addresses = sorted(dump.debug)
            if not addresses:
                continue
            address = self.rng.choice(addresses)
            mode = self.rng.randrange(4)
            if mode == 0:
                del dump.debug[address]
                detail = "debug entry at 0x%x deleted" % address
            elif mode == 1:
                dump.debug[address] = (("lost", -1),)  # qname without a dot
                detail = "debug entry at 0x%x mangled (bogus qname)" % address
            elif mode == 2:
                dump.debug[address] = (("no.such.Klass.method", 0),)
                detail = "debug entry at 0x%x points at unknown method" % address
            else:
                frames = dump.debug[address]
                qname, _bci = frames[-1]
                dump.debug[address] = frames[:-1] + ((qname, 10_000_000),)
                detail = "debug entry at 0x%x bci out of range" % address
            applied.append(InjectedFault(FaultKind.STALE_DEBUG, -1, detail))
        return mutated, applied


def _merge_core(packets, losses) -> TaggedStream:
    """Merge one core's packets and losses into a tagged stream with the
    canonical tie order (packets first within a TSC tick)."""
    merged: TaggedStream = [("packet", p) for p in packets]
    merged.extend(("loss", l) for l in losses)
    merged.sort(
        key=lambda entry: (
            entry[1].start_tsc if entry[0] == "loss" else entry[1].tsc,
            entry[0] == "loss",
        )
    )
    return merged
